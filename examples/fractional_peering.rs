//! Fractional link-sharing in a packetized network (§3.2).
//!
//! The integral game below provably has *no* stable configuration — it is
//! the frozen 5-node no-equilibrium witness from the Theorem 1 experiments.
//! If links can instead be time-shared (a node spends fractions of its
//! budget across several neighbours, as packetized networks do), Theorem 3
//! guarantees an equilibrium exists. This example finds one exactly on the
//! half-link lattice via fictitious-play averaging.
//!
//! ```text
//! cargo run --release --example fractional_peering
//! ```

use bbc::constructions::gadget;
use bbc::prelude::*;
use bbc_fractional::br;

fn main() -> Result<()> {
    let spec = gadget::minimal_no_ne_witness();
    let n = spec.node_count();

    // Integral game: exhaustively confirm there is no pure equilibrium.
    let space = enumerate::ProfileSpace::full(&spec, 1 << 14)?;
    let integral = enumerate::find_equilibria(&spec, &space, 100_000)?;
    println!(
        "integral game: {} equilibria among {} profiles",
        integral.equilibria.len(),
        integral.profiles_checked
    );

    // Fractional game on the half-link lattice (D = 2).
    let game = FractionalGame::new(&spec, 2);
    let (profile, regret) =
        br::averaged_play_regret(&game, FractionalConfig::empty(n), 40, &Default::default())?;
    println!("fractional game (D=2): best averaged profile has max regret {regret}");
    if regret == 0 {
        println!("  -> an exact fractional equilibrium:");
        for u in NodeId::all(n) {
            let alloc: Vec<String> = profile
                .allocation(u)
                .iter()
                .map(|(v, units)| format!("{v}:{units}/2"))
                .collect();
            println!(
                "     {u} splits its link budget as [{}]  (scaled cost {})",
                alloc.join(", "),
                game.node_cost_scaled(&profile, u)
            );
        }
    }

    println!(
        "\nmoral (Theorem 3): letting nodes time-share links restores stability that the \
         all-or-nothing game cannot offer."
    );
    Ok(())
}

//! P2P overlay design under selfish rewiring (the paper's third motivating
//! scenario, §1.1).
//!
//! An overlay operator deploys a *regular* degree-k topology — every peer
//! imitates the same link pattern, which keeps monitoring and link-state
//! dissemination simple. Peers then hack the client and rewire selfishly.
//! Theorem 5 predicts the regular design cannot be stable; this example
//! watches the overlay degrade under selfish churn and compares against the
//! Forest of Willows — stable by construction, but irregular.
//!
//! Two paper facts drive what is measured:
//!
//! * **Theorem 5**: every large regular topology admits a profitable
//!   unilateral rewiring — the designed overlay is not an equilibrium;
//! * **§4.3 / Figure 4**: uniform BBC games are not potential games, so
//!   best-response churn need not settle at all. At this scale it indeed
//!   does not (a half-million-step probe finds no equilibrium), so the
//!   example runs a fixed rewiring budget and reports the network state
//!   mid-churn — exactly what an operator of a live overlay would observe.
//!
//! The churn walk rides the engine's parallel oracle path
//! ([`Walk::prefill_threads`]): each stability test's BFS fan-out spreads
//! across every available core, with a byte-identical trajectory at any
//! thread count. That is what makes larger overlays practical — pass a peer
//! count to scale up (the `e13` experiment sweeps the same family to 256
//! and 512 peers with resumable checkpoints):
//!
//! ```text
//! cargo run --release --example p2p_overlay          # 64 peers (default)
//! cargo run --release --example p2p_overlay -- 256   # 256 peers
//! ```

use bbc::prelude::*;
use bbc_graph::diameter::eccentricity;

fn main() -> Result<()> {
    // The operator's design: an n-peer circulant with offsets {1, 5} —
    // every peer links its successor and the peer 5 ahead. The peer count
    // is CLI-tunable; 64 keeps the default run a few seconds.
    let peers: u64 = std::env::args()
        .nth(1)
        .map(|arg| arg.parse().expect("peer count must be a number"))
        .unwrap_or(64);
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let overlay = CayleyGraph::circulant(peers, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();

    let designed_cost = social_cost(&spec, &designed);
    let designed_diam = eccentricity(&designed.to_graph(&spec)).diameter();
    println!(
        "designed {peers}-peer circulant: social cost {designed_cost}, diameter {designed_diam:?}"
    );

    // A single selfish peer already has a profitable rewiring (Theorem 5).
    let report = StabilityChecker::new(&spec).check(&designed)?;
    match report.deviations.first() {
        Some(dev) => println!(
            "peer {} can cut its cost {} -> {} by rewiring to {:?}",
            dev.node, dev.current_cost, dev.improved_cost, dev.strategy
        ),
        None => println!("unexpectedly stable"),
    }

    // Let everyone rewire selfishly for a fixed budget of best-response
    // offers, fanning each offer's shortest-path oracle across all cores.
    // The churn does not converge at this scale (§4.3: BBC games are not
    // potential games), so the interesting quantity is the steady
    // reshaping, not a terminal state.
    // Budget: the classic half-million-probe-backed 15k offers at the
    // default 64 peers; four round-robin rounds at explicitly larger
    // scales (per-step cost grows ~quadratically with the peer count —
    // e13 is the checkpointed way to go big).
    let budget = if peers <= 64 { 15_000 } else { 4 * peers };
    let mut walk = Walk::new(&spec, designed)
        .detect_cycles(false)
        .prefill_threads(threads);
    let outcome = walk.run(budget)?;
    let selfish = walk.config();
    let selfish_cost = social_cost(&spec, selfish);
    let selfish_diam = eccentricity(&selfish.to_graph(&spec)).diameter();
    println!(
        "after {} selfish rewirings ({outcome:?}): social cost {selfish_cost}, diameter {selfish_diam:?}",
        walk.stats().moves
    );

    // The stable-but-irregular alternative: a Forest of Willows of similar
    // scale and degree (k=2, h=4: 62 nodes).
    let willow = ForestOfWillows::new(2, 4, 0).expect("valid willow");
    let wspec = willow.spec();
    let wcfg = willow.configuration();
    println!(
        "forest of willows (n={}): stable = {}, social cost {} ({:.2}x lower bound)",
        willow.node_count(),
        StabilityChecker::new(&wspec).is_stable(&wcfg)?,
        social_cost(&wspec, &wcfg),
        price_ratio(&wspec, &wcfg),
    );

    println!(
        "\nmoral (paper §4.2/§4.3): to keep a P2P overlay stable you must give up regularity —\n\
         every large regular topology invites selfish rewiring, the churn it triggers need\n\
         never settle, while the stable willow is structurally lopsided."
    );
    Ok(())
}

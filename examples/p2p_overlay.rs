//! P2P overlay design under selfish rewiring (the paper's third motivating
//! scenario, §1.1).
//!
//! An overlay operator deploys a *regular* degree-k topology — every peer
//! imitates the same link pattern, which keeps monitoring and link-state
//! dissemination simple. Peers then hack the client and rewire selfishly.
//! Theorem 5 predicts the regular design cannot be stable; this example
//! watches it degrade and compares against the Forest of Willows — stable by
//! construction, but irregular.
//!
//! ```text
//! cargo run --release --example p2p_overlay
//! ```

use bbc::prelude::*;
use bbc_graph::diameter::eccentricity;

fn main() -> Result<()> {
    // The operator's design: a 24-peer circulant with offsets {1, 5} —
    // every peer links its successor and the peer 5 ahead. (24 peers keeps
    // the full selfish-rewiring walk below a second; the instability story
    // is size-independent — Theorem 5 rules out *every* large regular
    // topology.)
    let overlay = CayleyGraph::circulant(24, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();

    let designed_cost = social_cost(&spec, &designed);
    let designed_diam = eccentricity(&designed.to_graph(&spec)).diameter();
    println!("designed circulant: social cost {designed_cost}, diameter {designed_diam:?}");

    // A single selfish peer already has a profitable rewiring (Theorem 5).
    let report = StabilityChecker::new(&spec).check(&designed)?;
    match report.deviations.first() {
        Some(dev) => println!(
            "peer {} can cut its cost {} -> {} by rewiring to {:?}",
            dev.node, dev.current_cost, dev.improved_cost, dev.strategy
        ),
        None => println!("unexpectedly stable"),
    }

    // Let everyone rewire until the network stabilizes.
    let mut walk = Walk::new(&spec, designed).detect_cycles(false);
    let outcome = walk.run(500_000)?;
    let selfish = walk.config();
    let selfish_cost = social_cost(&spec, selfish);
    let selfish_diam = eccentricity(&selfish.to_graph(&spec)).diameter();
    println!(
        "after selfish rewiring ({outcome:?}): social cost {selfish_cost}, diameter {selfish_diam:?}"
    );

    // The stable-but-irregular alternative: a Forest of Willows of similar
    // scale and degree (k=2, h=3: 30 nodes).
    let willow = ForestOfWillows::new(2, 3, 0).expect("valid willow");
    let wspec = willow.spec();
    let wcfg = willow.configuration();
    println!(
        "forest of willows (n={}): stable = {}, social cost {} ({:.2}x lower bound)",
        willow.node_count(),
        StabilityChecker::new(&wspec).is_stable(&wcfg)?,
        social_cost(&wspec, &wcfg),
        price_ratio(&wspec, &wcfg),
    );

    println!(
        "\nmoral (paper §4.2): to keep a P2P overlay stable you must give up regularity —\n\
         every large regular topology invites selfish rewiring, while the stable willow\n\
         is structurally lopsided."
    );
    Ok(())
}

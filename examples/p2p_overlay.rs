//! P2P overlay design under selfish rewiring (the paper's third motivating
//! scenario, §1.1).
//!
//! An overlay operator deploys a *regular* degree-k topology — every peer
//! imitates the same link pattern, which keeps monitoring and link-state
//! dissemination simple. Peers then hack the client and rewire selfishly.
//! Theorem 5 predicts the regular design cannot be stable; this example
//! watches 64 peers degrade under selfish churn and compares against the
//! Forest of Willows — stable by construction, but irregular.
//!
//! Two paper facts drive what is measured:
//!
//! * **Theorem 5**: every large regular topology admits a profitable
//!   unilateral rewiring — the designed overlay is not an equilibrium;
//! * **§4.3 / Figure 4**: uniform BBC games are not potential games, so
//!   best-response churn need not settle at all. At this scale it indeed
//!   does not (a half-million-step probe finds no equilibrium), so the
//!   example runs a fixed rewiring budget and reports the network state
//!   mid-churn — exactly what an operator of a live overlay would observe.
//!
//! ```text
//! cargo run --release --example p2p_overlay
//! ```

use bbc::prelude::*;
use bbc_graph::diameter::eccentricity;

fn main() -> Result<()> {
    // The operator's design: a 64-peer circulant with offsets {1, 5} —
    // every peer links its successor and the peer 5 ahead.
    let overlay = CayleyGraph::circulant(64, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();

    let designed_cost = social_cost(&spec, &designed);
    let designed_diam = eccentricity(&designed.to_graph(&spec)).diameter();
    println!("designed circulant: social cost {designed_cost}, diameter {designed_diam:?}");

    // A single selfish peer already has a profitable rewiring (Theorem 5).
    let report = StabilityChecker::new(&spec).check(&designed)?;
    match report.deviations.first() {
        Some(dev) => println!(
            "peer {} can cut its cost {} -> {} by rewiring to {:?}",
            dev.node, dev.current_cost, dev.improved_cost, dev.strategy
        ),
        None => println!("unexpectedly stable"),
    }

    // Let everyone rewire selfishly for a fixed budget of best-response
    // offers. The churn does not converge at this scale (§4.3: BBC games
    // are not potential games), so the interesting quantity is the steady
    // degradation, not a terminal state.
    let mut walk = Walk::new(&spec, designed).detect_cycles(false);
    let outcome = walk.run(15_000)?;
    let selfish = walk.config();
    let selfish_cost = social_cost(&spec, selfish);
    let selfish_diam = eccentricity(&selfish.to_graph(&spec)).diameter();
    println!(
        "after {} selfish rewirings ({outcome:?}): social cost {selfish_cost}, diameter {selfish_diam:?}",
        walk.stats().moves
    );

    // The stable-but-irregular alternative: a Forest of Willows of similar
    // scale and degree (k=2, h=4: 62 nodes).
    let willow = ForestOfWillows::new(2, 4, 0).expect("valid willow");
    let wspec = willow.spec();
    let wcfg = willow.configuration();
    println!(
        "forest of willows (n={}): stable = {}, social cost {} ({:.2}x lower bound)",
        willow.node_count(),
        StabilityChecker::new(&wspec).is_stable(&wcfg)?,
        social_cost(&wspec, &wcfg),
        price_ratio(&wspec, &wcfg),
    );

    println!(
        "\nmoral (paper §4.2/§4.3): to keep a P2P overlay stable you must give up regularity —\n\
         every large regular topology invites selfish rewiring, the churn it triggers need\n\
         never settle, while the stable willow is structurally lopsided."
    );
    Ok(())
}

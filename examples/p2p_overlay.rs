//! P2P overlay design under selfish rewiring (the paper's third motivating
//! scenario, §1.1).
//!
//! An overlay operator deploys a *regular* degree-k topology — every peer
//! imitates the same link pattern, which keeps monitoring and link-state
//! dissemination simple. Peers then hack the client and rewire selfishly.
//! Theorem 5 predicts the regular design cannot be stable; this example
//! watches the overlay degrade under selfish churn and compares against the
//! Forest of Willows — stable by construction, but irregular.
//!
//! Two paper facts drive what is measured:
//!
//! * **Theorem 5**: every large regular topology admits a profitable
//!   unilateral rewiring — the designed overlay is not an equilibrium;
//! * **§4.3 / Figure 4**: uniform BBC games are not potential games, so
//!   best-response churn need not settle at all. At this scale it indeed
//!   does not (a half-million-step probe finds no equilibrium), so the
//!   example runs a fixed rewiring budget and reports the network state
//!   mid-churn — exactly what an operator of a live overlay would observe.
//!
//! The churn walk rides the engine's parallel oracle path
//! ([`Walk::prefill_threads`]): each stability test's BFS fan-out spreads
//! across every available core, with a byte-identical trajectory at any
//! thread count. That is what makes larger overlays practical — pass a peer
//! count to scale up (the `e13` experiment sweeps the same family to 256
//! and 512 peers with resumable checkpoints), or `--churn` to watch peers
//! *join and leave* while the survivors re-optimize — the churn runtime of
//! the `e14` experiment, driven interactively:
//!
//! ```text
//! cargo run --release --example p2p_overlay                   # 64 peers (default)
//! cargo run --release --example p2p_overlay -- 256            # 256 peers
//! cargo run --release --example p2p_overlay -- 64 --churn     # + membership churn
//! cargo run --release --example p2p_overlay -- 64 --landmarks # + landmark bound cache
//! ```
//!
//! `--landmarks` turns on the engine's cached landmark bound tier
//! ([`LandmarkPolicy::Auto`]): every stability test consults ~√n cached
//! full-graph distance rows before materializing exact deviation rows, and
//! the run reports how many candidate subtrees the bounds pruned versus how
//! many exact rows the searches still had to compute. The trajectory is
//! byte-identical either way — admissible bounds never change a decision.

use bbc::prelude::*;
use bbc_graph::diameter::eccentricity;

fn main() -> Result<()> {
    // The operator's design: an n-peer circulant with offsets {1, 5} —
    // every peer links its successor and the peer 5 ahead. The peer count
    // is CLI-tunable; 64 keeps the default run a few seconds.
    let mut peers: u64 = 64;
    let mut churn_mode = false;
    let mut landmarks = false;
    for arg in std::env::args().skip(1) {
        if arg == "--churn" {
            churn_mode = true;
        } else if arg == "--landmarks" {
            landmarks = true;
        } else {
            peers = arg.parse().expect("peer count must be a number");
        }
    }
    let policy = if landmarks {
        LandmarkPolicy::Auto
    } else {
        LandmarkPolicy::Off
    };
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get());
    let overlay = CayleyGraph::circulant(peers, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();

    let designed_cost = social_cost(&spec, &designed);
    let designed_diam = eccentricity(&designed.to_graph(&spec)).diameter();
    println!(
        "designed {peers}-peer circulant: social cost {designed_cost}, diameter {designed_diam:?}"
    );

    // A single selfish peer already has a profitable rewiring (Theorem 5).
    let report = StabilityChecker::new(&spec).check(&designed)?;
    match report.deviations.first() {
        Some(dev) => println!(
            "peer {} can cut its cost {} -> {} by rewiring to {:?}",
            dev.node, dev.current_cost, dev.improved_cost, dev.strategy
        ),
        None => println!("unexpectedly stable"),
    }

    // Let everyone rewire selfishly for a fixed budget of best-response
    // offers, fanning each offer's shortest-path oracle across all cores.
    // The churn does not converge at this scale (§4.3: BBC games are not
    // potential games), so the interesting quantity is the steady
    // reshaping, not a terminal state.
    // Budget: the classic half-million-probe-backed 15k offers at the
    // default 64 peers; four round-robin rounds at explicitly larger
    // scales (per-step cost grows ~quadratically with the peer count —
    // e13 is the checkpointed way to go big).
    let budget = if peers <= 64 { 15_000 } else { 4 * peers };
    let mut walk = Walk::new(&spec, designed)
        .detect_cycles(false)
        .prefill_threads(threads)
        .with_landmarks(policy);
    let outcome = walk.run(budget)?;
    let selfish = walk.config();
    let selfish_cost = social_cost(&spec, selfish);
    let selfish_diam = eccentricity(&selfish.to_graph(&spec)).diameter();
    println!(
        "after {} selfish rewirings ({outcome:?}): social cost {selfish_cost}, diameter {selfish_diam:?}",
        walk.stats().moves
    );
    if landmarks {
        let stats = walk.stats();
        let engine = walk.engine_stats();
        println!(
            "landmark bound cache: {} landmark rows computed, {} candidate subtrees \
             pruned by bounds, {} exact deviation rows still materialized \
             (vs {} oracle traversals total)",
            engine.landmark_rows_computed,
            stats.bounds_hit,
            stats.rows_materialized,
            engine.oracle_rows_computed,
        );
    }

    // The stable-but-irregular alternative: a Forest of Willows of similar
    // scale and degree (k=2, h=4: 62 nodes).
    let willow = ForestOfWillows::new(2, 4, 0).expect("valid willow");
    let wspec = willow.spec();
    let wcfg = willow.configuration();
    println!(
        "forest of willows (n={}): stable = {}, social cost {} ({:.2}x lower bound)",
        willow.node_count(),
        StabilityChecker::new(&wspec).is_stable(&wcfg)?,
        social_cost(&wspec, &wcfg),
        price_ratio(&wspec, &wcfg),
    );

    // `--churn`: the live-overlay workload — peers join and leave while
    // the survivors re-optimize (the e14 experiment's runtime, one event
    // log at a time).
    if churn_mode {
        println!("\n--- membership churn (seeded joins/leaves, {peers} peer slots) ---");
        let overlay = CayleyGraph::circulant(peers, &[1, 5]).expect("valid circulant");
        let spec = overlay.spec();
        let cfg = ChurnConfig {
            seed: peers,
            events: 6,
            min_live: (peers / 2) as usize,
            settle_steps: peers,
            prefill_threads: threads,
            ..ChurnConfig::default()
        };
        let mut sim = ChurnSim::new(&spec, overlay.configuration(), cfg).with_landmarks(policy);
        let report = sim.run()?;
        for (i, e) in report.events.iter().enumerate() {
            let what = match &e.event {
                ChurnEvent::Leave { node } => format!("peer {node} left"),
                ChurnEvent::Join { node, strategy } => {
                    format!("peer {node} joined buying {strategy:?}")
                }
                ChurnEvent::Shock { node, .. } => format!("peer {node} was rewired by force"),
            };
            println!(
                "event {i}: {what}; cost {} -> {} (spike) -> {} after {} steps, \
                 {} pairs cut, {} still cut",
                e.cost_before,
                e.cost_spike,
                e.cost_settled,
                e.steps_to_requilibrate,
                e.disconnected_after_event,
                e.disconnected_settled
            );
        }
        println!(
            "churn digest {:016x}: {} live peers, social cost {}, every disconnection healed: {}",
            report.trajectory_digest,
            report.final_live,
            report.final_social_cost,
            report.all_exposure_healed()
        );
    }

    println!(
        "\nmoral (paper §4.2/§4.3): to keep a P2P overlay stable you must give up regularity —\n\
         every large regular topology invites selfish rewiring, the churn it triggers need\n\
         never settle, while the stable willow is structurally lopsided."
    );
    Ok(())
}

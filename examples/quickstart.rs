//! Quickstart: define a game, let selfish nodes rewire, inspect the result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bbc::prelude::*;

fn main() -> Result<()> {
    // A (16,2)-uniform BBC game: 16 players, each may buy 2 unit-cost links,
    // everyone wants short paths to everyone else.
    let spec = GameSpec::uniform(16, 2);

    // Start from nothing and let nodes take best-response turns.
    let mut walk = Walk::new(&spec, Configuration::empty(16));
    let outcome = walk.run(100_000)?;
    println!("dynamics outcome: {outcome:?}");

    // The endpoint is a pure Nash equilibrium (checked exactly).
    let config = walk.config();
    let stable = StabilityChecker::new(&spec).is_stable(config)?;
    println!("exact stability check: {stable}");

    // Price it: social cost vs the degree-2 packing lower bound.
    let cost = social_cost(&spec, config);
    println!(
        "social cost {cost} ({:.3}x the structural lower bound)",
        price_ratio(&spec, config)
    );

    // Fairness (Lemma 1): all node costs are close in any stable graph.
    let f = fairness(&spec, config);
    println!(
        "node costs span {}..{} (gap {}, Lemma 1 bound {})",
        f.min_cost, f.max_cost, f.additive_gap, f.additive_bound
    );

    // Inspect one node's links and what it would cost to deviate.
    let node = NodeId::new(0);
    let out = best_response::exact(&spec, config, node, &BestResponseOptions::default())?;
    println!(
        "{node} buys {:?}; its best achievable cost is {} (current {})",
        config.strategy(node),
        out.best_cost,
        out.current_cost
    );
    Ok(())
}

//! A campaign on a budget (the paper's first motivating scenario, §1.1).
//!
//! A candidate's campaign and its rivals court a small cast of political
//! operatives. Everyone has one link to give (budget 1) and non-uniform
//! preferences: campaigns care about operatives in proportion to their
//! influence, operatives care about the campaigns and each other. Who allies
//! with whom when everyone optimizes selfishly — and is there a stable
//! alliance structure at all?
//!
//! ```text
//! cargo run --release --example social_influence
//! ```

use bbc::prelude::*;

const NAMES: [&str; 7] = [
    "Campaign-A",
    "Campaign-B",
    "Union-Boss",
    "Mayor",
    "Pundit",
    "Donor",
    "Organizer",
];

fn main() -> Result<()> {
    let n = NAMES.len();
    // Influence weights: w(u, v) = how much u needs a short path to v.
    // Campaigns need operatives (especially the union boss and the mayor);
    // operatives need the campaigns and their own networks.
    #[rustfmt::skip]
    let w: [[u64; 7]; 7] = [
        // A   B  Un  Ma  Pu  Do  Or
        [  0,  0,  5,  4,  2,  3,  2], // Campaign-A
        [  0,  0,  5,  4,  2,  3,  2], // Campaign-B
        [  2,  2,  0,  1,  0,  0,  3], // Union-Boss
        [  2,  2,  1,  0,  2,  1,  0], // Mayor
        [  1,  1,  0,  2,  0,  0,  0], // Pundit
        [  3,  3,  0,  1,  0,  0,  0], // Donor
        [  1,  1,  3,  0,  0,  0,  0], // Organizer
    ];
    let mut b = GameSpec::builder(n).default_budget(1);
    for (u, row) in w.iter().enumerate() {
        for (v, &weight) in row.iter().enumerate() {
            if u != v {
                b = b.weight(u, v, weight);
            }
        }
    }
    let spec = b.build()?;

    // Does a stable alliance structure exist at all? (Theorem 1 warns that
    // non-uniform preferences can make the answer "no".)
    let space = enumerate::ProfileSpace::full(&spec, 1 << 20)?;
    let found = enumerate::find_equilibria(&spec, &space, 10_000_000)?;
    println!(
        "{} stable alliance structures among {} possible profiles",
        found.equilibria.len(),
        found.profiles_checked
    );

    // Show the first few equilibria as alliance diagrams.
    let mut eval = Evaluator::new(&spec);
    for (i, eq) in found.equilibria.iter().take(3).enumerate() {
        println!("\nstable structure #{}:", i + 1);
        for u in NodeId::all(n) {
            let allies: Vec<&str> = eq.strategy(u).iter().map(|v| NAMES[v.index()]).collect();
            println!(
                "  {:<11} -> {:<11}  (weighted distance cost {})",
                NAMES[u.index()],
                if allies.is_empty() {
                    "(nobody)".to_string()
                } else {
                    allies.join(", ")
                },
                eval.node_cost(eq, u)
            );
        }
    }

    // And what do the dynamics of shifting loyalties look like from scratch?
    let mut walk = Walk::new(&spec, Configuration::empty(n)).record_trace(true);
    let outcome = walk.run(10_000)?;
    println!("\nbest-response politics from a cold start: {outcome:?}");
    for mv in walk.trace().iter().take(10) {
        let to: Vec<&str> = mv.new_strategy.iter().map(|v| NAMES[v.index()]).collect();
        println!(
            "  {} re-allies with {:?} (cost {} -> {})",
            NAMES[mv.node.index()],
            to,
            mv.old_cost,
            mv.new_cost
        );
    }
    Ok(())
}

//! Overlay-as-a-service: the BBC engine as a long-lived daemon.
//!
//! The paper's overlay scenarios (§1.1) all assume someone *operates* the
//! network while peers churn and rewire. This example runs that operator's
//! stack end to end: a `bbc-serve` daemon owns one `DistanceEngine`-backed
//! walk behind a line-delimited JSON protocol on a Unix socket, and every
//! client — membership churn, best-response advice, cost telemetry — is
//! just a socket connection. One engine-owner thread serializes the
//! requests, so whatever order the socket layer accepts is the order the
//! game evolves in, and the final `state_digest` replays single-threaded
//! to the byte ([`bbc_serve::oracle_digest`] — the differential suite's
//! contract).
//!
//! The second half exercises the crash story: snapshot the served state
//! (which compacts the engine to its canonical layout and certifies the
//! digest), shut the daemon down, and boot a fresh process-equivalent
//! service with `restore` — the digest comes back byte for byte.
//!
//! ```text
//! cargo run --release --example overlay_service
//! ```
//!
//! For throughput numbers against a real daemon, use the built-in load
//! generator instead: `bbc-serve --loadgen 1000 --socket <sock>` (the
//! `serve/loadgen_latency` row of `crates/bench/BENCH_results.json`).

use bbc_serve::protocol::{Op, Probe, Reply};
use bbc_serve::socket::{run_listener, temp_socket_path, Client};
use bbc_serve::{ServeConfig, Service};

fn main() {
    let state_dir = std::env::temp_dir().join(format!("overlay-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&state_dir);
    let cfg = ServeConfig {
        peers: 24,
        budget: 2,
        state_dir: Some(state_dir.clone()),
        ..ServeConfig::default()
    };

    // --- Boot: daemon thread + socket listener. -------------------------
    let service = Service::start(cfg.clone()).expect("service boots");
    let socket = temp_socket_path("overlay-example");
    let listener_handle = service.handle();
    let listen_path = socket.clone();
    std::thread::spawn(move || {
        let _ = run_listener(&listen_path, &listener_handle);
    });
    while !socket.exists() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    println!("daemon up: 24-peer uniform game, budget 2, journal at {state_dir:?}");

    // --- An operator client settles the fresh overlay. ------------------
    let mut ops = Client::connect(&socket, 1).expect("operator connects");
    match ops
        .request(Op::Settle { max_steps: 100_000 })
        .expect("settle")
    {
        Reply::Phase {
            steps,
            moves,
            social_cost,
            ..
        } => {
            println!("settle: {steps} steps, {moves} moves, social cost {social_cost}");
        }
        other => panic!("settle failed: {other:?}"),
    }

    // --- A churn client: peer 7 leaves, later rejoins. ------------------
    let mut churn = Client::connect(&socket, 2).expect("churn client connects");
    assert!(matches!(
        churn.request(Op::Leave { node: 7 }).expect("leave"),
        Reply::Ok { .. }
    ));
    // Best-response *advice* for a survivor: what would node 3 do now, and
    // how hard did the engine work to find out?
    match ops.request(Op::Advise { node: 3 }).expect("advise") {
        Reply::Advice {
            current_cost,
            best_cost,
            improves,
            bounds_hit,
            rows_materialized,
            ..
        } => {
            println!(
                "advice for node 3 after the departure: cost {current_cost} -> {best_cost} \
                 (improves: {improves}; {bounds_hit} bound prunes, {rows_materialized} exact rows)"
            );
        }
        other => panic!("advise failed: {other:?}"),
    }
    assert!(matches!(
        churn
            .request(Op::Join {
                node: 7,
                strategy: vec![6, 8]
            })
            .expect("rejoin"),
        Reply::Ok { .. }
    ));
    match ops
        .request(Op::Settle { max_steps: 100_000 })
        .expect("re-settle")
    {
        Reply::Phase {
            moves, social_cost, ..
        } => {
            println!("re-settle after churn: {moves} moves, social cost {social_cost}");
        }
        other => panic!("re-settle failed: {other:?}"),
    }

    // --- Snapshot, shut down, restore, compare digests. -----------------
    match ops.request(Op::Snapshot).expect("snapshot") {
        Reply::Snapshotted { rows, digest, .. } => {
            println!("snapshot: {rows} membership rows, certified digest {digest}");
        }
        other => panic!("snapshot failed: {other:?}"),
    }
    let live_digest = match ops.request(Op::Query(Probe::Digest)).expect("digest") {
        Reply::Digest { digest } => digest,
        other => panic!("digest probe failed: {other:?}"),
    };
    let _ = ops.request(Op::Shutdown);
    service.join().expect("clean shutdown");

    let restored = Service::start(ServeConfig {
        restore: true,
        ..cfg
    })
    .expect("service restores from the journal");
    let reply = match restored.handle().call(bbc_serve::RequestFrame {
        client: 9,
        seq: 0,
        op: Op::Query(Probe::Digest),
    }) {
        bbc_serve::Dispatch::Reply(frame) => frame.reply,
        other => panic!("restored service dropped the probe: {other:?}"),
    };
    let restored_digest = match reply {
        Reply::Digest { digest } => digest,
        other => panic!("digest probe failed: {other:?}"),
    };
    assert_eq!(
        live_digest, restored_digest,
        "restore must reproduce the pre-shutdown digest byte for byte"
    );
    println!("restored from snapshot+journal: digest {restored_digest} (matches live)");

    let _ = restored.handle().call(bbc_serve::RequestFrame {
        client: 9,
        seq: 0,
        op: Op::Shutdown,
    });
    restored.join().expect("clean shutdown");
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&state_dir);
}

//! Hot-path smoke: a fixed-seed round-robin dynamics walk on the
//! `(24,3)`-uniform game — the workload the CSR `DistanceEngine` refactor is
//! benchmarked on — pinned to its exact trajectory.
//!
//! CI runs this in release mode so a regression in the engine's caching or
//! the best-response search surfaces as a wall-clock blowup there, while the
//! pinned move/cost numbers catch *behavioral* drift anywhere: the walk's
//! scheduler, cycle-detection map, and RNG are all deterministic-by-design
//! (seeded `SmallRng`, FNV-hashed lookup-only history), so these values must
//! reproduce bit-for-bit across Rust versions and platforms.

use bbc::prelude::*;

#[test]
fn fixed_seed_walk_trajectory_is_pinned() {
    let spec = GameSpec::uniform(24, 3);
    let start = Configuration::random(&spec, 7);
    let mut walk = Walk::new(&spec, start.clone()).detect_cycles(false);
    let outcome = walk.run(2_000).expect("search fits budget");

    assert_eq!(outcome, WalkOutcome::StepLimit { steps: 2_000 });
    assert_eq!(walk.stats().moves, 1_914);
    assert_eq!(social_cost(&spec, walk.config()), 1_479);

    // Determinism: an identical second run replays the identical walk.
    let mut again = Walk::new(&spec, start).detect_cycles(false);
    let outcome_again = again.run(2_000).expect("search fits budget");
    assert_eq!(outcome_again, outcome);
    assert_eq!(again.config(), walk.config());
}

#[test]
fn fixed_seed_walk_converges_from_random_start() {
    // The same game run to completion: the equilibrium step count is part
    // of the pinned trajectory (it changes iff any best-response decision
    // along the walk changes). ~10k steps is instant in release but minutes
    // without optimization, so the full run is CI's release-mode smoke.
    if cfg!(debug_assertions) {
        return;
    }
    let spec = GameSpec::uniform(24, 3);
    let mut walk = Walk::new(&spec, Configuration::random(&spec, 7)).detect_cycles(false);
    let outcome = walk.run(100_000).expect("search fits budget");
    assert_eq!(outcome, WalkOutcome::Equilibrium { steps: 10_684 });
    assert!(StabilityChecker::new(&spec)
        .is_stable(walk.config())
        .expect("check fits budget"));
}

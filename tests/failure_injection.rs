//! Failure injection: malformed inputs and exhausted budgets must surface as
//! typed errors or validation panics — never as silently wrong results.

use bbc::prelude::*;

#[test]
fn undersized_penalty_is_rejected() {
    let err = GameSpec::builder(10).penalty(5).build().unwrap_err();
    assert!(matches!(err, Error::PenaltyTooSmall { minimum: 11, .. }));
    let err = GameSpec::uniform(10, 2).with_penalty(10).unwrap_err();
    assert!(matches!(err, Error::PenaltyTooSmall { .. }));
}

#[test]
fn strategy_violations_are_typed() {
    let spec = GameSpec::uniform(4, 1);
    let mut cfg = Configuration::empty(4);
    assert!(matches!(
        cfg.set_strategy(&spec, NodeId::new(0), vec![NodeId::new(0)]),
        Err(Error::SelfLink { .. })
    ));
    assert!(matches!(
        cfg.set_strategy(&spec, NodeId::new(0), vec![NodeId::new(1), NodeId::new(2)]),
        Err(Error::BudgetExceeded { .. })
    ));
    assert!(matches!(
        cfg.set_strategy(&spec, NodeId::new(0), vec![NodeId::new(9)]),
        Err(Error::NodeOutOfBounds { .. })
    ));
    // Failed updates must not corrupt the configuration.
    assert_eq!(cfg.strategy(NodeId::new(0)), &[] as &[NodeId]);
}

#[test]
fn search_budgets_abort_cleanly() {
    let spec = GameSpec::uniform(14, 5);
    let cfg = Configuration::random(&spec, 0);
    let tight = BestResponseOptions {
        evaluation_limit: 5,
        stop_at_first_improvement: false,
    };
    assert!(matches!(
        best_response::exact(&spec, &cfg, NodeId::new(0), &tight),
        Err(Error::SearchBudgetExceeded { limit: 5 })
    ));

    // Enumeration refuses oversized spaces up front.
    let space = enumerate::ProfileSpace::full(&GameSpec::uniform(5, 1), 100).unwrap();
    assert!(matches!(
        enumerate::find_equilibria(&GameSpec::uniform(5, 1), &space, 10),
        Err(Error::SearchBudgetExceeded { limit: 10 })
    ));
}

#[test]
fn enumeration_respects_profile_budget_without_scanning() {
    // The theorem-integration scans hand `find_equilibria` exponentially
    // large candidate spaces and rely on the profile budget to refuse
    // oversized work *up front*. A (10,2)-uniform game has 46 strategies per
    // node and 46^10 ≈ 4.3e16 joint profiles; if the budget check were
    // applied per-profile instead of before the scan, this test would run
    // for years. Demand an immediate typed error instead.
    let spec = GameSpec::uniform(10, 2);
    let space = enumerate::ProfileSpace::full(&spec, 1_000).unwrap();
    assert!(space.profile_count() > 1u128 << 50);

    let started = std::time::Instant::now();
    assert!(matches!(
        enumerate::find_equilibria(&spec, &space, 1_000_000),
        Err(Error::SearchBudgetExceeded { limit: 1_000_000 })
    ));
    // The parallel scanner must apply the same up-front bound.
    assert!(matches!(
        enumerate::find_equilibria_parallel(&spec, &space, 1_000_000, 4),
        Err(Error::SearchBudgetExceeded { limit: 1_000_000 })
    ));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(5),
        "budget refusal must not scan the space"
    );

    // Exactly-at-budget spaces are scanned in full: the bound is a budget,
    // not an off-by-one trap.
    let tiny = GameSpec::uniform(3, 1);
    let tiny_space = enumerate::ProfileSpace::full(&tiny, 100).unwrap();
    let exact = u64::try_from(tiny_space.profile_count()).unwrap();
    let result = enumerate::find_equilibria(&tiny, &tiny_space, exact).unwrap();
    assert_eq!(result.profiles_checked, exact);
}

#[test]
fn dimension_mismatches_are_rejected() {
    let spec = GameSpec::uniform(3, 1);
    assert!(matches!(
        Configuration::from_strategies(&spec, vec![vec![], vec![]]),
        Err(Error::DimensionMismatch {
            expected: 3,
            actual: 2
        })
    ));
}

#[test]
fn disconnected_profiles_price_at_penalty_not_garbage() {
    let spec = GameSpec::uniform(5, 1);
    let cfg = Configuration::empty(5);
    let mut eval = Evaluator::new(&spec);
    // Every node pays exactly (n-1)·M — no overflow, no sentinel leakage.
    assert_eq!(eval.node_cost(&cfg, NodeId::new(0)), 4 * spec.penalty());
    let social = eval.social_cost(&cfg);
    assert_eq!(social, 5 * 4 * spec.penalty());
}

#[test]
fn zero_budget_games_are_degenerate_but_well_defined() {
    let spec = GameSpec::uniform(4, 0);
    let cfg = Configuration::empty(4);
    assert!(StabilityChecker::new(&spec).is_stable(&cfg).unwrap());
    let mut walk = Walk::new(&spec, cfg);
    assert!(matches!(
        walk.run(100).unwrap(),
        WalkOutcome::Equilibrium { .. }
    ));
}

#[test]
fn fractional_allocation_violations_are_typed() {
    let spec = GameSpec::uniform(4, 1);
    let game = FractionalGame::new(&spec, 4);
    let mut cfg = FractionalConfig::empty(4);
    assert!(matches!(
        cfg.set_allocation(&game, NodeId::new(0), vec![(NodeId::new(1), 9)]),
        Err(Error::BudgetExceeded { .. })
    ));
    assert!(matches!(
        cfg.set_allocation(&game, NodeId::new(0), vec![(NodeId::new(0), 1)]),
        Err(Error::SelfLink { .. })
    ));
}

//! Release-mode churn smoke: a fixed-seed [`ChurnSim`] on the 32-peer
//! circulant overlay (the `p2p_overlay --churn` workload), pinned to its
//! exact trajectory digest.
//!
//! The churn determinism contract says the full event/move stream is a pure
//! function of `(spec, start, ChurnConfig)` — independent of machine,
//! thread count, and cache history. A regression anywhere in the lifecycle
//! layer (`DistanceEngine::{remove_node, add_node}`), the masked cost
//! aggregation, the seeded event drawing, or the scheduler resets shows up
//! here as a digest change; a performance regression shows up as this
//! release-mode test going slow in CI.

use bbc::prelude::*;

fn smoke_config(peers: u64, prefill_threads: usize) -> ChurnConfig {
    ChurnConfig {
        seed: 32,
        events: 6,
        min_live: (peers / 2) as usize,
        settle_steps: peers,
        prefill_threads,
        ..ChurnConfig::default()
    }
}

#[test]
fn fixed_seed_churn_trajectory_is_pinned() {
    // The digest pin is a release-grade workload (32 peers × 7 settle
    // phases); debug builds only check cross-thread determinism below.
    if cfg!(debug_assertions) {
        return;
    }
    let overlay = CayleyGraph::circulant(32, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let report = ChurnSim::new(&spec, overlay.configuration(), smoke_config(32, 1))
        .run()
        .expect("phases fit budget");
    assert_eq!(report.events.len(), 6);
    assert_eq!(report.trajectory_digest, 0x662f_70e7_7791_0a92);
    assert_eq!(report.final_live, 30);
    assert_eq!(report.final_social_cost, 3_344);
    assert!(report.all_exposure_healed());
}

#[test]
fn churn_trajectory_is_thread_count_invariant() {
    let overlay = CayleyGraph::circulant(16, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let base = ChurnSim::new(&spec, overlay.configuration(), smoke_config(16, 1))
        .run()
        .expect("phases fit budget");
    assert_eq!(base.events.len(), 6, "every event must be feasible");
    for threads in [2usize, 4] {
        let report = ChurnSim::new(&spec, overlay.configuration(), smoke_config(16, threads))
            .run()
            .expect("phases fit budget");
        assert_eq!(report, base, "prefill_threads {threads}");
    }
}

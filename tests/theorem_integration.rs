//! Cross-crate integration tests: one end-to-end check per theorem, driven
//! through the facade crate's public API.

use bbc::constructions::gadget;
use bbc::prelude::*;
use bbc_fractional::br;

#[test]
fn theorem1_no_equilibrium_instances_exist() {
    // The restricted gadget: exhaustive scan over its whole joint space.
    let g = Gadget::new(GadgetVariant::Restricted);
    let spec = g.spec();
    let space = g.candidate_space(&spec).unwrap();
    let result = enumerate::find_equilibria(&spec, &space, 100_000).unwrap();
    assert!(result.equilibria.is_empty());
    assert_eq!(result.profiles_checked, 11_664);

    // The work-stealing sharded scan covers the identical space and returns
    // a byte-identical result at any worker count — this is the gadget
    // product the old first-digit split could not shard past node 0.
    for threads in [2, 8] {
        let par = enumerate::find_equilibria_parallel(&spec, &space, 100_000, threads).unwrap();
        assert_eq!(par, result, "threads={threads}");
    }

    // The 5-node theorem-statement witness.
    let witness = gadget::minimal_no_ne_witness();
    let space = enumerate::ProfileSpace::full(&witness, 1 << 14).unwrap();
    let result = enumerate::find_equilibria(&witness, &space, 100_000).unwrap();
    assert!(result.equilibria.is_empty());
}

#[test]
fn theorem2_reduction_tracks_satisfiability() {
    // UNSAT direction: (x) ∧ (¬x) yields a game with no equilibrium.
    let unsat = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
    assert!(dpll::solve(&unsat).is_none());
    let reduction = SatReduction::new(unsat);
    let spec = reduction.spec();
    let space = reduction.profile_space(&spec).unwrap();
    let result = enumerate::find_equilibria(&spec, &space, 1_000_000).unwrap();
    assert!(result.equilibria.is_empty());

    // SAT direction: the canonical profile of a model is stable.
    let sat = Cnf::new(
        2,
        vec![
            vec![Lit::pos(0), Lit::pos(1)],
            vec![Lit::neg(0), Lit::pos(1)],
        ],
    );
    let model = dpll::solve(&sat).expect("satisfiable");
    let reduction = SatReduction::new(sat);
    let spec = reduction.spec();
    let canonical = reduction.canonical_equilibrium(&spec, &model);
    assert!(StabilityChecker::new(&spec).is_stable(&canonical).unwrap());
}

#[test]
fn theorem3_fractional_relaxation_restores_stability() {
    let spec = gadget::minimal_no_ne_witness();
    let game = FractionalGame::new(&spec, 2);
    let (_, regret) = br::averaged_play_regret(
        &game,
        FractionalConfig::empty(spec.node_count()),
        40,
        &Default::default(),
    )
    .unwrap();
    assert_eq!(regret, 0, "half-link lattice admits an exact equilibrium");
}

#[test]
fn theorem4_willows_are_stable_fair_and_cheap() {
    let fow = ForestOfWillows::new(2, 3, 1).unwrap();
    assert!(fow.satisfies_paper_constraint());
    let spec = fow.spec();
    let cfg = fow.configuration();
    assert!(StabilityChecker::new(&spec).is_stable(&cfg).unwrap());

    // Lemma 1 fairness on the equilibrium.
    let f = fairness(&spec, &cfg);
    assert!(f.within_additive_bound());
    assert!(f.ratio <= f.multiplicative_bound + 0.5);

    // PoS witness: the l=0 willow prices within a small constant.
    let best = ForestOfWillows::new(2, 3, 0).unwrap();
    assert!(price_ratio(&best.spec(), &best.configuration()) < 2.0);
}

#[test]
fn theorem5_regularity_and_stability_conflict() {
    // Corollary 1: the 32-node hypercube (k=5) is unstable.
    let cube = CayleyGraph::hypercube(5).unwrap();
    let spec = cube.spec();
    let report = StabilityChecker::new(&spec)
        .check(&cube.configuration())
        .unwrap();
    assert!(!report.stable);
    // The witness deviation is real: applying it lowers the cost.
    let dev = &report.deviations[0];
    assert!(dev.improved_cost < dev.current_cost);

    // Lemma 8: huge-degree circulants are stable.
    let dense = CayleyGraph::circulant(8, &[1, 2, 3, 4]).unwrap();
    let spec = dense.spec();
    assert!(StabilityChecker::new(&spec)
        .is_stable(&dense.configuration())
        .unwrap());

    // k=1: the directed cycle is stable.
    let ring = CayleyGraph::circulant(9, &[1]).unwrap();
    let spec = ring.spec();
    assert!(StabilityChecker::new(&spec)
        .is_stable(&ring.configuration())
        .unwrap());
}

#[test]
fn theorem6_connectivity_in_quadratic_steps() {
    // Upper bound on random sparse starts.
    for seed in 0..3 {
        let n = 10;
        let spec = GameSpec::uniform(n, 1);
        let start = Configuration::random_sparse(&spec, seed, 1);
        let mut walk = Walk::new(&spec, start).detect_cycles(false);
        let _ = walk.run((n * n) as u64 + n as u64).unwrap();
        let steps = walk.stats().steps_to_strong_connectivity.expect("connects");
        assert!(steps <= (n * n) as u64);
    }

    // The Ω(n²) instance takes at least n²/8 steps.
    let inst = RingWithPath::new(12, 6).unwrap();
    let spec = inst.spec();
    let n = inst.node_count() as u64;
    let mut walk = Walk::new(&spec, inst.configuration())
        .with_scheduler(inst.round_order())
        .detect_cycles(false);
    let _ = walk.run(n * n + n).unwrap();
    let steps = walk.stats().steps_to_strong_connectivity.unwrap();
    assert!(steps >= n * n / 8, "steps {steps} not quadratic");
}

#[test]
fn figure4_best_response_loop_exists() {
    // Roughly 4% of random (7,2) starts walk into a loop, so 150 seeds give
    // comfortable margin for any deterministic RNG stream (the vendored
    // `rand` shim's stream differs from upstream `SmallRng`'s).
    let spec = GameSpec::uniform(7, 2);
    let mut found = false;
    for seed in 0..150 {
        let mut walk = Walk::new(&spec, Configuration::random(&spec, seed));
        if let WalkOutcome::Cycle { period, .. } = walk.run(50_000).unwrap() {
            assert!(period > 0);
            found = true;
            break;
        }
    }
    assert!(
        found,
        "no best-response loop found in 150 seeds — not a potential game refuted?"
    );
}

#[test]
fn theorem8_max_poa_construction_is_a_stable_expensive_equilibrium() {
    let g = MaxPoaGraph::new(3, 4).unwrap();
    let spec = g.spec();
    let cfg = g.configuration();
    assert_eq!(spec.cost_model(), CostModel::MaxDistance);
    assert!(StabilityChecker::new(&spec).is_stable(&cfg).unwrap());
    // Expensive: per-node max distance scales with the tail length.
    let cost = social_cost(&spec, &cfg);
    assert!(cost as f64 >= 1.2 * bbc::analysis::uniform_social_lower_bound(&spec) as f64);
}

#[test]
fn lemma7_stable_graph_diameters_are_sub_linear() {
    // Lemma 7: any uniform stable graph has diameter O(√(n·log_k n)).
    // Check the bound (with the lemma's implicit constant taken as 4, ample
    // for these sizes) on willows across the tail spectrum and on
    // dynamics-found equilibria.
    use bbc_graph::diameter::diameter;
    let willows = [(2u64, 3u32, 0u32), (2, 3, 2), (2, 4, 4), (3, 2, 1)];
    for (k, h, l) in willows {
        let fow = ForestOfWillows::new(k, h, l).unwrap();
        let spec = fow.spec();
        let g = fow.configuration().to_graph(&spec);
        let n = fow.node_count() as f64;
        let d = diameter(&g).expect("willows are strongly connected") as f64;
        let logk = n.ln() / (k as f64).ln();
        assert!(
            d <= 4.0 * (n * logk).sqrt(),
            "willow(k={k},h={h},l={l}): diameter {d} vs bound {}",
            4.0 * (n * logk).sqrt()
        );
    }

    // A dynamics-found equilibrium obeys the same bound.
    let spec = GameSpec::uniform(20, 2);
    let mut walk = Walk::new(&spec, Configuration::empty(20));
    assert!(matches!(
        walk.run(200_000).unwrap(),
        WalkOutcome::Equilibrium { .. }
    ));
    let g = walk.config().to_graph(&spec);
    let d = bbc_graph::diameter::diameter(&g).expect("equilibria are strongly connected") as f64;
    let logk = (20f64).ln() / 2f64.ln();
    assert!(d <= 4.0 * (20.0 * logk).sqrt());
}

#[test]
fn theorem9_willow_stable_under_max_cost() {
    let fow = ForestOfWillows::new(2, 3, 0).unwrap();
    let spec = fow.spec().with_cost_model(CostModel::MaxDistance);
    assert!(StabilityChecker::new(&spec)
        .is_stable(&fow.configuration())
        .unwrap());
}

#[test]
fn dynamics_equilibria_survive_perturbation() {
    // Knock one node out of a found equilibrium; dynamics must repair it
    // back to (possibly another) equilibrium. n=16,k=2 converges from empty
    // (n=10,k=2 happens to cycle — itself a legitimate §4.3 observation).
    let spec = GameSpec::uniform(16, 2);
    let mut walk = Walk::new(&spec, Configuration::empty(16));
    assert!(matches!(
        walk.run(100_000).unwrap(),
        WalkOutcome::Equilibrium { .. }
    ));
    let mut perturbed = walk.into_config();
    perturbed
        .set_strategy(&spec, NodeId::new(3), vec![NodeId::new(4)])
        .unwrap();

    let mut repair = Walk::new(&spec, perturbed);
    match repair.run(100_000).unwrap() {
        WalkOutcome::Equilibrium { .. } => {
            assert!(StabilityChecker::new(&spec)
                .is_stable(repair.config())
                .unwrap());
        }
        WalkOutcome::Cycle { .. } => {} // also a legitimate §4.3 outcome
        WalkOutcome::StepLimit { .. } => panic!("dynamics neither converged nor cycled"),
    }
}

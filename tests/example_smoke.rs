//! Smoke tests: every example in `examples/` must compile and run to
//! completion. Examples are the public quickstart surface, so a broken one
//! is a broken front door.
//!
//! The examples are built through a real `cargo build --examples` invocation
//! into a **separate** target directory (`target-smoke/`): the outer
//! `cargo test` holds the build lock on `target/` for its whole run, so a
//! nested build into the same directory would deadlock.

use std::path::{Path, PathBuf};
use std::process::Command;

const EXAMPLES: [&str; 5] = [
    "quickstart",
    "p2p_overlay",
    "social_influence",
    "fractional_peering",
    "overlay_service",
];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR of this test is the facade package = repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn smoke_target_dir(root: &Path) -> PathBuf {
    root.join("target-smoke")
}

#[test]
fn all_examples_compile_and_run() {
    let root = workspace_root();
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    let target_dir = smoke_target_dir(&root);

    // Release: the dynamics-heavy examples are ~50x slower unoptimized, and
    // the release artifacts double as what CI's `cargo run --release
    // --example` step exercises.
    let build = Command::new(&cargo)
        .current_dir(&root)
        .args(["build", "--examples", "--release", "--quiet"])
        .env("CARGO_TARGET_DIR", &target_dir)
        .output()
        .expect("spawn cargo build --examples");
    assert!(
        build.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&build.stderr)
    );

    for example in EXAMPLES {
        let binary = target_dir.join("release").join("examples").join(example);
        assert!(
            binary.exists(),
            "example binary missing after build: {}",
            binary.display()
        );
        let run = Command::new(&binary)
            .current_dir(&root)
            .env("CARGO_TARGET_DIR", &target_dir)
            .output()
            .unwrap_or_else(|e| panic!("spawn example {example}: {e}"));
        assert!(
            run.status.success(),
            "example {example} exited with {:?}:\n--- stdout\n{}\n--- stderr\n{}",
            run.status.code(),
            String::from_utf8_lossy(&run.stdout),
            String::from_utf8_lossy(&run.stderr)
        );
        assert!(
            !run.stdout.is_empty(),
            "example {example} printed nothing — quickstart output is part of its contract"
        );
    }
}

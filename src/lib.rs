//! # BBC games — Bounded Budget Connection games in Rust
//!
//! A full implementation of Laoutaris, Poplawski, Rajaraman, Sundaram and
//! Teng, *"Bounded Budget Connection (BBC) Games or How to make friends and
//! influence people, on a budget"* (PODC 2008): `n` strategic nodes each buy
//! outgoing links under a budget to minimize their preference-weighted
//! distances to everyone else.
//!
//! This facade crate re-exports the member crates:
//!
//! * `core` ([`bbc_core`]) — game model, cost evaluation, exact best response,
//!   stability checking, best-response dynamics, equilibrium enumeration;
//! * `graph` ([`bbc_graph`]) — the graph substrate (BFS, Dijkstra, SCC,
//!   reachability, diameter);
//! * `constructions` ([`bbc_constructions`]) — every instance family from the
//!   paper (Forest of Willows, Cayley graphs, gadgets, the 3SAT reduction);
//! * `fractional` ([`bbc_fractional`]) — fractional games on a min-cost-flow
//!   substrate (Theorem 3);
//! * `sat` ([`bbc_sat`]) — the 3SAT toolkit behind Theorem 2;
//! * `analysis` ([`bbc_analysis`]) — social cost, PoA/PoS, fairness, reports.
//!
//! # Verifying, benchmarking, reproducing
//!
//! ```text
//! cargo build --release && cargo test -q        # tier-1 verify: everything
//! cargo run --release -p bbc-experiments --bin run_all   # the paper's artifacts
//! cargo bench -p bbc-bench --bench best_response         # hot-path benchmarks
//! ```
//!
//! The tier-1 command runs the unit tests, all six per-crate property
//! suites, the theorem-integration and failure-injection suites, the
//! doctests, and a smoke test that builds and executes every example.
//! Property tests are deterministic: the vendored proptest shim derives
//! each test's RNG seed from the test name (see `vendor/README.md`).
//!
//! # Quickstart
//!
//! ```
//! use bbc::prelude::*;
//!
//! // An (n,k)-uniform game: run best-response dynamics from scratch and
//! // verify the endpoint is a pure Nash equilibrium.
//! let spec = GameSpec::uniform(12, 2);
//! let mut walk = Walk::new(&spec, Configuration::empty(12));
//! assert!(matches!(walk.run(100_000)?, WalkOutcome::Equilibrium { .. }));
//! assert!(StabilityChecker::new(&spec).is_stable(walk.config())?);
//! # Ok::<(), bbc::Error>(())
//! ```

#![forbid(unsafe_code)]

pub use bbc_analysis as analysis;
pub use bbc_constructions as constructions;
pub use bbc_core as core;
pub use bbc_fractional as fractional;
pub use bbc_graph as graph;
pub use bbc_sat as sat;

pub use bbc_core::{Error, Result};

/// The most common imports, in one place.
pub mod prelude {
    pub use bbc_analysis::{fairness, price_ratio, social_cost, Table};
    pub use bbc_constructions::{
        CayleyGraph, ForestOfWillows, Gadget, GadgetVariant, MaxPoaGraph, RingWithPath,
        SatReduction,
    };
    pub use bbc_core::{
        best_response, enumerate, BestResponseOptions, ChurnConfig, ChurnEvent, ChurnReport,
        ChurnSim, Configuration, CostModel, Error, Evaluator, GameSpec, LandmarkPolicy, NodeId,
        Result, Scheduler, StabilityChecker, Walk, WalkOutcome,
    };
    pub use bbc_fractional::{FractionalConfig, FractionalGame};
    pub use bbc_sat::{dpll, Cnf, Lit};
}

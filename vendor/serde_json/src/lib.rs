//! Offline stand-in for `serde_json`: renders and parses JSON through the
//! vendored `serde` shim's [`serde::Value`] tree.
//!
//! Supports the full JSON grammar (objects, arrays, strings with escapes,
//! numbers, booleans, null). Numbers parse to `u64`/`i64` when integral and
//! to `f64` otherwise, mirroring how the shim's primitive impls expect them.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float, which JSON
/// cannot represent.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
///
/// Returns [`Error`] if the value contains a non-finite float.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------- writing

fn write_value(
    out: &mut String,
    value: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("non-finite float cannot be encoded as JSON"));
            }
            let text = x.to_string();
            out.push_str(&text);
            // Keep floats floats across a round-trip: `2.0` must not become
            // the integer `2`.
            if !text.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected , or ] at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected , or }} at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let code = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect `\uDC00`-range low half.
                                if !(self.bytes.get(self.pos + 1) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 2) == Some(&b'u'))
                                {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                let combined = 0x10000
                                    + ((code - 0xD800) << 10)
                                    + (low
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| Error::new("invalid low surrogate"))?);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid utf-8 inside string"))?;
                    let c = text.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\uXXXX` escape; on entry `pos` is at `u`.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos = end - 1;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if !is_float {
            if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Map(vec![
            ("id".to_string(), Value::Str("E0\n\"quoted\"".to_string())),
            ("agrees".to_string(), Value::Bool(true)),
            ("count".to_string(), Value::U64(42)),
            ("delta".to_string(), Value::I64(-7)),
            ("ratio".to_string(), Value::F64(2.0)),
            (
                "notes".to_string(),
                Value::Seq(vec![Value::Str("a".to_string()), Value::Null]),
            ),
            ("empty".to_string(), Value::Seq(vec![])),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(v.clone())).unwrap();
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();
        assert!(pretty.contains('\n'));

        struct Echo(Value);
        impl Deserialize for Echo {
            fn from_value(value: &Value) -> Result<Self, serde::DeError> {
                Ok(Echo(value.clone()))
            }
        }
        assert_eq!(from_str::<Echo>(&compact).unwrap().0, v);
        assert_eq!(from_str::<Echo>(&pretty).unwrap().0, v);
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
        assert_eq!(from_str::<String>(r#""café""#).unwrap(), "café");
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<u64>("[1,]").is_err());
        assert!(from_str::<bool>("truthy").is_err());
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str::<f64>(&text).unwrap(), 2.0);
    }
}

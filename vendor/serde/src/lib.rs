//! Offline stand-in for `serde`.
//!
//! The build environment has no network access, so the workspace vendors the
//! serialization surface it uses: `#[derive(Serialize, Deserialize)]` (with
//! `#[serde(transparent)]` on newtypes) and JSON round-trips through the
//! sibling `serde_json` shim.
//!
//! Instead of the real serde's visitor architecture, this shim serializes
//! through an owned [`Value`] tree (the `miniserde` design): [`Serialize`]
//! lowers `self` into a [`Value`], [`Deserialize`] rebuilds `Self` from one,
//! and data formats only ever translate `Value` ⇄ text. That is a few orders
//! of magnitude less code, and the experiment records this workspace
//! persists are small enough that the intermediate tree is irrelevant.
//!
//! The derive macros live in `vendor/serde_derive` and target exactly the
//! shapes this repository contains: named-field structs, newtype structs,
//! and enums with unit/newtype/struct/tuple variants — all without generics.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A self-describing serialized value (JSON data model plus unsigned 64-bit
/// integers, which the game code uses heavily).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null` (also the encoding of `Option::None`).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (field order is preserved so output
    /// is stable and diffable).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a field in serialized map entries.
pub fn map_get<'v>(entries: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A deserialization error (shape mismatch, missing field, unknown variant).
#[derive(Clone, Debug)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves into a [`Value`].
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// A `Value` is already the serialized form, so it passes through both
// traits unchanged — this is what lets frames carry pre-rendered documents
// (e.g. a metrics report) as an opaque JSON payload.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 {
                    Value::U64(*self as u64)
                } else {
                    Value::I64(*self as i64)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        concat!("expected ", stringify!($t), ", got {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            other => Err(DeError::new(format!("expected f64, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let seq = value
                    .as_seq()
                    .ok_or_else(|| DeError::new("expected tuple sequence"))?;
                if seq.len() != LEN {
                    return Err(DeError::new(format!(
                        "expected tuple of {LEN}, got {} elements",
                        seq.len()
                    )));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u64::from_value(&17u64.to_value()).unwrap(), 17);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert_eq!(
            Option::<u32>::from_value(&None::<u32>.to_value()).unwrap(),
            None
        );
        assert_eq!(
            Vec::<u32>::from_value(&vec![1u32, 2, 3].to_value()).unwrap(),
            vec![1, 2, 3]
        );
        assert_eq!(
            <(u32, bool)>::from_value(&(5u32, false).to_value()).unwrap(),
            (5, false)
        );
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::U64(1)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Bool(true)).is_err());
        assert!(u8::from_value(&Value::U64(300)).is_err());
    }
}

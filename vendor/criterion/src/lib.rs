//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this shim provides the
//! API surface the `bbc-bench` targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — with a
//! coarse wall-clock measurement loop instead of criterion's statistical
//! machinery. `cargo bench` therefore still produces per-benchmark numbers
//! (median of `sample_size` samples), just without outlier analysis, plots,
//! or saved baselines. Swap the real criterion back in when a registry is
//! reachable; no bench source changes are needed.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        Self {
            text: text.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, |b| routine(b));
        report(&self.name, &id, median);
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, |b| routine(b, input));
        report(&self.name, &id, median);
        self
    }

    /// Ends the group (numbers were already reported per benchmark).
    pub fn finish(self) {}
}

/// Times one closure invocation batch.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An identity function the optimizer cannot see through.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, mut routine: F) -> Duration {
    // Calibration pass: pick an iteration count that makes one sample take
    // roughly a millisecond, so ns-scale routines still measure above timer
    // resolution while second-scale routines run once.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bench);
    let per_iter = bench.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut bench);
        times.push(bench.elapsed / u32::try_from(iters).expect("iters fits in u32"));
    }
    times.sort_unstable();
    times[times.len() / 2]
}

fn report(group: &str, id: &BenchmarkId, median: Duration) {
    println!("  {group}/{id}: median {median:?}");
}

/// Declares a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::from_parameter("n1"), |b| {
            runs += 1;
            b.iter(|| black_box(2u64 + 2))
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs >= 3, "calibration plus each sample runs the routine");
    }
}

//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so this shim provides the
//! API surface the `bbc-bench` targets use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`criterion_group!`], [`criterion_main!`] — with a
//! coarse wall-clock measurement loop instead of criterion's statistical
//! machinery. `cargo bench` therefore still produces per-benchmark numbers
//! (median of `sample_size` samples), just without outlier analysis, plots,
//! or saved baselines. Swap the real criterion back in when a registry is
//! reachable; no bench source changes are needed.

use std::fmt;
use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            text: format!("{}/{parameter}", name.into()),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(text: &str) -> Self {
        Self {
            text: text.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(text: String) -> Self {
        Self { text }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, |b| routine(b));
        report(&self.name, &id, median);
        self
    }

    /// Runs a benchmark against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let median = run_samples(self.sample_size, |b| routine(b, input));
        report(&self.name, &id, median);
        self
    }

    /// Ends the group (numbers were already reported per benchmark).
    pub fn finish(self) {}
}

/// Times one closure invocation batch.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// An identity function the optimizer cannot see through.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

fn run_samples<F: FnMut(&mut Bencher)>(samples: usize, mut routine: F) -> Duration {
    // Calibration pass: pick an iteration count that makes one sample take
    // roughly a millisecond, so ns-scale routines still measure above timer
    // resolution while second-scale routines run once.
    let mut bench = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    routine(&mut bench);
    let per_iter = bench.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut bench = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut bench);
        times.push(bench.elapsed / u32::try_from(iters).expect("iters fits in u32"));
    }
    times.sort_unstable();
    times[times.len() / 2]
}

fn report(group: &str, id: &BenchmarkId, median: Duration) {
    println!("  {group}/{id}: median {median:?}");
    record_result(&format!("{group}/{id}"), median.as_nanos());
}

// ---------------------------------------------------------------------------
// Machine-readable results: every reported median also lands in a process-
// wide registry that `criterion_main!` flushes to `BENCH_results.json`
// (override the path with the `BENCH_RESULTS_PATH` env var). Bench binaries
// run sequentially under `cargo bench`, so the writer merges with whatever an
// earlier binary left in the file — the end state is one map of
// `"group/bench": {"median_ns": N, "available_parallelism": P}` records
// covering the whole bench suite, the baseline future performance PRs diff
// against. `available_parallelism` is captured at flush time, so parallel
// baselines carry the core count they were recorded on (a 1-core container
// measures coordination overhead, not speedup — comparable only to numbers
// recorded at the same parallelism). Legacy flat `"name": N` entries are
// still parsed; they merge in with parallelism 0 ("unrecorded").
// ---------------------------------------------------------------------------

/// One bench record: the measured median and the host parallelism it was
/// recorded under (0 = unrecorded, for entries migrated from the flat
/// pre-parallelism format).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchRecord {
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u128,
    /// `std::thread::available_parallelism()` of the recording host.
    pub available_parallelism: u64,
}

fn registry() -> &'static std::sync::Mutex<Vec<(String, u128)>> {
    static REGISTRY: std::sync::OnceLock<std::sync::Mutex<Vec<(String, u128)>>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

fn record_result(name: &str, median_ns: u128) {
    registry()
        .lock()
        .expect("bench registry poisoned")
        .push((name.to_string(), median_ns));
}

/// Records an externally-measured median into the process registry, for
/// tools that time themselves instead of going through [`Bencher`] (the
/// `bbc-serve` load generator reports its request latencies this way).
/// Flush with [`write_results`].
pub fn record(name: &str, median_ns: u128) {
    record_result(name, median_ns);
}

/// Merges this process's recorded medians into the results file. Called by
/// [`criterion_main!`]; harmless to call with nothing recorded.
pub fn write_results() {
    let recorded = std::mem::take(&mut *registry().lock().expect("bench registry poisoned"));
    if recorded.is_empty() {
        return;
    }
    let parallelism = std::thread::available_parallelism().map_or(0, |p| p.get() as u64);
    let path =
        std::env::var("BENCH_RESULTS_PATH").unwrap_or_else(|_| "BENCH_results.json".to_string());
    let mut merged: std::collections::BTreeMap<String, BenchRecord> =
        std::fs::read_to_string(&path)
            .ok()
            .map(|text| parse_results(&text))
            .unwrap_or_default();
    for (name, median_ns) in recorded {
        // A baseline recorded on a different core count measures a
        // different thing (a 1-core box times coordination overhead, not
        // speedup), so flag the apples-to-oranges diff instead of letting
        // it overwrite silently.
        if let Some(prev) = merged.get(&name) {
            if prev.available_parallelism != 0
                && parallelism != 0
                && prev.available_parallelism != parallelism
            {
                eprintln!(
                    "warning: `{name}` baseline was recorded at available_parallelism={}, \
                     this run has {parallelism}; the numbers are not comparable",
                    prev.available_parallelism
                );
            }
        }
        merged.insert(
            name,
            BenchRecord {
                median_ns,
                available_parallelism: parallelism,
            },
        );
    }
    let mut out = String::from("{\n");
    for (i, (name, record)) in merged.iter().enumerate() {
        let comma = if i + 1 == merged.len() { "" } else { "," };
        out.push_str(&format!(
            "  \"{}\": {{ \"median_ns\": {}, \"available_parallelism\": {} }}{comma}\n",
            escape_json(name),
            record.median_ns,
            record.available_parallelism
        ));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("could not write bench results to {path}: {e}");
    } else {
        println!("bench results: {path}");
    }
}

fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

/// Parses the `{"name": {"median_ns": N, "available_parallelism": P}}`
/// maps this module writes, plus the legacy flat `{"name": N}` form
/// (migrated with parallelism 0). Anything malformed is skipped — the file
/// is a cache, not a source of truth.
fn parse_results(text: &str) -> std::collections::BTreeMap<String, BenchRecord> {
    let mut out = std::collections::BTreeMap::new();
    let mut chars = text.chars().peekable();
    // Enter the top-level object; entries are "key": value.
    while let Some(c) = chars.next() {
        if c != '"' {
            continue;
        }
        let key = parse_string_rest(&mut chars);
        skip_ws(&mut chars);
        if chars.peek() != Some(&':') {
            continue;
        }
        chars.next();
        skip_ws(&mut chars);
        match chars.peek() {
            Some('0'..='9') => {
                // Legacy flat entry: bare integer median.
                if let Some(median_ns) = parse_u128(&mut chars) {
                    out.insert(
                        key,
                        BenchRecord {
                            median_ns,
                            available_parallelism: 0,
                        },
                    );
                }
            }
            Some('{') => {
                chars.next();
                // Inner object: named integer fields in any order.
                let (mut median_ns, mut parallelism) = (None, None);
                loop {
                    skip_ws(&mut chars);
                    match chars.next() {
                        Some('"') => {
                            let field = parse_string_rest(&mut chars);
                            skip_ws(&mut chars);
                            if chars.peek() == Some(&':') {
                                chars.next();
                                skip_ws(&mut chars);
                                if let Some(value) = parse_u128(&mut chars) {
                                    match field.as_str() {
                                        "median_ns" => median_ns = Some(value),
                                        "available_parallelism" => parallelism = Some(value),
                                        _ => {}
                                    }
                                }
                            }
                        }
                        Some('}') | None => break,
                        Some(_) => {}
                    }
                }
                if let Some(median_ns) = median_ns {
                    out.insert(
                        key,
                        BenchRecord {
                            median_ns,
                            available_parallelism: parallelism.unwrap_or(0) as u64,
                        },
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// Consumes a JSON string body after the opening quote (understands the two
/// escapes `escape_json` produces).
fn parse_string_rest(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> String {
    let mut s = String::new();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                if let Some(next) = chars.next() {
                    s.push(next);
                }
            }
            '"' => break,
            c => s.push(c),
        }
    }
    s
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(' ' | '\t' | '\n' | '\r')) {
        chars.next();
    }
}

fn parse_u128(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<u128> {
    let mut digits = String::new();
    while matches!(chars.peek(), Some('0'..='9')) {
        digits.push(chars.next().expect("peeked digit"));
    }
    digits.parse().ok()
}

/// Declares a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary. Flushes the recorded medians to the
/// machine-readable results file after the last group finishes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_report() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut runs = 0;
        group.bench_function(BenchmarkId::from_parameter("n1"), |b| {
            runs += 1;
            b.iter(|| black_box(2u64 + 2))
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(runs >= 3, "calibration plus each sample runs the routine");
    }

    #[test]
    fn results_format_round_trips() {
        let mut map = std::collections::BTreeMap::new();
        map.insert(
            "walk/n24k3 \"engine\"".to_string(),
            BenchRecord {
                median_ns: 123_456,
                available_parallelism: 8,
            },
        );
        map.insert(
            "bfs/1600".to_string(),
            BenchRecord {
                median_ns: 42,
                available_parallelism: 1,
            },
        );
        let mut text = String::from("{\n");
        for (i, (name, record)) in map.iter().enumerate() {
            let comma = if i + 1 == map.len() { "" } else { "," };
            text.push_str(&format!(
                "  \"{}\": {{ \"median_ns\": {}, \"available_parallelism\": {} }}{comma}\n",
                escape_json(name),
                record.median_ns,
                record.available_parallelism
            ));
        }
        text.push_str("}\n");
        assert_eq!(parse_results(&text), map);
        assert_eq!(
            parse_results("not json at all"),
            std::collections::BTreeMap::new()
        );
    }

    #[test]
    fn legacy_flat_results_parse_with_unrecorded_parallelism() {
        let text = "{\n  \"bfs/100\": 390,\n  \"walk/n12k1\": 66868\n}\n";
        let parsed = parse_results(text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(
            parsed["bfs/100"],
            BenchRecord {
                median_ns: 390,
                available_parallelism: 0
            }
        );
    }
}

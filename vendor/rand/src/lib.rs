//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! small slice of `rand`'s API it actually uses (see `vendor/README.md`):
//!
//! * [`rngs::SmallRng`] + [`SeedableRng::seed_from_u64`] — deterministic,
//!   seedable generator (xoshiro256++ seeded through SplitMix64);
//! * [`Rng::gen`] / [`Rng::gen_range`] for `bool` and the integer ranges the
//!   game code draws from;
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose_multiple`].
//!
//! Determinism matters more than statistical depth here: every caller seeds
//! explicitly and test expectations are pinned to the stream, so the
//! generator must stay stable across releases. Do not change the algorithm
//! without re-pinning the seeds used in `crates/*/tests`.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with SplitMix64
    /// (the same construction the real `rand` uses for small seeds).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface.
pub trait Rng: Sized {
    /// The next 64 raw bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of an inferred type (`bool` and the unsigned
    /// integers).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange {
    /// The element type of the range.
    type Output;

    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform draw from `[0, n)` without modulo bias (Lemire's method would be
/// overkill at these sizes; rejection sampling keeps the stream simple and
/// exactly uniform).
fn below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + below(rng, span) as $t
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u32, u64, usize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ seeded through
    /// SplitMix64 — the same family the real `SmallRng` draws from.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling and subset selection on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// `amount` distinct elements in random order (all of them if the
        /// slice is shorter).
        fn choose_multiple<'a, R: Rng>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose_multiple<'a, R: Rng>(
            &'a self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&'a T> {
            let mut indices: Vec<usize> = (0..self.len()).collect();
            indices.shuffle(rng);
            indices.truncate(amount);
            indices
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0u64..=5);
            assert!(y <= 5);
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 20-element shuffle virtually never fixes all");
    }

    #[test]
    fn choose_multiple_yields_distinct_elements() {
        let mut rng = SmallRng::seed_from_u64(2);
        let pool: Vec<u32> = (0..10).collect();
        for _ in 0..100 {
            let mut picked: Vec<u32> = pool.choose_multiple(&mut rng, 3).copied().collect();
            assert_eq!(picked.len(), 3);
            picked.sort_unstable();
            picked.dedup();
            assert_eq!(picked.len(), 3);
        }
    }

    #[test]
    fn gen_infers_bool() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut t = 0;
        for _ in 0..1000 {
            if rng.gen() {
                t += 1;
            }
        }
        assert!((300..700).contains(&t), "bool stream is roughly balanced");
    }
}

//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the workspace vendors the
//! subset of proptest it uses: the [`proptest!`] macro, `prop_assert*`/
//! [`prop_assume!`], integer-range and tuple strategies, [`Strategy::prop_map`]
//! / [`Strategy::prop_flat_map`], [`collection::vec`], [`bool::ANY`],
//! [`any`], and [`Just`].
//!
//! Differences from the real crate, chosen deliberately:
//!
//! * **Deterministic by construction.** Each `proptest!` test derives its RNG
//!   seed from the test's name (plus the optional `PROPTEST_SHIM_SEED`
//!   environment override), so `cargo test -q` produces the same cases on
//!   every run and every machine — no `proptest-regressions/` files needed.
//! * **No shrinking.** On failure the harness reports the case number and
//!   the effective seed; rerun with `PROPTEST_SHIM_SEED` to reproduce and
//!   debug. Shrinking machinery is the bulk of real proptest and is not
//!   needed to keep the suites green and deterministic.
//! * Strategies are plain generators: `generate(rng) -> Value`.

use std::ops::{Range, RangeInclusive};

pub use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Test-runner plumbing: configuration, RNG construction, case errors.
pub mod test_runner {
    use rand::{rngs::SmallRng, SeedableRng};

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the property to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before the test aborts.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Self {
                cases,
                ..Self::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// A `prop_assume!` filtered this case out; it does not count.
        Reject,
        /// A `prop_assert*!` failed with this message.
        Fail(String),
    }

    /// Builds the deterministic RNG for one property test. The seed mixes
    /// the test name with `PROPTEST_SHIM_SEED` (default 0), so runs are
    /// reproducible and each test draws an independent stream.
    pub fn deterministic_rng(test_name: &str) -> (SmallRng, u64) {
        let base: u64 = std::env::var("PROPTEST_SHIM_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);
        // FNV-1a over the test name, mixed with the base seed.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let seed = hash ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (SmallRng::seed_from_u64(seed), seed)
    }
}

/// A value generator. The shim's analogue of proptest's `Strategy`, minus
/// shrinking: `generate` draws one value from the RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut SmallRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Types with a canonical "any value" strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen::<u64>() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> Self {
        rng.gen()
    }
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T> {
    marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — every value of `T` is fair game.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        marker: std::marker::PhantomData,
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// Generates `true` or `false` uniformly.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen()
        }
    }

    /// Uniform boolean strategy.
    pub const ANY: BoolAny = BoolAny;
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SmallRng, Strategy};
    use rand::Rng;

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                lo: exact,
                hi: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            Self {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The imports property tests actually use.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
    };
}

/// Declares property tests. Mirrors real proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0usize..10, (a, b) in my_strategy()) { prop_assert!(x < 10); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let (mut rng, seed) = $crate::test_runner::deterministic_rng(stringify!($name));
            let strategies = ($($strategy,)+);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let ($($pat,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                // One case = one closure call: `prop_assert*`/`prop_assume!`
                // early-return a `TestCaseError` from it.
                let case = move || {
                    $body
                    ::std::result::Result::Ok(())
                };
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    case();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject,
                    ) => {
                        rejected += 1;
                        assert!(
                            rejected <= config.max_global_rejects,
                            "property {}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            rejected,
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(message),
                    ) => {
                        panic!(
                            "property {} failed after {} passing cases \
                             (deterministic seed {:#x}): {}",
                            stringify!($name),
                            passed,
                            seed,
                            message,
                        );
                    }
                }
            }
        }
    )*};
}

/// Rejects the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Asserts within a property; failure reports the case deterministically.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {:?} == {:?}", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {:?} == {:?}: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {:?} != {:?}",
                left, right
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 1u64..=5, z in 0u32..7) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=5).contains(&y));
            prop_assert!(z < 7);
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0usize..5, 0usize..5).prop_map(|(x, y)| (x, x + y))) {
            prop_assert!(b >= a);
            prop_assert!(a < 5);
        }

        #[test]
        fn flat_map_respects_dependency(v in (1usize..8).prop_flat_map(|n| {
            crate::collection::vec(0usize..n, n)
        })) {
            let n = v.len();
            prop_assert!((1..8).contains(&n));
            for &x in &v {
                prop_assert!(x < n);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }

        #[test]
        fn bool_any_and_just_work(b in crate::bool::ANY, j in Just(41usize)) {
            let _ = b;
            prop_assert_eq!(j + 1, 42);
        }

        #[test]
        fn any_u64_covers_high_bits(x in any::<u64>()) {
            // Not a real property — just exercise the strategy.
            let _ = x;
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let (_, s1) = crate::test_runner::deterministic_rng("alpha");
        let (_, s2) = crate::test_runner::deterministic_rng("alpha");
        let (_, s3) = crate::test_runner::deterministic_rng("beta");
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_panic_with_seed() {
        proptest! {
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}

//! Derive macros for the vendored `serde` shim.
//!
//! `syn`/`quote` are unavailable offline, so this crate parses the derive
//! input by walking `proc_macro::TokenTree`s directly and emits the impl as
//! a source string. It supports exactly the shapes this workspace contains —
//! non-generic named-field structs, tuple structs, and enums whose variants
//! are unit, tuple, or struct-like — plus the `#[serde(transparent)]`
//! marker (which is also the default behavior for single-field tuple
//! structs, matching real serde's newtype rule).
//!
//! Anything outside that envelope panics with a clear message at compile
//! time rather than generating wrong code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
struct Input {
    name: String,
    kind: Kind,
}

enum Kind {
    /// `struct S { a: A, b: B }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct S(A, B);` — field count.
    TupleStruct(usize),
    /// `struct S;`
    UnitStruct,
    /// `enum E { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

/// Derives the shim's `serde::Serialize` for the supported shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` for the supported shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    skip_attributes(&tokens, &mut pos);
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic type `{name}` is not supported");
    }

    let kind = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde shim derive: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde shim derive: expected struct or enum, found `{other}`"),
    };

    Input { name, kind }
}

/// Skips `#[...]` attribute groups (doc comments arrive in this form too).
fn skip_attributes(tokens: &[TokenTree], pos: &mut usize) {
    while matches!(tokens.get(*pos), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *pos += 1;
        match tokens.get(*pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *pos += 1,
            other => panic!("serde shim derive: malformed attribute: {other:?}"),
        }
    }
}

/// Skips `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(
            tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(i)) => {
            *pos += 1;
            i.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Skips one type expression: everything up to a comma at angle-bracket
/// depth zero. Parenthesized/bracketed parts arrive as single groups, so
/// only `<`/`>` need explicit depth tracking.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut depth = 0i32;
    while let Some(tok) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses `a: A, b: B, ...` from a brace group, returning field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut pos);
        fields.push(expect_ident(&tokens, &mut pos));
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde shim derive: expected `:` after field name: {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    fields
}

/// Counts the fields of a tuple struct/variant (top-level commas).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0;
    let mut count = 0;
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        skip_visibility(&tokens, &mut pos);
        skip_type(&tokens, &mut pos);
        count += 1;
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        skip_attributes(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut pos);
        let shape = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde shim derive: explicit discriminants are not supported");
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => format!(
            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        Shape::Tuple(1) => format!(
            "{name}::{vname}(f0) => ::serde::Value::Map(vec![(\
                 ::std::string::String::from({vname:?}), \
                 ::serde::Serialize::to_value(f0))]),"
        ),
        Shape::Tuple(n) => {
            let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                .collect();
            format!(
                "{name}::{vname}({}) => ::serde::Value::Map(vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::Value::Seq(vec![{}]))]),",
                binders.join(", "),
                items.join(", ")
            )
        }
        Shape::Named(fields) => {
            let binders = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{name}::{vname} {{ {binders} }} => ::serde::Value::Map(vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::Value::Map(vec![{}]))]),",
                entries.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(name, f)).collect();
            format!(
                "let entries = value.as_map().ok_or_else(|| \
                     ::serde::DeError::new(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(value)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            format!(
                "let seq = value.as_seq().ok_or_else(|| \
                     ::serde::DeError::new(\"expected sequence for {name}\"))?;\n\
                 if seq.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::DeError::new(\"wrong tuple arity for {name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_deserialize_enum(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn named_field_init(owner: &str, field: &str) -> String {
    format!(
        "{field}: ::serde::Deserialize::from_value(::serde::map_get(entries, {field:?})\
             .ok_or_else(|| ::serde::DeError::new(\
                 \"missing field `{field}` in {owner}\"))?)?"
    )
}

fn gen_deserialize_enum(name: &str, variants: &[Variant]) -> String {
    let mut out = String::new();

    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.shape, Shape::Unit))
        .map(|v| {
            format!(
                "{:?} => return ::std::result::Result::Ok({name}::{}),",
                v.name, v.name
            )
        })
        .collect();
    if !unit_arms.is_empty() {
        out.push_str(&format!(
            "if let ::std::option::Option::Some(s) = value.as_str() {{\n\
                 match s {{ {} _ => {{}} }}\n\
             }}\n",
            unit_arms.join(" ")
        ));
    }

    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| de_tagged_arm(name, v))
        .collect();
    if !tagged_arms.is_empty() {
        out.push_str(&format!(
            "if let ::std::option::Option::Some(entries) = value.as_map() {{\n\
                 if entries.len() == 1 {{\n\
                     let (tag, inner) = &entries[0];\n\
                     match tag.as_str() {{ {} _ => {{}} }}\n\
                 }}\n\
             }}\n",
            tagged_arms.join(" ")
        ));
    }

    out.push_str(&format!(
        "::std::result::Result::Err(::serde::DeError::new(\
             \"value matches no variant of {name}\"))"
    ));
    out
}

fn de_tagged_arm(name: &str, v: &Variant) -> Option<String> {
    let vname = &v.name;
    match &v.shape {
        Shape::Unit => None,
        Shape::Tuple(1) => Some(format!(
            "{vname:?} => return ::std::result::Result::Ok(\
                 {name}::{vname}(::serde::Deserialize::from_value(inner)?)),"
        )),
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            Some(format!(
                "{vname:?} => {{\n\
                     let seq = inner.as_seq().ok_or_else(|| ::serde::DeError::new(\
                         \"expected sequence for {name}::{vname}\"))?;\n\
                     if seq.len() != {n} {{ return ::std::result::Result::Err(\
                         ::serde::DeError::new(\"wrong arity for {name}::{vname}\")); }}\n\
                     return ::std::result::Result::Ok({name}::{vname}({}));\n\
                 }}",
                inits.join(", ")
            ))
        }
        Shape::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| named_field_init(&format!("{name}::{vname}"), f))
                .collect();
            Some(format!(
                "{vname:?} => {{\n\
                     let entries = inner.as_map().ok_or_else(|| ::serde::DeError::new(\
                         \"expected map for {name}::{vname}\"))?;\n\
                     return ::std::result::Result::Ok({name}::{vname} {{ {} }});\n\
                 }}",
                inits.join(", ")
            ))
        }
    }
}

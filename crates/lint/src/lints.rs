//! The per-file lint catalog (L1, L2, L5 and the `reference.rs` import
//! rule of L3), plus allow-annotation parsing and test-code exemption.
//!
//! Catalog (see `LINTS.md` at the repo root for rationale and blessed
//! patterns):
//!
//! * **L1 `determinism`** — no `HashMap`/`HashSet` with the default
//!   (randomly seeded) hasher, no `Instant::now`/`SystemTime`/`thread_rng`
//!   in non-bench library code. Wall-clock reads are additionally fenced by
//!   the blessed-clock pattern: the only file allowed to touch
//!   `Instant::now`/`SystemTime` at all is `crates/obs/src/clock.rs` (the
//!   `bbc_obs::WallClock` impl) — everything else routes timing through a
//!   `&dyn bbc_obs::Clock`.
//! * **L2 `narrowing-cast`** — no bare `as u32`/`as u16`/`as u8` in the
//!   row-width-critical files; conversions go through
//!   `RowWord::from_u64`/`widen` or carry a reasoned allow.
//! * **L3 `layering`** — (here) `reference.rs` may not import from
//!   `engine`/`landmark`; the manifest direction rules live in
//!   [`crate::layering`].
//! * **L5 `panic`** — no `.unwrap()`/`.expect(…)`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test library code without a reasoned allow.
//!
//! Suppressions are inline comments of the form
//! `// bbc-lint: allow(<lint>, <reason>)`; an allow covers its own line and
//! the next line, must carry a non-empty reason, and must actually suppress
//! something (a dead allow is itself a diagnostic, so annotations cannot
//! rot in place).

use std::collections::BTreeMap;

use crate::lexer::{lex, Token, TokenKind};

/// One machine-readable finding: printed as `file:line: [lint] message`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint id (`determinism`, `narrowing-cast`, `layering`, `panic`,
    /// `reference-drift`, `malformed-allow`, `unused-allow`).
    pub lint: &'static str,
    /// Human explanation with the repair options.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Per-file rule configuration, derived from the file's repo path in
/// workspace mode or from a `// bbc-lint-fixture:` header in fixture mode.
#[derive(Clone, Debug, Default)]
pub struct FileRules {
    /// Apply L2 (`narrowing-cast`): true for the row-width-critical files.
    pub narrowing: bool,
    /// Skip L1 (`determinism`): true for the bench harness crate.
    pub bench: bool,
    /// Apply the `reference.rs` import restriction (part of L3).
    pub reference_imports: bool,
    /// The blessed wall-clock boundary (`bbc_obs::WallClock` only): exempt
    /// from the L1 `Instant::now`/`SystemTime` checks while every other L1
    /// rule still applies.
    pub clock: bool,
}

/// The single file allowed to read the wall clock directly: the
/// `bbc_obs::WallClock` impl. Everything else takes a `&dyn bbc_obs::Clock`
/// so timing stays injectable (and deterministic under `ManualClock`).
pub const BLESSED_CLOCK_FILE: &str = "crates/obs/src/clock.rs";

/// Repo-relative paths where bare narrowing casts are forbidden (L2): the
/// row-width kernels and the engine hot paths that feed them.
pub const NARROWING_FILES: &[&str] = &[
    "crates/graph/src/rows.rs",
    "crates/graph/src/csr.rs",
    "crates/graph/src/blocks.rs",
    "crates/core/src/engine.rs",
    "crates/core/src/best_response.rs",
    "crates/core/src/landmark.rs",
];

impl FileRules {
    /// Rules for a repo file, keyed by its repo-relative path.
    pub fn for_repo_path(rel: &str) -> Self {
        Self {
            narrowing: NARROWING_FILES.contains(&rel),
            bench: rel.starts_with("crates/bench/"),
            reference_imports: rel == "crates/core/src/reference.rs",
            clock: rel == BLESSED_CLOCK_FILE,
        }
    }

    /// Rules from a fixture header comment: whitespace-separated flags
    /// after `bbc-lint-fixture:`, e.g. `// bbc-lint-fixture: narrowing`.
    pub fn apply_fixture_flags(&mut self, flags: &str) {
        for flag in flags.split_whitespace() {
            match flag {
                "narrowing" => self.narrowing = true,
                "bench" => self.bench = true,
                "reference" => self.reference_imports = true,
                "clock" => self.clock = true,
                _ => {}
            }
        }
    }
}

/// An inline suppression parsed from a comment.
#[derive(Clone, Debug)]
struct Allow {
    /// The comment's line; the allow covers this line and the next.
    line: u32,
    lint: String,
    /// Set once the allow suppressed at least one diagnostic.
    used: bool,
}

/// Lints one file's source text. `file` is the path used in diagnostics.
pub fn lint_source(file: &str, src: &str, rules: &FileRules) -> Vec<Diagnostic> {
    let tokens = lex(src);
    let mut out = Vec::new();
    let mut allows = collect_allows(file, &tokens, &mut out);
    let test_lines = test_spans(&tokens);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();

    let mut raw = Vec::new();
    if !rules.bench {
        determinism(file, &code, rules.clock, &mut raw);
    }
    if rules.narrowing {
        narrowing(file, &code, &mut raw);
    }
    if rules.reference_imports {
        reference_imports(file, &code, &mut raw);
    }
    panic_freedom(file, &code, &mut raw);

    for d in raw {
        if test_lines.contains(&d.line) {
            continue;
        }
        // Same-line allows win over previous-line ones, so that consecutive
        // annotated lines each consume their own annotation rather than the
        // first allow absorbing its neighbour's diagnostic.
        let hit = allows
            .iter()
            .position(|a| a.lint == d.lint && a.line == d.line)
            .or_else(|| {
                allows
                    .iter()
                    .position(|a| a.lint == d.lint && a.line + 1 == d.line)
            });
        if let Some(i) = hit {
            allows[i].used = true;
            continue;
        }
        out.push(d);
    }

    for a in &allows {
        if !a.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: a.line,
                lint: "unused-allow",
                message: format!(
                    "allow({}) suppresses nothing on this or the next line; remove it",
                    a.lint
                ),
            });
        }
    }

    out.sort();
    // One diagnostic per (line, lint): `use crate::engine::…` would
    // otherwise fire both the path rule and the use-tree rule.
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.lint == b.lint);
    out
}

/// Extracts `bbc-lint: allow(<lint>, <reason>)` annotations from comments;
/// malformed ones (bad syntax, unknown lint id, missing reason) become
/// diagnostics immediately.
fn collect_allows(file: &str, tokens: &[Token], out: &mut Vec<Diagnostic>) -> Vec<Allow> {
    const SUPPRESSIBLE: &[&str] = &["determinism", "narrowing-cast", "layering", "panic"];
    let mut allows = Vec::new();
    for t in tokens.iter().filter(|t| t.is_comment()) {
        // Anchored at the start of the comment (after the `//`/`/*`/doc
        // markers): prose *describing* the syntax never parses as an
        // annotation, while a typo'd trailing annotation still does — and
        // anything the parser rejects leaves the underlying lint firing.
        let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = body.strip_prefix("bbc-lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let mut bad = |msg: String| {
            out.push(Diagnostic {
                file: file.to_string(),
                line: t.line,
                lint: "malformed-allow",
                message: msg,
            });
        };
        let Some(args) = rest
            .strip_prefix("allow(")
            .and_then(|a| a.split_once(')'))
            .map(|(inside, _)| inside)
        else {
            bad("expected `bbc-lint: allow(<lint>, <reason>)`".to_string());
            continue;
        };
        let (lint, reason) = match args.split_once(',') {
            Some((l, r)) => (l.trim(), r.trim()),
            None => (args.trim(), ""),
        };
        if !SUPPRESSIBLE.contains(&lint) {
            bad(format!(
                "unknown or unsuppressible lint `{lint}` (suppressible: {})",
                SUPPRESSIBLE.join(", ")
            ));
            continue;
        }
        if reason.is_empty() {
            bad(format!(
                "allow({lint}) needs a written reason: allow({lint}, <why this is sound>)"
            ));
            continue;
        }
        allows.push(Allow {
            line: t.line,
            lint: lint.to_string(),
            used: false,
        });
    }
    allows
}

/// Lines belonging to test-only items: any item (or statement) introduced
/// by an attribute group containing the identifier `test` — `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, …))]` — including the whole brace body
/// of a `#[cfg(test)] mod tests { … }`.
fn test_spans(tokens: &[Token]) -> std::collections::BTreeSet<u32> {
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut lines = std::collections::BTreeSet::new();
    let mut i = 0usize;
    while i < code.len() {
        if code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[") {
            let (end, has_test) = scan_attr(&code, i + 1);
            if has_test {
                let stop = skip_item(&code, end + 1);
                let from = code[i].line;
                let to = code.get(stop.saturating_sub(1)).map_or(from, |t| t.line);
                for l in from..=to {
                    lines.insert(l);
                }
                i = stop;
                continue;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    lines
}

/// From the `[` at `open`, returns (index of matching `]`, whether the
/// group contains the ident `test`).
fn scan_attr(code: &[&Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut i = open;
    while i < code.len() {
        match code[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i, has_test);
                }
            }
            "test" if code[i].kind == TokenKind::Ident => has_test = true,
            _ => {}
        }
        i += 1;
    }
    (code.len().saturating_sub(1), has_test)
}

/// Skips one item starting at `i` (past the introducing attribute):
/// further attributes, then either a `{ … }` body or a terminating `;`.
/// Returns the index just past the item.
fn skip_item(code: &[&Token], mut i: usize) -> usize {
    // Subsequent attributes on the same item.
    while i < code.len() && code[i].text == "#" && code.get(i + 1).is_some_and(|t| t.text == "[") {
        let (end, _) = scan_attr(code, i + 1);
        i = end + 1;
    }
    let mut paren = 0i64;
    let mut bracket = 0i64;
    while i < code.len() {
        match code[i].text.as_str() {
            "(" => paren += 1,
            ")" => paren -= 1,
            "[" => bracket += 1,
            "]" => bracket -= 1,
            ";" if paren == 0 && bracket == 0 => return i + 1,
            "{" if paren == 0 && bracket == 0 => {
                let mut depth = 0i64;
                while i < code.len() {
                    match code[i].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn push(out: &mut Vec<Diagnostic>, file: &str, line: u32, lint: &'static str, message: String) {
    out.push(Diagnostic {
        file: file.to_string(),
        line,
        lint,
        message,
    });
}

/// L1: default-hasher collections and wall-clock / OS-entropy sources.
/// `clock` marks the blessed wall-clock boundary ([`BLESSED_CLOCK_FILE`]):
/// there — and only there — the `Instant::now`/`SystemTime` checks are
/// waived, while the hasher and entropy rules still apply.
fn determinism(file: &str, code: &[&Token], clock: bool, out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if !has_explicit_hasher(code, i) => {
                push(
                    out,
                    file,
                    t.line,
                    "determinism",
                    format!(
                        "{} with the default randomly-seeded hasher; use \
                         bbc_core::det::{} (version-pinned FNV-1a) or spell out a \
                         deterministic BuildHasher",
                        t.text,
                        if t.text == "HashMap" {
                            "DetHashMap"
                        } else {
                            "DetHashSet"
                        },
                    ),
                );
            }
            "RandomState" | "DefaultHasher" => push(
                out,
                file,
                t.line,
                "determinism",
                format!(
                    "{} is randomly seeded; use the pinned FNV-1a hasher instead",
                    t.text
                ),
            ),
            "thread_rng" => push(
                out,
                file,
                t.line,
                "determinism",
                format!(
                    "{} is nondeterministic; library code must take seeds/clocks as inputs",
                    t.text
                ),
            ),
            "SystemTime" if !clock => push(
                out,
                file,
                t.line,
                "determinism",
                "SystemTime bypasses the blessed clock boundary; take a \
                 &dyn bbc_obs::Clock (bbc_obs::WallClock is the only sanctioned \
                 wall-clock source)"
                    .to_string(),
            ),
            "Instant"
                if !clock
                    && code.get(i + 1).is_some_and(|t| t.text == ":")
                    && code.get(i + 2).is_some_and(|t| t.text == ":")
                    && code.get(i + 3).is_some_and(|t| t.text == "now") =>
            {
                push(
                    out,
                    file,
                    t.line,
                    "determinism",
                    "Instant::now bypasses the blessed clock boundary; take a \
                     &dyn bbc_obs::Clock (bbc_obs::WallClock is the only sanctioned \
                     wall-clock source)"
                        .to_string(),
                );
            }
            _ => {}
        }
    }
}

/// True when `HashMap`/`HashSet` at `i` is written with an explicit hasher
/// type parameter (3 / 2 generic arguments respectively — the trailing
/// `S: BuildHasher` slot is spelled out).
fn has_explicit_hasher(code: &[&Token], i: usize) -> bool {
    let need = if code[i].text == "HashMap" { 3 } else { 2 };
    let mut j = i + 1;
    // Tolerate the turbofish form `HashMap::<…>`.
    if code.get(j).is_some_and(|t| t.text == ":") && code.get(j + 1).is_some_and(|t| t.text == ":")
    {
        j += 2;
    }
    if code.get(j).is_none_or(|t| t.text != "<") {
        return false;
    }
    let mut depth = 0i64;
    let mut args = 1usize;
    while j < code.len() {
        match code[j].text.as_str() {
            "<" => depth += 1,
            ">" => {
                depth -= 1;
                if depth == 0 {
                    return args >= need;
                }
            }
            "," if depth == 1 => args += 1,
            "(" | ";" | "{" => return false, // comparison operator, not generics
            _ => {}
        }
        j += 1;
    }
    false
}

/// L2: bare `as u32` / `as u16` / `as u8` in row-width-critical files.
fn narrowing(file: &str, code: &[&Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        if t.text == "as"
            && t.kind == TokenKind::Ident
            && code
                .get(i + 1)
                .is_some_and(|n| matches!(n.text.as_str(), "u32" | "u16" | "u8"))
        {
            push(
                out,
                file,
                t.line,
                "narrowing-cast",
                format!(
                    "bare `as {}` in a row-width-critical file; route the conversion \
                     through RowWord::from_u64/widen or justify it",
                    code[i + 1].text
                ),
            );
        }
    }
}

/// The `reference.rs` half of L3: the frozen executable spec may not reach
/// into the optimized `engine`/`landmark` modules, or it would stop being
/// an independent differential baseline.
fn reference_imports(file: &str, code: &[&Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        let offending = |name: &str| matches!(name, "engine" | "landmark");
        let flagged = match t.text.as_str() {
            // `crate::engine…` / `super::landmark…` anywhere.
            "crate" | "super" => {
                code.get(i + 1).is_some_and(|t| t.text == ":")
                    && code.get(i + 2).is_some_and(|t| t.text == ":")
                    && code.get(i + 3).is_some_and(|t| offending(&t.text))
            }
            // `use …{… engine …}` trees: any path segment named engine/landmark
            // inside a use statement.
            "use" => {
                let mut j = i + 1;
                let mut hit = false;
                while j < code.len() && code[j].text != ";" {
                    if code[j].kind == TokenKind::Ident && offending(&code[j].text) {
                        hit = true;
                    }
                    j += 1;
                }
                hit
            }
            _ => false,
        };
        if flagged {
            push(
                out,
                file,
                t.line,
                "layering",
                "reference.rs is the frozen differential baseline; it may not import \
                 from the engine/landmark modules it exists to check"
                    .to_string(),
            );
        }
    }
}

/// L5: panicking constructs in non-test library code.
fn panic_freedom(file: &str, code: &[&Token], out: &mut Vec<Diagnostic>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => {
                code.get(i.wrapping_sub(1)).is_some_and(|p| p.text == ".")
                    && code.get(i + 1).is_some_and(|n| n.text == "(")
            }
            "panic" | "todo" | "unimplemented" => code.get(i + 1).is_some_and(|n| n.text == "!"),
            _ => false,
        };
        if flagged {
            push(
                out,
                file,
                t.line,
                "panic",
                format!(
                    "{} in library code; return a typed Error or add \
                     `// bbc-lint: allow(panic, <why the invariant holds>)`",
                    match t.text.as_str() {
                        "unwrap" => ".unwrap()".to_string(),
                        "expect" => ".expect(…)".to_string(),
                        other => format!("{other}!"),
                    }
                ),
            );
        }
    }
}

/// FNV-1a 64-bit over raw bytes: the reference-drift (L4) content hash.
/// Same constants as the version-pinned hasher in `bbc_core::det`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Parses a fixture header (`// bbc-lint-fixture: <flags…>`) from the
/// leading comments of `src`, if present.
pub fn fixture_rules(src: &str) -> FileRules {
    let mut rules = FileRules::default();
    for t in lex(src).iter().filter(|t| t.is_comment()) {
        if let Some(at) = t.text.find("bbc-lint-fixture:") {
            rules.apply_fixture_flags(&t.text[at + "bbc-lint-fixture:".len()..]);
        }
    }
    rules
}

/// Expected-diagnostic markers in fixture files: a comment containing
/// `~ ERROR <lint-id>` asserts that lint fires on that comment's line.
pub fn fixture_markers(src: &str) -> BTreeMap<(u32, String), bool> {
    let mut markers = BTreeMap::new();
    for t in lex(src).iter().filter(|t| t.is_comment()) {
        let mut rest = t.text.as_str();
        while let Some(at) = rest.find("~ ERROR ") {
            rest = &rest[at + "~ ERROR ".len()..];
            let id: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '-')
                .collect();
            if !id.is_empty() {
                markers.insert((t.line, id), false);
            }
        }
    }
    markers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(src: &str, rules: &FileRules) -> Vec<(&'static str, u32)> {
        lint_source("f.rs", src, rules)
            .into_iter()
            .map(|d| (d.lint, d.line))
            .collect()
    }

    #[test]
    fn default_hasher_maps_fire_and_pinned_ones_do_not() {
        let rules = FileRules::default();
        assert_eq!(
            ids("use std::collections::HashMap;", &rules),
            [("determinism", 1)]
        );
        assert_eq!(
            ids("fn f(m: HashMap<u32, u64>) {}", &rules),
            [("determinism", 1)]
        );
        assert!(ids("type D = HashMap<K, V, BuildHasherDefault<Fnv1a>>;", &rules).is_empty());
        assert!(ids("type S = HashSet<K, DetState>;", &rules).is_empty());
        assert_eq!(
            ids("let m = HashMap::<K, V>::new();", &rules),
            [("determinism", 1)]
        );
    }

    #[test]
    fn comparison_with_less_than_is_not_generics() {
        // `HashMap < x` would only arise in expression position; the scanner
        // must not read the `<` as an argument list that never closes.
        assert_eq!(
            ids("let b = HashMap < x;", &FileRules::default()),
            [("determinism", 1)]
        );
    }

    #[test]
    fn clock_and_entropy_sources_fire() {
        let rules = FileRules::default();
        assert_eq!(ids("let t = Instant::now();", &rules), [("determinism", 1)]);
        assert_eq!(
            ids("let t = SystemTime::now();", &rules),
            [("determinism", 1)]
        );
        assert_eq!(ids("let r = thread_rng();", &rules), [("determinism", 1)]);
        // Plain `Instant` in a type position is fine (bench plumbing).
        assert!(ids("fn f(t: Instant) {}", &rules).is_empty());
        // And the bench crate is exempt from L1 wholesale.
        let bench = FileRules {
            bench: true,
            ..FileRules::default()
        };
        assert!(ids("let t = Instant::now();", &bench).is_empty());
    }

    #[test]
    fn blessed_clock_file_may_read_the_wall_clock_but_nothing_else() {
        let clock = FileRules {
            clock: true,
            ..FileRules::default()
        };
        // The waiver covers exactly the wall-clock sources…
        assert!(ids("let t = Instant::now();", &clock).is_empty());
        assert!(ids("let t = SystemTime::now();", &clock).is_empty());
        // …while the rest of L1 still applies inside the blessed file.
        assert_eq!(ids("let r = thread_rng();", &clock), [("determinism", 1)]);
        assert_eq!(
            ids("use std::collections::HashMap;", &clock),
            [("determinism", 1)]
        );
        // And the repo path map blesses only the WallClock impl.
        assert!(FileRules::for_repo_path(BLESSED_CLOCK_FILE).clock);
        assert!(!FileRules::for_repo_path("crates/obs/src/lib.rs").clock);
        assert!(!FileRules::for_repo_path("crates/serve/src/loadgen.rs").clock);
    }

    #[test]
    fn narrowing_casts_fire_only_where_configured() {
        let narrow = FileRules {
            narrowing: true,
            ..FileRules::default()
        };
        assert_eq!(ids("let x = y as u32;", &narrow), [("narrowing-cast", 1)]);
        assert_eq!(ids("let x = y as u16;", &narrow), [("narrowing-cast", 1)]);
        assert!(ids("let x = y as u64;", &narrow).is_empty());
        assert!(ids("let x = y as u32;", &FileRules::default()).is_empty());
    }

    #[test]
    fn panic_constructs_fire_but_fallible_combinators_do_not() {
        let rules = FileRules::default();
        assert_eq!(ids("let x = o.unwrap();", &rules), [("panic", 1)]);
        assert_eq!(ids("let x = o.expect(\"m\");", &rules), [("panic", 1)]);
        assert_eq!(ids("panic!(\"boom\");", &rules), [("panic", 1)]);
        assert_eq!(ids("todo!()", &rules), [("panic", 1)]);
        assert!(ids("let x = o.unwrap_or(0);", &rules).is_empty());
        assert!(ids("let x = o.unwrap_or_else(f);", &rules).is_empty());
        // `unwrap` in a string or comment is invisible.
        assert!(ids("let s = \"x.unwrap()\"; // .unwrap()", &rules).is_empty());
    }

    #[test]
    fn test_items_are_exempt() {
        let rules = FileRules::default();
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { o.unwrap(); }\n}\n";
        assert!(ids(src, &rules).is_empty());
        let src = "#[test]\nfn t() { o.unwrap(); }\nfn lib() { o.unwrap(); }\n";
        assert_eq!(ids(src, &rules), [("panic", 3)]);
    }

    #[test]
    fn allows_suppress_on_their_line_and_the_next() {
        let rules = FileRules::default();
        assert!(ids(
            "o.unwrap(); // bbc-lint: allow(panic, locally provable)",
            &rules
        )
        .is_empty());
        assert!(ids(
            "// bbc-lint: allow(panic, locally provable)\no.unwrap();",
            &rules
        )
        .is_empty());
        // Two lines down is out of range — and the allow itself goes stale.
        let src = "// bbc-lint: allow(panic, too far)\n\no.unwrap();";
        assert_eq!(ids(src, &rules), [("unused-allow", 1), ("panic", 3)]);
    }

    #[test]
    fn malformed_allows_are_diagnostics() {
        let rules = FileRules::default();
        assert_eq!(
            ids("o.unwrap(); // bbc-lint: allow(panic)", &rules),
            [("malformed-allow", 1), ("panic", 1)]
        );
        assert_eq!(
            ids("// bbc-lint: allow(no-such-lint, reason)", &rules),
            [("malformed-allow", 1)]
        );
        assert_eq!(
            ids("// bbc-lint: allowing things", &rules),
            [("malformed-allow", 1)]
        );
    }

    #[test]
    fn unused_allows_are_diagnostics() {
        let rules = FileRules::default();
        assert_eq!(
            ids(
                "// bbc-lint: allow(panic, nothing here panics)\nlet x = 1;",
                &rules
            ),
            [("unused-allow", 1)]
        );
    }

    #[test]
    fn reference_import_rule() {
        let rules = FileRules {
            reference_imports: true,
            ..FileRules::default()
        };
        assert_eq!(
            ids("use crate::engine::DistanceEngine;", &rules),
            [("layering", 1)]
        );
        assert_eq!(
            ids("use crate::{eval, landmark};", &rules),
            [("layering", 1)]
        );
        assert_eq!(
            ids("let e = crate::engine::new();", &rules),
            [("layering", 1)]
        );
        assert!(ids("use crate::{eval, spec};", &rules).is_empty());
        assert!(ids("use bbc_graph::BfsBuffer;", &rules).is_empty());
    }

    #[test]
    fn fnv1a_matches_the_pinned_vector() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn fixture_marker_parsing() {
        let src = "let x = 1; //~ ERROR panic\n// plain comment\n";
        let m = fixture_markers(src);
        assert_eq!(m.len(), 1);
        assert!(m.contains_key(&(1, "panic".to_string())));
    }
}

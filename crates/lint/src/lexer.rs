//! A small hand-rolled Rust lexer: just enough tokenization for the lint
//! catalog to reason about *code* (identifiers, punctuation, literals) and
//! *comments* (allow annotations) separately, without ever being fooled by
//! `unwrap()` inside a string literal, `//` inside a raw string, a nested
//! block comment, or a lifetime that looks like an unterminated char
//! literal.
//!
//! This is not a full Rust lexer — it does not classify keywords, float
//! exponents, or numeric suffixes — but every construct that affects
//! *where comments and strings begin and end* is handled exactly:
//! nested `/* /* */ */`, raw strings `r#"…"#` with any hash count, raw
//! identifiers `r#type`, byte/raw-byte strings, char literals (including
//! `'"'` and `'\''`), and lifetimes.

/// What a token is, as far as the lints care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`as`, `use`, `HashMap`, `r#type`, …).
    Ident,
    /// A lifetime (`'a`, `'static`, `'_`) — no closing quote.
    Lifetime,
    /// Single punctuation character (`.`, `:`, `<`, `!`, …).
    Punct,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `'c'`, `b'c'`.
    Literal,
    /// Numeric literal (`42`, `0xFF`, `1_000`, `2.5`).
    Number,
    /// `// …` (including `///` and `//!` doc comments) up to end of line.
    LineComment,
    /// `/* … */`, nesting handled; may span lines.
    BlockComment,
}

/// One lexed token with its 1-based starting line.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification used by the lint passes.
    pub kind: TokenKind,
    /// Source text of the token (comments keep their delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for the comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes `src` in one pass. Unterminated constructs (string, block
/// comment) consume the rest of the file rather than erroring: the lints
/// run on code that `rustc` already accepted, so recovery precision is not
/// worth the complexity.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char, counting newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.tokens.push(Token { kind, text, line });
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            match c {
                _ if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                    self.push(TokenKind::LineComment, start, line);
                }
                '/' if self.peek(1) == Some('*') => {
                    self.block_comment(start, line);
                }
                '\'' => self.char_or_lifetime(start, line),
                '"' => {
                    self.bump();
                    self.string_body();
                    self.push(TokenKind::Literal, start, line);
                }
                _ if is_ident_start(c) => self.word(start, line),
                _ if c.is_ascii_digit() => self.number(start, line),
                _ => {
                    self.bump();
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    /// `/* … */` with nesting: `/* a /* b */ c */` is one comment.
    fn block_comment(&mut self, start: usize, line: u32) {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment, start, line);
    }

    /// Body of a `"…"` string, starting after the opening quote; consumes
    /// the closing quote. Escapes hide the next char, so `"\""` works.
    fn string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
    }

    /// Raw string after the introducer: counts `#`s, then scans for the
    /// matching `"##…#` closer. Returns false if this is not actually a raw
    /// string opener (caller falls back to an identifier).
    fn raw_string_body(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        for _ in 0..=hashes {
            self.bump();
        }
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        true
    }

    /// Identifier, or one of the string-literal introducers spelled like an
    /// identifier: `r"…"`, `r#"…"#`, `r#ident`, `b"…"`, `b'c'`, `br#"…"#`.
    fn word(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            if !is_ident_continue(c) {
                break;
            }
            self.bump();
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match (word.as_str(), self.peek(0)) {
            ("r" | "br" | "b", Some('"')) | ("r" | "br", Some('#')) => {
                if self.raw_string_body() {
                    self.push(TokenKind::Literal, start, line);
                } else if word == "r" && self.peek(0) == Some('#') {
                    // Raw identifier `r#type`: consume the hash + ident.
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if !is_ident_continue(c) {
                            break;
                        }
                        self.bump();
                    }
                    self.push(TokenKind::Ident, start, line);
                } else {
                    self.push(TokenKind::Ident, start, line);
                }
            }
            ("b", Some('\'')) => {
                self.bump();
                self.string_like_char();
                self.push(TokenKind::Literal, start, line);
            }
            _ => self.push(TokenKind::Ident, start, line),
        }
    }

    /// After a consumed `'`: body of a definite char literal (first char
    /// already known not to start a lifetime, or an escape).
    fn string_like_char(&mut self) {
        match self.bump() {
            Some('\\') => {
                self.bump();
                // Scan to the closing quote (covers \u{…} escapes).
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                }
            }
            Some(_) => {
                self.bump(); // closing quote
            }
            None => {}
        }
    }

    /// Disambiguates `'a'` (char) from `'a` (lifetime): a quote two chars
    /// ahead means char literal; an escape means char literal; otherwise an
    /// identifier-start char means lifetime.
    fn char_or_lifetime(&mut self, start: usize, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            Some('\\') => {
                self.string_like_char();
                self.push(TokenKind::Literal, start, line);
            }
            Some(c) if is_ident_continue(c) && self.peek(1) != Some('\'') => {
                while let Some(c) = self.peek(0) {
                    if !is_ident_continue(c) {
                        break;
                    }
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, line);
            }
            Some(_) => {
                self.string_like_char();
                self.push(TokenKind::Literal, start, line);
            }
            None => self.push(TokenKind::Punct, start, line),
        }
    }

    /// Number: digits, underscores, letters (hex, suffixes), and a decimal
    /// point only when a digit follows (so `1..n` and `1.max(2)` keep their
    /// punctuation).
    fn number(&mut self, start: usize, line: u32) {
        while let Some(c) = self.peek(0) {
            let in_number = is_ident_continue(c)
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if !in_number {
                break;
            }
            self.bump();
        }
        self.push(TokenKind::Number, start, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn code_idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn nested_block_comments_are_one_token() {
        let toks = kinds("a /* x /* y */ z */ b");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0], (TokenKind::Ident, "a".into()));
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* x /* y */ z */");
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn unwrap_inside_strings_is_not_an_ident() {
        let src = r#"let s = "x.unwrap() // not a comment"; s.len()"#;
        let idents = code_idents(src);
        assert_eq!(idents, ["let", "s", "s", "len"]);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_comment_markers() {
        let src = r##"let s = r#"quote " and /* and // inside"#; t()"##;
        let idents = code_idents(src);
        assert_eq!(idents, ["let", "s", "t"]);
        assert!(lex(src).iter().all(|t| !t.is_comment()));
    }

    #[test]
    fn raw_string_hash_counts_must_match() {
        let src = "r##\"has \"# inside\"##.len()";
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::Literal);
        assert_eq!(toks[0].1, "r##\"has \"# inside\"##");
        assert_eq!(toks[2], (TokenKind::Ident, "len".into()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str, y: &'_ u8) -> &'static str { x }";
        let lifetimes: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'_", "'static"]);
    }

    #[test]
    fn char_literals_including_quote_and_escape() {
        for src in ["'a'", "'\"'", "'\\''", "'\\u{1F600}'", "' '", "b'x'"] {
            let toks = kinds(src);
            assert_eq!(toks.len(), 1, "{src:?} lexed as {toks:?}");
            assert_eq!(toks[0].0, TokenKind::Literal, "{src:?}");
        }
    }

    #[test]
    fn char_literal_followed_by_code_does_not_eat_the_line() {
        let toks = kinds("let c = 'x'; done()");
        assert_eq!(toks.last().map(|t| t.1.as_str()), Some(")"));
        assert!(toks.iter().any(|t| t.1 == "done"));
    }

    #[test]
    fn line_comments_stop_at_newline_and_keep_text() {
        let toks = kinds("a // trailing unwrap()\nb");
        assert_eq!(toks[1].0, TokenKind::LineComment);
        assert_eq!(toks[1].1, "// trailing unwrap()");
        assert_eq!(toks[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn doc_comments_are_comments() {
        let toks = kinds("/// x.unwrap()\n//! y.unwrap()\n/** z */ fn f() {}");
        let comments = toks
            .iter()
            .filter(|t| t.0 == TokenKind::LineComment)
            .count()
            + toks
                .iter()
                .filter(|t| t.0 == TokenKind::BlockComment)
                .count();
        assert_eq!(comments, 3);
        assert!(toks.iter().any(|t| t.1 == "fn"));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = kinds("let r#type = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#type".into()));
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "a\n/* two\nlines */\n\"str\ning\"\nb";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").unwrap();
        assert_eq!(b.line, 6);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_method_calls() {
        let texts: Vec<String> = lex("0..n; 1.5; 2.max(3); 0xFF_u64")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert!(texts.contains(&"0".to_string()));
        assert!(texts.contains(&"1.5".to_string()));
        assert!(texts.contains(&"2".to_string()));
        assert!(texts.contains(&"max".to_string()));
        assert!(texts.contains(&"0xFF_u64".to_string()));
    }
}

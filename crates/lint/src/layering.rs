//! The workspace-level lints: L3 crate-layering direction rules (from
//! Cargo manifests and cross-crate `use` statements) and L4, the frozen
//! `reference.rs` drift gate.
//!
//! The layer map is the architecture the README documents, made
//! executable: substrates at the bottom, the engine above them, the
//! measurement/derivation layer above that, and the experiment harness on
//! top. A crate may only depend on *strictly lower* layers, so dependency
//! (and therefore invalidation-knowledge) flows one way:
//!
//! | rank | crates |
//! |------|--------|
//! | 0 | `bbc-graph`, `bbc-sat`, `bbc-obs` |
//! | 1 | `bbc-core` |
//! | 2 | `bbc-analysis`, `bbc-constructions`, `bbc-fractional` |
//! | 3 | `bbc-experiments` |
//! | 4 | `bbc` (facade), `bbc-bench`, `bbc-serve` |
//!
//! `bbc-lint` itself sits outside the map: it may depend on **nothing**
//! from the workspace, so it can never participate in the cycles it
//! polices.

use std::path::Path;

use crate::lints::{fnv1a, Diagnostic};

/// Layer ranks; dependencies must strictly descend.
pub const LAYERS: &[(&str, u32)] = &[
    ("bbc-graph", 0),
    ("bbc-sat", 0),
    ("bbc-obs", 0),
    ("bbc-core", 1),
    ("bbc-analysis", 2),
    ("bbc-constructions", 2),
    ("bbc-fractional", 2),
    ("bbc-experiments", 3),
    ("bbc", 4),
    ("bbc-bench", 4),
    ("bbc-serve", 4),
];

/// Pinned FNV-1a 64-bit hash of `crates/core/src/reference.rs` (L4). The
/// frozen executable spec must not drift silently: an intentional edit
/// bumps this constant in the same commit, with the new value printed by
/// `cargo run -p bbc-lint -- --hash crates/core/src/reference.rs` (the
/// update procedure is documented in `LINTS.md`).
pub const REFERENCE_RS_FNV1A: u64 = 0xa60d_8fb2_73ba_c8a4;

/// Repo-relative path of the frozen file.
pub const REFERENCE_RS: &str = "crates/core/src/reference.rs";

fn rank(krate: &str) -> Option<u32> {
    LAYERS.iter().find(|(c, _)| *c == krate).map(|&(_, r)| r)
}

/// Crate name for a repo-relative source path, e.g.
/// `crates/core/src/engine.rs` → `bbc-core`, `src/lib.rs` → `bbc`.
pub fn crate_of(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let dir = rest.split('/').next()?;
        return Some(if dir == "lint" {
            "bbc-lint".to_string()
        } else {
            format!("bbc-{dir}")
        });
    }
    rel.starts_with("src/").then(|| "bbc".to_string())
}

/// L3 (manifest half): checks one `Cargo.toml`'s `[dependencies]` section
/// against the layer map. `manifest_rel` is the repo-relative path used in
/// diagnostics; `krate` is the crate the manifest belongs to.
pub fn check_manifest(manifest_rel: &str, krate: &str, toml: &str, out: &mut Vec<Diagnostic>) {
    let mut in_deps = false;
    for (idx, raw) in toml.lines().enumerate() {
        let line = raw.trim();
        let lineno = (idx + 1) as u32;
        if line.starts_with('[') {
            // Only runtime [dependencies] create layering obligations;
            // dev-dependencies may reach anywhere (cargo itself rejects the
            // cycles that would matter).
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(dep) = line
            .split(['=', ' ', '\t', '.'])
            .next()
            .filter(|d| d.starts_with("bbc-") || *d == "bbc")
        else {
            continue;
        };
        let mut bad = |msg: String| {
            out.push(Diagnostic {
                file: manifest_rel.to_string(),
                line: lineno,
                lint: "layering",
                message: msg,
            });
        };
        if krate == "bbc-lint" {
            bad(format!(
                "bbc-lint must stay dependency-free of the workspace; remove `{dep}`"
            ));
            continue;
        }
        let (Some(kr), Some(dr)) = (rank(krate), rank(dep)) else {
            bad(format!(
                "`{dep}` (or `{krate}`) is not in the layer map; add it to \
                 LAYERS in crates/lint/src/layering.rs with a rank"
            ));
            continue;
        };
        if dr >= kr {
            bad(format!(
                "`{krate}` (layer {kr}) may not depend on `{dep}` (layer {dr}); \
                 dependencies must strictly descend the layer map"
            ));
        }
    }
}

/// L3 (use half): a `bbc_x` path mention inside `krate`'s sources must
/// refer to a strictly lower layer. Token-level scan lives here so the
/// per-file pass stays manifest-agnostic.
pub fn check_use(
    file: &str,
    krate: &str,
    tokens: &[crate::lexer::Token],
    out: &mut Vec<Diagnostic>,
) {
    let Some(kr) = rank(krate) else {
        return; // unranked crate: the manifest rule already forbids bbc deps.
    };
    for t in tokens {
        if t.kind != crate::lexer::TokenKind::Ident || !t.text.starts_with("bbc_") {
            continue;
        }
        let dep = t.text.replace('_', "-");
        if dep == krate {
            continue; // self-references (doctest-style paths) are harmless
        }
        let Some(dr) = rank(&dep) else {
            continue;
        };
        if dr >= kr {
            out.push(Diagnostic {
                file: file.to_string(),
                line: t.line,
                lint: "layering",
                message: format!(
                    "`{krate}` (layer {kr}) references `{dep}` (layer {dr}); \
                     dependencies must strictly descend the layer map"
                ),
            });
        }
    }
}

/// L4: recomputes the frozen-reference hash and compares it to the pin.
pub fn check_reference_drift(repo_root: &Path, out: &mut Vec<Diagnostic>) {
    let path = repo_root.join(REFERENCE_RS);
    let (line, message) = match std::fs::read(&path) {
        Ok(bytes) => {
            let got = fnv1a(&bytes);
            if got == REFERENCE_RS_FNV1A {
                return;
            }
            (
                1,
                format!(
                    "frozen reference drifted: content hash {got:#018x} != pinned \
                     {REFERENCE_RS_FNV1A:#018x}; if the edit is intentional, update \
                     REFERENCE_RS_FNV1A (procedure in LINTS.md)"
                ),
            )
        }
        Err(e) => (1, format!("cannot read the frozen reference: {e}")),
    };
    out.push(Diagnostic {
        file: REFERENCE_RS.to_string(),
        line,
        lint: "reference-drift",
        message,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest_ids(krate: &str, toml: &str) -> Vec<String> {
        let mut out = Vec::new();
        check_manifest("Cargo.toml", krate, toml, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn descending_dependencies_pass() {
        let toml = "[dependencies]\nbbc-graph.workspace = true\nserde.workspace = true\n";
        assert!(manifest_ids("bbc-core", toml).is_empty());
    }

    #[test]
    fn reversed_dependencies_fail() {
        let toml = "[dependencies]\nbbc-core.workspace = true\n";
        let msgs = manifest_ids("bbc-graph", toml);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("strictly descend"), "{msgs:?}");
    }

    #[test]
    fn same_layer_dependencies_fail() {
        let toml = "[dependencies]\nbbc-analysis.workspace = true\n";
        assert_eq!(manifest_ids("bbc-constructions", toml).len(), 1);
    }

    #[test]
    fn dev_dependencies_are_exempt() {
        let toml = "[dev-dependencies]\nbbc-core.workspace = true\n";
        assert!(manifest_ids("bbc-graph", toml).is_empty());
    }

    #[test]
    fn lint_crate_may_depend_on_nothing() {
        let toml = "[dependencies]\nbbc-graph.workspace = true\n";
        let msgs = manifest_ids("bbc-lint", toml);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("dependency-free"), "{msgs:?}");
    }

    #[test]
    fn unknown_crates_must_be_mapped() {
        let toml = "[dependencies]\nbbc-newthing.workspace = true\n";
        let msgs = manifest_ids("bbc-core", toml);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("layer map"), "{msgs:?}");
    }

    #[test]
    fn use_scan_flags_upward_references() {
        let tokens = crate::lexer::lex("use bbc_experiments::RunOptions;\n");
        let mut out = Vec::new();
        check_use("crates/core/src/lib.rs", "bbc-core", &tokens, &mut out);
        assert_eq!(out.len(), 1);
        let tokens = crate::lexer::lex("use bbc_graph::BfsBuffer;\n");
        let mut out = Vec::new();
        check_use("crates/core/src/lib.rs", "bbc-core", &tokens, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn crate_paths_resolve() {
        assert_eq!(
            crate_of("crates/core/src/engine.rs").as_deref(),
            Some("bbc-core")
        );
        assert_eq!(crate_of("src/lib.rs").as_deref(), Some("bbc"));
        assert_eq!(
            crate_of("crates/lint/src/main.rs").as_deref(),
            Some("bbc-lint")
        );
        assert_eq!(crate_of("README.md"), None);
    }
}

//! `bbc-lint` — workspace-invariant static analysis for the BBC repo.
//!
//! The engine's headline guarantee is byte-identity: decisions,
//! trajectories, and stream digests must not change across row tiers,
//! thread counts, landmark policies, or resume boundaries. This binary
//! machine-enforces the conventions that guarantee rests on *before* any
//! differential test has to catch a violation dynamically. See `LINTS.md`
//! for the full catalog (L1 determinism, L2 row-width soundness, L3
//! layering, L4 frozen-reference drift, L5 panic-freedom), the blessed
//! patterns, and the allow syntax.
//!
//! Modes:
//!
//! * `bbc-lint` — scan every `crates/*/src` and `src/` file plus the crate
//!   manifests; print `file:line: [lint] message` diagnostics; exit 1 if
//!   any.
//! * `bbc-lint --fixtures` — self-test against the seeded good/bad fixture
//!   files under `crates/lint/fixtures/` (bad fixtures declare expected
//!   diagnostics with `//~ ERROR <lint>` markers; good fixtures must stay
//!   silent).
//! * `bbc-lint --hash <file>` — print the FNV-1a content hash used by the
//!   L4 drift gate (the documented pin-update procedure).
//! * `bbc-lint <file>…` — scan specific files (fixture headers honored).

#![forbid(unsafe_code)]

mod layering;
mod lexer;
mod lints;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lints::{Diagnostic, FileRules};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = repo_root();
    match args.first().map(String::as_str) {
        Some("--fixtures") => run_fixtures(&root),
        Some("--hash") => match args.get(1) {
            Some(file) => run_hash(&root, file),
            None => usage(),
        },
        Some(flag) if flag.starts_with("--") => usage(),
        Some(_) => run_files(&root, &args),
        None => run_workspace(&root),
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: bbc-lint [--fixtures | --hash <file> | <file>…]");
    ExitCode::from(2)
}

/// The repo root: two levels above this crate's manifest dir. The binary
/// is always built from the workspace (path deps only), so the compile-time
/// location is the runtime truth.
fn repo_root() -> PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects `.rs` files under `dir`, sorted for deterministic
/// diagnostic order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("bbc-lint: {msg}");
    ExitCode::from(2)
}

fn report(mut diags: Vec<Diagnostic>) -> ExitCode {
    if diags.is_empty() {
        return ExitCode::SUCCESS;
    }
    diags.sort();
    diags.dedup();
    for d in &diags {
        println!("{d}");
    }
    eprintln!("bbc-lint: {} diagnostic(s)", diags.len());
    ExitCode::FAILURE
}

/// Default mode: the whole workspace — every library source tree, every
/// crate manifest, and the frozen-reference pin.
fn run_workspace(root: &Path) -> ExitCode {
    let mut diags = Vec::new();
    let mut files = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match std::fs::read_dir(&crates_dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => return fail(&format!("{}: {e}", crates_dir.display())),
    };
    crate_dirs.sort();
    for dir in &crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            if let Err(e) = rust_files(&src, &mut files) {
                return fail(&e);
            }
        }
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let rel = rel_path(root, &manifest);
            let Some(krate) = layering::crate_of(&rel_path(root, &src.join("lib.rs"))) else {
                continue;
            };
            match read(&manifest) {
                Ok(toml) => layering::check_manifest(&rel, &krate, &toml, &mut diags),
                Err(e) => return fail(&e),
            }
        }
    }
    if let Err(e) = rust_files(&root.join("src"), &mut files) {
        return fail(&e);
    }
    // The facade package's dependencies live in the root manifest.
    match read(&root.join("Cargo.toml")) {
        Ok(toml) => layering::check_manifest("Cargo.toml", "bbc", &toml, &mut diags),
        Err(e) => return fail(&e),
    }

    for path in &files {
        let rel = rel_path(root, path);
        let src = match read(path) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        diags.extend(lints::lint_source(
            &rel,
            &src,
            &FileRules::for_repo_path(&rel),
        ));
        if let Some(krate) = layering::crate_of(&rel) {
            let tokens = lexer::lex(&src);
            layering::check_use(&rel, &krate, &tokens, &mut diags);
        }
    }

    layering::check_reference_drift(root, &mut diags);
    report(diags)
}

/// Explicit-file mode: same per-file engine; `// bbc-lint-fixture:`
/// headers override the path-derived rules when present.
fn run_files(root: &Path, args: &[String]) -> ExitCode {
    let mut diags = Vec::new();
    for arg in args {
        let path = Path::new(arg);
        let src = match read(path) {
            Ok(s) => s,
            Err(e) => return fail(&e),
        };
        let rel = rel_path(
            root,
            &path.canonicalize().unwrap_or_else(|_| path.to_path_buf()),
        );
        let mut rules = FileRules::for_repo_path(&rel);
        let fixture = lints::fixture_rules(&src);
        rules.narrowing |= fixture.narrowing;
        rules.bench |= fixture.bench;
        rules.reference_imports |= fixture.reference_imports;
        rules.clock |= fixture.clock;
        diags.extend(lints::lint_source(&rel, &src, &rules));
    }
    report(diags)
}

/// `--hash <file>`: the L4 pin-update procedure.
fn run_hash(root: &Path, file: &str) -> ExitCode {
    let path = root.join(file);
    let path = if path.is_file() {
        path
    } else {
        PathBuf::from(file)
    };
    match std::fs::read(&path) {
        Ok(bytes) => {
            println!("{:#018x}", lints::fnv1a(&bytes));
            ExitCode::SUCCESS
        }
        Err(e) => fail(&format!("{}: {e}", path.display())),
    }
}

/// `--fixtures`: every bad fixture must fire exactly its `//~ ERROR`
/// markers; every good fixture must stay silent. This is the lint engine's
/// own regression gate — CI runs it next to the workspace pass so a lexer
/// or catalog regression cannot silently stop the lints from firing.
fn run_fixtures(root: &Path) -> ExitCode {
    let fixtures = root.join("crates/lint/fixtures");
    let mut failures = Vec::new();
    let mut checked_files = 0usize;
    let mut matched = 0usize;

    for (kind, expect_markers) in [("bad", true), ("good", false)] {
        let dir = fixtures.join(kind);
        let mut files = Vec::new();
        if let Err(e) = rust_files(&dir, &mut files) {
            return fail(&e);
        }
        if files.is_empty() {
            return fail(&format!("no fixtures under {}", dir.display()));
        }
        for path in files {
            checked_files += 1;
            let rel = rel_path(root, &path);
            let src = match read(&path) {
                Ok(s) => s,
                Err(e) => return fail(&e),
            };
            let rules = lints::fixture_rules(&src);
            let diags = lints::lint_source(&rel, &src, &rules);
            let mut markers = lints::fixture_markers(&src);
            if expect_markers && markers.is_empty() {
                failures.push(format!("{rel}: bad fixture declares no //~ ERROR markers"));
            }
            if !expect_markers && !markers.is_empty() {
                failures.push(format!("{rel}: good fixture declares //~ ERROR markers"));
            }
            for d in &diags {
                match markers.get_mut(&(d.line, d.lint.to_string())) {
                    Some(seen) => {
                        *seen = true;
                        matched += 1;
                    }
                    None => failures.push(format!("unexpected diagnostic: {d}")),
                }
            }
            for ((line, lint), seen) in &markers {
                if !seen {
                    failures.push(format!(
                        "{rel}:{line}: expected [{lint}] diagnostic did not fire"
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        println!("fixtures: {checked_files} files, {matched} expected diagnostics, all matched");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            println!("{f}");
        }
        eprintln!("bbc-lint --fixtures: {} failure(s)", failures.len());
        ExitCode::FAILURE
    }
}

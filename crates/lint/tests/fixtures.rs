//! Fixture-based integration tests: drive the real `bbc-lint` binary the
//! way CI does and assert each lint fires on its bad fixture and stays
//! silent on the good ones.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint lives two levels under the repo root")
        .to_path_buf()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_bbc-lint"))
        .args(args)
        .output()
        .expect("bbc-lint binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn fixture(rel: &str) -> String {
    repo_root()
        .join("crates/lint/fixtures")
        .join(rel)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn fixture_self_test_passes() {
    let out = run(&["--fixtures"]);
    let text = stdout(&out);
    assert!(
        out.status.success(),
        "--fixtures failed:\n{text}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(text.contains("all matched"), "unexpected summary: {text}");
}

#[test]
fn bad_fixtures_fail_with_file_line_diagnostics() {
    for (file, lint) in [
        ("bad/determinism.rs", "[determinism]"),
        ("bad/narrowing.rs", "[narrowing-cast]"),
        ("bad/panic.rs", "[panic]"),
        ("bad/layering.rs", "[layering]"),
        ("bad/allow.rs", "[malformed-allow]"),
    ] {
        let out = run(&[&fixture(file)]);
        let text = stdout(&out);
        assert!(!out.status.success(), "{file} unexpectedly clean");
        assert!(text.contains(lint), "{file} output missing {lint}:\n{text}");
        // Machine-readable shape: every diagnostic line is file:line: [lint] …
        let diag = text.lines().next().unwrap_or_default();
        let rest = diag.rsplit_once(".rs:").map(|(_, r)| r).unwrap_or_default();
        assert!(
            rest.split(':')
                .next()
                .is_some_and(|n| n.parse::<u32>().is_ok()),
            "diagnostic not file:line-shaped: {diag}"
        );
    }
}

#[test]
fn good_fixtures_are_silent() {
    for file in [
        "good/blessed_patterns.rs",
        "good/lexer_tricky.rs",
        "good/reference_clean.rs",
    ] {
        let out = run(&[&fixture(file)]);
        let text = stdout(&out);
        assert!(out.status.success(), "{file} not clean:\n{text}");
        assert!(text.is_empty(), "{file} produced output:\n{text}");
    }
}

#[test]
fn hash_mode_matches_fnv1a_of_the_bytes() {
    // Same constants as the L4 gate; recomputed here so a hash-function
    // regression in the binary cannot hide behind its own --hash output.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
    let target = fixture("good/reference_clean.rs");
    let expect = fnv1a(&std::fs::read(&target).expect("fixture readable"));
    let out = run(&["--hash", &target]);
    assert!(out.status.success());
    assert_eq!(stdout(&out).trim(), format!("{expect:#018x}"));
}

#[test]
fn workspace_is_lint_clean() {
    // The whole point: the committed tree satisfies its own contracts.
    // (CI runs this same invocation as a dedicated leg; having it in
    // tier-1 means `cargo test` locally catches violations first.)
    let out = run(&[]);
    assert!(
        out.status.success(),
        "workspace has lint diagnostics:\n{}\n{}",
        stdout(&out),
        String::from_utf8_lossy(&out.stderr)
    );
}

// bbc-lint-fixture: narrowing
// L2: bare narrowing casts in a row-width-critical file must fire.

pub fn pack_index(x: usize) -> u32 {
    x as u32 //~ ERROR narrowing-cast
}

pub fn pack_len(x: u64) -> u16 {
    x as u16 //~ ERROR narrowing-cast
}

pub fn pack_byte(x: u64) -> u8 {
    x as u8 //~ ERROR narrowing-cast
}

pub fn widening_is_fine(x: u32) -> u64 {
    x as u64
}

// bbc-lint-fixture:
// Suppression hygiene: an allow without a reason is malformed (and does
// not suppress), an allow that suppresses nothing is dead weight, and an
// unknown lint id is rejected.

pub fn missing_reason(o: Option<u32>) -> u32 {
    o.unwrap() // bbc-lint: allow(panic) ~ ERROR malformed-allow ~ ERROR panic
}

// bbc-lint: allow(panic, nothing on the next line panics) ~ ERROR unused-allow
pub fn nothing_to_suppress() {}

pub fn unknown_lint(o: Option<u32>) -> u32 {
    o.unwrap() // bbc-lint: allow(panics-ok, typo'd id) ~ ERROR malformed-allow ~ ERROR panic
}

// bbc-lint-fixture:
// The blessed-clock half of L1: wall-clock reads outside
// crates/obs/src/clock.rs bypass the `&dyn bbc_obs::Clock` boundary and
// must fire even when the surrounding code looks like instrumentation.

pub struct Latency {
    started_ns: u64,
}

pub fn time_a_request() -> Latency {
    // Measuring "just telemetry" is exactly the temptation the boundary
    // exists for: take a Clock instead.
    let t0 = Instant::now(); //~ ERROR determinism
    Latency {
        started_ns: t0.elapsed().as_nanos() as u64,
    }
}

pub fn stamp_a_snapshot() -> u64 {
    let stamp = SystemTime::now(); //~ ERROR determinism
    let _ = stamp;
    0
}

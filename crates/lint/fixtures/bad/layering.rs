// bbc-lint-fixture: reference
// L3 (reference half): the frozen spec may not import engine/landmark.

use crate::engine::DistanceEngine; //~ ERROR layering
use crate::{eval, landmark}; //~ ERROR layering

pub fn reach_in() -> u64 {
    let _cache = crate::engine::EngineStats::default(); //~ ERROR layering
    0
}

// bbc-lint-fixture:
// L5: panicking constructs in library code must fire.

pub fn take(o: Option<u32>) -> u32 {
    o.unwrap() //~ ERROR panic
}

pub fn take_with_message(o: Option<u32>) -> u32 {
    o.expect("present by construction") //~ ERROR panic
}

pub fn boom() {
    panic!("library code must not panic"); //~ ERROR panic
}

pub fn later() {
    todo!() //~ ERROR panic
}

pub fn never() {
    unimplemented!() //~ ERROR panic
}

pub fn fallible_combinators_are_fine(o: Option<u32>) -> u32 {
    o.unwrap_or(0).max(o.unwrap_or_default())
}

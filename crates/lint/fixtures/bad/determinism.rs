// bbc-lint-fixture:
// L1: default-hasher collections and nondeterminism sources must fire.
use std::collections::HashMap; //~ ERROR determinism
use std::collections::HashSet; //~ ERROR determinism

pub fn iteration_order_leaks(m: HashMap<u32, u64>) -> Vec<u32> { //~ ERROR determinism
    m.keys().copied().collect()
}

pub fn seen() -> HashSet<u64> { //~ ERROR determinism
    HashSet::new() //~ ERROR determinism
}

pub fn wall_clock() -> u128 {
    let t = Instant::now(); //~ ERROR determinism
    t.elapsed().as_nanos()
}

pub fn os_time() -> u64 {
    let _t = SystemTime::now(); //~ ERROR determinism
    0
}

pub fn entropy() -> u64 {
    thread_rng().gen() //~ ERROR determinism
}

pub fn seeded_state(s: RandomState) -> u64 { //~ ERROR determinism
    0
}

// bbc-lint-fixture: narrowing
// The blessed patterns: pinned hashers, reasoned suppressions, RowWord
// conversions, typed errors. This file must produce zero diagnostics.

// bbc-lint: allow(determinism, defining the pinned-hasher alias needs the std names)
use std::collections::{HashMap, HashSet};
use std::hash::BuildHasherDefault;

pub type DetHashMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv1a>>;
pub type DetHashSet<K> = HashSet<K, BuildHasherDefault<Fnv1a>>;

pub fn pinned_map() -> DetHashMap<u32, u64> {
    DetHashMap::default()
}

pub fn spelled_out_hasher(m: HashMap<u32, u64, BuildHasherDefault<Fnv1a>>) -> usize {
    m.len()
}

pub fn narrow_with_reason(x: usize) -> u32 {
    x as u32 // bbc-lint: allow(narrowing-cast, node index < n ≤ u32::MAX, checked at build)
}

pub fn narrow_through_row_word(x: u64) -> Option<u32> {
    RowWord::from_u64(x)
}

pub fn typed_error(o: Option<u32>) -> Result<u32, Error> {
    o.ok_or(Error::Missing)
}

pub fn provable_invariant(o: Option<u32>) -> u32 {
    // bbc-lint: allow(panic, the caller inserted the key one line above)
    o.expect("inserted above")
}

// bbc-lint-fixture: clock
// The blessed wall-clock boundary (crates/obs/src/clock.rs, flagged here
// via the fixture header): raw Instant::now/SystemTime are waived inside
// the WallClock impl — and only the wall-clock checks are waived; the rest
// of L1 still applies, so this file must stay free of default hashers and
// entropy sources. Zero diagnostics expected.

pub struct WallClock {
    base: Instant,
}

impl WallClock {
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
        }
    }

    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

pub fn os_timestamp_ns() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
}

// bbc-lint-fixture: reference
// A reference.rs-shaped file that imports only from the allowed modules.

use bbc_graph::{BfsBuffer, DijkstraBuffer};

use crate::{eval::cost_from_distances, Configuration, GameSpec, NodeId, Result};

pub fn node_costs(spec: &GameSpec, config: &Configuration) -> Result<Vec<u64>> {
    let _ = (spec, config);
    Ok(Vec::new())
}

// bbc-lint-fixture: narrowing
// Lexer stress: every panicking / nondeterministic spelling below lives
// inside a comment, string, raw string, or char literal — none of it is
// code, so this file must produce zero diagnostics.

/* outer /* nested o.unwrap() panic!("x") */ still one comment SystemTime */

pub fn tricky<'a>(s: &'a str) -> &'static str {
    let _quote: char = '"';
    let _escaped: char = '\'';
    let _newline: char = '\n';
    let _string = "call .unwrap() // and panic!() and HashMap::new()";
    let _raw = r#"thread_rng() " quote, // comment, as u32, all inert"#;
    let _raw_hashes = r##"even "# inside: o.expect("x")"##;
    let _byte = b"panic!(bytes)";
    "ok"
}

/// Doc examples are comments too:
/// ```
/// let x = Some(1).unwrap();
/// let m = std::collections::HashMap::new();
/// ```
pub fn documented() {}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let m: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        assert_eq!(m.len(), 0);
        Some(1).unwrap();
        let _ = 7usize as u32;
    }
}

//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the **deviation oracle** (one BFS per candidate, then subset pricing
//!   over precomputed rows) vs naive per-strategy re-evaluation of the whole
//!   graph;
//! * the **branch-and-bound** exact search vs flat enumeration of every
//!   subset through the oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bbc_core::{
    best_response::{self, BestResponseOptions, DeviationOracle},
    Configuration, Evaluator, GameSpec, NodeId,
};

/// Naive best response: clone the configuration and re-evaluate the full
/// graph for every k-subset of targets.
fn naive_best_response(spec: &GameSpec, config: &Configuration, u: NodeId) -> u64 {
    let mut eval = Evaluator::new(spec);
    let pool = spec.affordable_targets(u);
    let k = spec.budget(u) as usize;
    let mut best = u64::MAX;
    let mut subset: Vec<usize> = (0..k.min(pool.len())).collect();
    loop {
        let targets: Vec<NodeId> = subset.iter().map(|&i| pool[i]).collect();
        let mut trial = config.clone();
        trial
            .set_strategy(spec, u, targets)
            .expect("subset within budget");
        best = best.min(eval.node_cost(&trial, u));
        // Next k-combination.
        let mut i = subset.len();
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if subset[i] != i + pool.len() - subset.len() {
                break;
            }
        }
        subset[i] += 1;
        for j in i + 1..subset.len() {
            subset[j] = subset[j - 1] + 1;
        }
    }
}

/// Oracle-based flat enumeration: oracle rows, but price every subset with
/// no pruning (ablates the branch-and-bound).
fn oracle_flat_enumeration(spec: &GameSpec, config: &Configuration, u: NodeId) -> u64 {
    let oracle = DeviationOracle::build(spec, config, u);
    let pool = oracle.candidates().to_vec();
    let k = spec.budget(u) as usize;
    let mut best = u64::MAX;
    let mut subset: Vec<usize> = (0..k.min(pool.len())).collect();
    loop {
        let targets: Vec<NodeId> = subset.iter().map(|&i| pool[i]).collect();
        best = best.min(oracle.strategy_cost(&targets));
        let mut i = subset.len();
        loop {
            if i == 0 {
                return best;
            }
            i -= 1;
            if subset[i] != i + pool.len() - subset.len() {
                break;
            }
        }
        subset[i] += 1;
        for j in i + 1..subset.len() {
            subset[j] = subset[j - 1] + 1;
        }
    }
}

fn bench_oracle_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_best_response");
    group.sample_size(10);
    for &(n, k) in &[(40usize, 2u64), (60, 2)] {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, 9);
        let u = NodeId::new(0);
        let options = BestResponseOptions::default();

        // Sanity: all three strategies agree before we time them.
        let full = best_response::exact(&spec, &cfg, u, &options)
            .expect("fits")
            .best_cost;
        assert_eq!(full, naive_best_response(&spec, &cfg, u));
        assert_eq!(full, oracle_flat_enumeration(&spec, &cfg, u));

        group.bench_with_input(
            BenchmarkId::new("naive_reevaluation", format!("n{n}k{k}")),
            &cfg,
            |b, cfg| b.iter(|| naive_best_response(&spec, cfg, u)),
        );
        group.bench_with_input(
            BenchmarkId::new("oracle_flat", format!("n{n}k{k}")),
            &cfg,
            |b, cfg| b.iter(|| oracle_flat_enumeration(&spec, cfg, u)),
        );
        group.bench_with_input(
            BenchmarkId::new("oracle_branch_bound", format!("n{n}k{k}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    best_response::exact(&spec, cfg, u, &options)
                        .expect("fits")
                        .best_cost
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oracle_ablation);
criterion_main!(benches);

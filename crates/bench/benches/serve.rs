//! Service-runtime benchmarks: the cost of one request through the
//! bounded queue + owner thread (the `bbc-serve` dispatch path), with and
//! without the Unix-socket framing on top. The loadgen latency figure
//! (`serve/loadgen_latency`) is recorded separately by
//! `bbc-serve --loadgen --bench`, which drives the full daemon the way CI
//! does; these groups isolate the layers underneath it.

use criterion::{criterion_group, criterion_main, Criterion};

use bbc_serve::protocol::{Op, Probe, Reply, RequestFrame};
use bbc_serve::socket::{run_listener, temp_socket_path, Client};
use bbc_serve::{Dispatch, ServeConfig, Service};

fn cfg() -> ServeConfig {
    ServeConfig {
        peers: 32,
        budget: 2,
        ..ServeConfig::default()
    }
}

fn call(handle: &bbc_serve::Handle, client: u64, seq: u64, op: Op) -> Reply {
    match handle.call(RequestFrame { client, seq, op }) {
        Dispatch::Reply(frame) => frame.reply,
        other => panic!("request dropped: {other:?}"),
    }
}

fn bench_dispatch(c: &mut Criterion) {
    // One round trip through the sync_channel queue and the engine-owner
    // thread, no socket involved: the floor every protocol request pays.
    // The engine is settled first so probes measure steady-state serving,
    // not cold-cache warmup.
    let service = Service::start(cfg()).expect("service boots");
    let handle = service.handle();
    match call(&handle, 1, 1, Op::Settle { max_steps: 100_000 }) {
        Reply::Phase { .. } => {}
        other => panic!("settle failed: {other:?}"),
    }

    let mut group = c.benchmark_group("serve_dispatch");
    group.sample_size(20);
    group.bench_function("digest_probe", |b| {
        b.iter(|| call(&handle, 1, 0, Op::Query(Probe::Digest)))
    });
    group.bench_function("social_cost_probe", |b| {
        b.iter(|| call(&handle, 1, 0, Op::Query(Probe::SocialCost)))
    });
    group.bench_function("advise_node0", |b| {
        b.iter(|| call(&handle, 1, 0, Op::Advise { node: 0 }))
    });
    // A leave/rejoin pair — the mutating path: duplicate check, journal
    // bookkeeping (memory-only here), engine churn + CSR canonicalization.
    let mut seq = 1u64;
    group.bench_function("churn_pair_node1", |b| {
        b.iter(|| {
            seq += 1;
            let left = call(&handle, 1, seq, Op::Leave { node: 1 });
            seq += 1;
            let joined = call(
                &handle,
                1,
                seq,
                Op::Join {
                    node: 1,
                    strategy: vec![0, 2],
                },
            );
            assert!(
                matches!((&left, &joined), (Reply::Ok { .. }, Reply::Ok { .. })),
                "churn pair failed: {left:?} / {joined:?}"
            );
        })
    });
    group.finish();

    let _ = call(&handle, 1, 0, Op::Shutdown);
    service.join().expect("clean shutdown");
}

fn bench_socket_round_trip(c: &mut Criterion) {
    // The same digest probe, through the full line-delimited JSON framing
    // over a Unix socket: encode, write, owner round trip, decode. The
    // difference against `serve_dispatch/digest_probe` is the protocol tax.
    let service = Service::start(cfg()).expect("service boots");
    let handle = service.handle();
    let path = temp_socket_path("bench");
    let listen = path.clone();
    std::thread::spawn(move || {
        let _ = run_listener(&listen, &handle);
    });
    while !path.exists() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let mut client = Client::connect(&path, 1).expect("connect");

    let mut group = c.benchmark_group("serve_socket");
    group.sample_size(20);
    group.bench_function("digest_probe", |b| {
        b.iter(|| {
            let reply = client
                .request(Op::Query(Probe::Digest))
                .expect("round trip");
            assert!(matches!(reply, Reply::Digest { .. }), "{reply:?}");
        })
    });
    group.finish();

    let _ = client.request(Op::Shutdown);
    service.join().expect("clean shutdown");
    let _ = std::fs::remove_file(&path);
}

criterion_group!(benches, bench_dispatch, bench_socket_round_trip);
criterion_main!(benches);

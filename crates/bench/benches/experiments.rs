//! Per-experiment benchmarks: the core computation behind each figure-level
//! experiment (E1–E12), sized for repeatable timing rather than full sweeps.

use criterion::{criterion_group, criterion_main, Criterion};

use bbc_analysis::social;
use bbc_constructions::{
    gadget, ForestOfWillows, Gadget, GadgetVariant, MaxPoaGraph, SatReduction,
};
use bbc_core::{enumerate, StabilityChecker};
use bbc_fractional::{br, FractionalBrOptions, FractionalConfig, FractionalGame};
use bbc_sat::{dpll, Cnf, Lit};

fn bench_e01_gadget_scan(c: &mut Criterion) {
    let g = Gadget::new(GadgetVariant::Restricted);
    let spec = g.spec();
    let space = g.candidate_space(&spec).expect("tiny space");
    let mut group = c.benchmark_group("e01_gadget_scan");
    group.sample_size(10);
    group.bench_function("restricted_11664", |b| {
        b.iter(|| {
            enumerate::find_equilibria(&spec, &space, 1_000_000)
                .expect("scan fits")
                .equilibria
                .len()
        })
    });
    group.finish();
}

fn bench_e01_witness_scan(c: &mut Criterion) {
    let spec = gadget::minimal_no_ne_witness();
    let space = enumerate::ProfileSpace::full(&spec, 1 << 14).expect("tiny space");
    let mut group = c.benchmark_group("e01_witness_scan");
    group.sample_size(20);
    group.bench_function("witness_3125", |b| {
        b.iter(|| {
            enumerate::find_equilibria(&spec, &space, 1_000_000)
                .expect("scan fits")
                .equilibria
                .len()
        })
    });
    group.finish();
}

fn bench_e02_reduction(c: &mut Criterion) {
    // Reduction build + canonical equilibrium stability for the SAT fixture.
    let cnf = Cnf::new(1, vec![vec![Lit::pos(0)]]);
    let mut group = c.benchmark_group("e02_reduction");
    group.sample_size(10);
    group.bench_function("build_and_check_sat_x", |b| {
        b.iter(|| {
            let assignment = dpll::solve(&cnf).expect("satisfiable");
            let r = SatReduction::new(cnf.clone());
            let spec = r.spec();
            let canonical = r.canonical_equilibrium(&spec, &assignment);
            StabilityChecker::new(&spec)
                .is_stable(&canonical)
                .expect("check fits")
        })
    });
    group.finish();
}

fn bench_e03_fractional(c: &mut Criterion) {
    let spec = gadget::minimal_no_ne_witness();
    let mut group = c.benchmark_group("e03_fractional");
    group.sample_size(10);
    group.bench_function("averaged_play_D2", |b| {
        b.iter(|| {
            let game = FractionalGame::new(&spec, 2);
            br::averaged_play_regret(
                &game,
                FractionalConfig::empty(5),
                10,
                &FractionalBrOptions::default(),
            )
            .expect("search fits")
            .1
        })
    });
    group.finish();
}

fn bench_e06_poa_pricing(c: &mut Criterion) {
    // The E6 unit of work: price a large worst-case willow.
    let fow = ForestOfWillows::new(2, 4, 49).expect("valid willow");
    let spec = fow.spec();
    let cfg = fow.configuration();
    let mut group = c.benchmark_group("e06_poa_pricing");
    group.sample_size(10);
    group.bench_function("social_cost_n1630", |b| {
        b.iter(|| social::social_cost(&spec, &cfg))
    });
    group.finish();
}

fn bench_e10_max_stability(c: &mut Criterion) {
    let g = MaxPoaGraph::new(3, 5).expect("valid");
    let spec = g.spec();
    let cfg = g.configuration();
    let mut group = c.benchmark_group("e10_max_stability");
    group.sample_size(10);
    group.bench_function("stable_check_n26", |b| {
        b.iter(|| {
            StabilityChecker::new(&spec)
                .is_stable(&cfg)
                .expect("check fits")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_e01_gadget_scan,
    bench_e01_witness_scan,
    bench_e02_reduction,
    bench_e03_fractional,
    bench_e06_poa_pricing,
    bench_e10_max_stability
);
criterion_main!(benches);

//! Best-response and stability benchmarks: the inner loop of every
//! equilibrium experiment (E1, E5, E7, E10, E11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bbc_constructions::ForestOfWillows;
use bbc_core::{
    best_response, BestResponseOptions, Configuration, GameSpec, NodeId, StabilityChecker,
};

fn bench_exact_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_best_response");
    group.sample_size(20);
    for &(n, k) in &[(50usize, 1u64), (50, 2), (100, 2), (60, 3)] {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, 5);
        let options = BestResponseOptions::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}k{k}")),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    best_response::exact(&spec, cfg, NodeId::new(0), &options)
                        .expect("search fits")
                        .best_cost
                })
            },
        );
    }
    group.finish();
}

fn bench_greedy_best_response(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_best_response");
    group.sample_size(20);
    for &(n, k) in &[(100usize, 4u64), (200, 4)] {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, 5);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}k{k}")),
            &cfg,
            |b, cfg| b.iter(|| best_response::greedy(&spec, cfg, NodeId::new(0)).best_cost),
        );
    }
    group.finish();
}

fn bench_willow_stability(c: &mut Criterion) {
    // E5's unit of work: a full exact stability check of a Forest of
    // Willows instance.
    let mut group = c.benchmark_group("willow_stability");
    group.sample_size(10);
    for &(k, h, l) in &[(2u64, 3u32, 0u32), (3, 2, 0)] {
        let fow = ForestOfWillows::new(k, h, l).expect("valid willow");
        let spec = fow.spec();
        let cfg = fow.configuration();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k{k}h{h}l{l}n{}", fow.node_count())),
            &cfg,
            |b, cfg| {
                b.iter(|| {
                    StabilityChecker::new(&spec)
                        .is_stable(cfg)
                        .expect("check fits")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exact_best_response,
    bench_greedy_best_response,
    bench_willow_stability
);
criterion_main!(benches);

//! Parallel search-layer benchmarks: work-stealing sharded enumeration and
//! parallel dynamics harvesting against their sequential counterparts.
//!
//! Both parallel paths are proven byte-identical to the sequential ones by
//! the differential suites, so these benches measure pure wall-clock — the
//! sequential number is the PR-2 baseline the speedup is claimed against.

use criterion::{criterion_group, criterion_main, Criterion};

use bbc_analysis::equilibria;
use bbc_core::{enumerate, GameSpec};

/// Worker count for the parallel sides: every available core, but at least
/// 4 so the work-stealing machinery (cursor, shard merge, per-worker
/// engines) is genuinely exercised — and its overhead honestly measured —
/// even on boxes where `available_parallelism` is 1 and the parallel entry
/// points would otherwise fall back to the sequential scan.
fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get().max(4))
}

fn bench_enumerate_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("enumerate_sharded");
    group.sample_size(10);
    // The acceptance workload: the full (4,1) joint space (256 profiles,
    // every profile stability-checked against the unrestricted deviation
    // space), sequential vs work-stealing sharded.
    let spec41 = GameSpec::uniform(4, 1);
    let space41 = enumerate::ProfileSpace::full(&spec41, 10_000).expect("small space");
    let seq = enumerate::find_equilibria(&spec41, &space41, 1_000_000).expect("scan fits");
    let par = enumerate::find_equilibria_parallel(&spec41, &space41, 1_000_000, threads())
        .expect("scan fits");
    assert_eq!(seq, par, "paths diverged");
    group.bench_function("n4k1_full_sequential", |b| {
        b.iter(|| enumerate::find_equilibria(&spec41, &space41, 1_000_000).unwrap())
    });
    group.bench_function("n4k1_full_sharded", |b| {
        b.iter(|| {
            enumerate::find_equilibria_parallel(&spec41, &space41, 1_000_000, threads()).unwrap()
        })
    });

    // A Theorem-1-shaped product: the full (5,2) space (11 strategies per
    // node, 161k profiles) — the scale where the old first-digit split
    // topped out at 11 shards while work-stealing keeps every core busy.
    let spec52 = GameSpec::uniform(5, 2);
    let space52 = enumerate::ProfileSpace::full(&spec52, 10_000).expect("small space");
    group.bench_function("n5k2_full_sequential", |b| {
        b.iter(|| enumerate::find_equilibria(&spec52, &space52, 1_000_000).unwrap())
    });
    group.bench_function("n5k2_full_sharded", |b| {
        b.iter(|| {
            enumerate::find_equilibria_parallel(&spec52, &space52, 1_000_000, threads()).unwrap()
        })
    });
    group.finish();
}

fn bench_harvest_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("harvest_parallel");
    group.sample_size(10);
    // The acceptance workload: the 20-seed (6,1) harvest (the §4.3
    // landscape unit), sequential vs seed-fan-out.
    let spec61 = GameSpec::uniform(6, 1);
    let seq = equilibria::harvest_equilibria(&spec61, 0..20, 50_000).expect("walks fit");
    let par = equilibria::harvest_equilibria_parallel(&spec61, 0..20, 50_000, threads())
        .expect("walks fit");
    assert_eq!(seq.equilibria, par.equilibria, "paths diverged");
    group.bench_function("n6k1_20seeds_sequential", |b| {
        b.iter(|| equilibria::harvest_equilibria(&spec61, 0..20, 50_000).unwrap())
    });
    group.bench_function("n6k1_20seeds_parallel", |b| {
        b.iter(|| {
            equilibria::harvest_equilibria_parallel(&spec61, 0..20, 50_000, threads()).unwrap()
        })
    });

    // The e06-scale workload: 24 seeds on (12,2), where individual walks
    // are long enough that work-stealing matters (walk lengths vary ~10×).
    let spec122 = GameSpec::uniform(12, 2);
    group.bench_function("n12k2_24seeds_sequential", |b| {
        b.iter(|| equilibria::harvest_equilibria(&spec122, 0..24, 50_000).unwrap())
    });
    group.bench_function("n12k2_24seeds_parallel", |b| {
        b.iter(|| {
            equilibria::harvest_equilibria_parallel(&spec122, 0..24, 50_000, threads()).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_enumerate_sharded, bench_harvest_parallel);
criterion_main!(benches);

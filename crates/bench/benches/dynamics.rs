//! Best-response dynamics benchmarks (E8, E9): walk throughput and the
//! convergence workloads of Theorem 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bbc_constructions::RingWithPath;
use bbc_core::{Configuration, GameSpec, Walk};

fn bench_walk_from_empty(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_from_empty");
    group.sample_size(10);
    for &(n, k) in &[(12usize, 1u64), (12, 2), (20, 2)] {
        let spec = GameSpec::uniform(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}k{k}")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut walk = Walk::new(spec, Configuration::empty(n)).detect_cycles(false);
                    walk.run(100_000).expect("walk fits").clone()
                })
            },
        );
    }
    group.finish();
}

fn bench_ring_with_path(c: &mut Criterion) {
    // E8's Ω(n²) instance: full convergence run.
    let mut group = c.benchmark_group("ring_with_path_convergence");
    group.sample_size(10);
    for &(ring, path) in &[(12usize, 6usize), (24, 12)] {
        let inst = RingWithPath::new(ring, path).expect("valid instance");
        let spec = inst.spec();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r{ring}p{path}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let n = inst.node_count() as u64;
                    let mut walk = Walk::new(&spec, inst.configuration())
                        .with_scheduler(inst.round_order())
                        .detect_cycles(false);
                    walk.run(n * n + n).expect("walk fits");
                    walk.stats().steps_to_strong_connectivity
                })
            },
        );
    }
    group.finish();
}

fn bench_loop_detection(c: &mut Criterion) {
    // E9's unit of work: a (7,2) walk with exact-state cycle detection.
    let spec = GameSpec::uniform(7, 2);
    let mut group = c.benchmark_group("loop_detection");
    group.sample_size(20);
    group.bench_function("walk_72_seed13", |b| {
        b.iter(|| {
            let mut walk = Walk::new(&spec, Configuration::random(&spec, 13));
            walk.run(50_000).expect("walk fits").clone()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_walk_from_empty,
    bench_ring_with_path,
    bench_loop_detection
);
criterion_main!(benches);

//! Best-response dynamics benchmarks (E8, E9): walk throughput and the
//! convergence workloads of Theorem 6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bbc_constructions::{CayleyGraph, RingWithPath};
use bbc_core::{
    reference, BestResponseOptions, ChurnConfig, ChurnSim, Configuration, GameSpec, LandmarkPolicy,
    NodeId, RowTier, Walk,
};

/// Round-robin walk over the frozen pre-refactor best response
/// ([`reference::exact`]): fresh adjacency-list materialization and
/// `UNREACHABLE`-sentinel search every step, no caching. This is the
/// baseline the CSR `DistanceEngine` speedup is measured against; it matches
/// the engine-backed `Walk` configured with `detect_cycles(false)` move for
/// move (the differential suite proves the per-step decisions identical).
fn reference_walk(spec: &GameSpec, mut cfg: Configuration, max_steps: u64) -> (u64, Configuration) {
    let options = BestResponseOptions::default();
    let n = spec.node_count();
    let mut moves = 0u64;
    let mut streak = 0usize;
    let mut steps = 0u64;
    let mut pos = 0usize;
    while steps < max_steps {
        let u = NodeId::new(pos);
        pos = (pos + 1) % n;
        let out = reference::exact(spec, &cfg, u, &options).expect("search fits");
        steps += 1;
        if out.improves() {
            cfg.set_strategy(spec, u, out.best_strategy)
                .expect("valid strategy");
            moves += 1;
            streak = 0;
        } else {
            streak += 1;
            if streak >= n {
                break;
            }
        }
    }
    (moves, cfg)
}

fn bench_engine_vs_reference(c: &mut Criterion) {
    // The acceptance workload: a round-robin dynamics walk on the
    // (24,3)-uniform game, engine-backed Walk vs the pre-refactor path.
    // Capped at a fixed step budget so one sample is ~100ms–1s; both sides
    // run the identical schedule from the identical seeded start.
    let spec = GameSpec::uniform(24, 3);
    let start = Configuration::random(&spec, 7);
    const STEPS: u64 = 1_500;

    // The two paths must agree before their timings mean anything.
    let (ref_moves, ref_cfg) = reference_walk(&spec, start.clone(), STEPS);
    let mut walk = Walk::new(&spec, start.clone()).detect_cycles(false);
    let _ = walk.run(STEPS).expect("walk fits");
    assert_eq!(walk.stats().moves, ref_moves, "paths diverged");
    assert_eq!(walk.config(), &ref_cfg, "paths diverged");

    let mut group = c.benchmark_group("walk_n24k3_round_robin");
    group.sample_size(10);
    group.bench_function("pre_refactor", |b| {
        b.iter(|| reference_walk(&spec, start.clone(), STEPS).0)
    });
    group.bench_function("distance_engine", |b| {
        b.iter(|| {
            let mut walk = Walk::new(&spec, start.clone()).detect_cycles(false);
            walk.run(STEPS).expect("walk fits");
            walk.stats().moves
        })
    });
    group.finish();
}

fn bench_walk_from_empty(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_from_empty");
    group.sample_size(10);
    for &(n, k) in &[(12usize, 1u64), (12, 2), (20, 2)] {
        let spec = GameSpec::uniform(n, k);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}k{k}")),
            &spec,
            |b, spec| {
                b.iter(|| {
                    let mut walk = Walk::new(spec, Configuration::empty(n)).detect_cycles(false);
                    walk.run(100_000).expect("walk fits").clone()
                })
            },
        );
    }
    group.finish();
}

fn bench_ring_with_path(c: &mut Criterion) {
    // E8's Ω(n²) instance: full convergence run.
    let mut group = c.benchmark_group("ring_with_path_convergence");
    group.sample_size(10);
    for &(ring, path) in &[(12usize, 6usize), (24, 12)] {
        let inst = RingWithPath::new(ring, path).expect("valid instance");
        let spec = inst.spec();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("r{ring}p{path}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let n = inst.node_count() as u64;
                    let mut walk = Walk::new(&spec, inst.configuration())
                        .with_scheduler(inst.round_order())
                        .detect_cycles(false);
                    walk.run(n * n + n).expect("walk fits");
                    walk.stats().steps_to_strong_connectivity
                })
            },
        );
    }
    group.finish();
}

fn bench_loop_detection(c: &mut Criterion) {
    // E9's unit of work: a (7,2) walk with exact-state cycle detection.
    let spec = GameSpec::uniform(7, 2);
    let mut group = c.benchmark_group("loop_detection");
    group.sample_size(20);
    group.bench_function("walk_72_seed13", |b| {
        b.iter(|| {
            let mut walk = Walk::new(&spec, Configuration::random(&spec, 13));
            walk.run(50_000).expect("walk fits").clone()
        })
    });
    group.finish();
}

fn bench_churn_step(c: &mut Criterion) {
    // The churn runtime's unit of work: one event cycle (draw, apply the
    // join/leave through the engine's node-lifecycle layer, settle for one
    // round of best response). Measured as a fixed 6-event sim on the
    // 32-peer circulant (the p2p_overlay `--churn` workload) — divide by
    // the 6 events + 1 initial settle for the per-event figure.
    let overlay = CayleyGraph::circulant(32, &[1, 5]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();
    let cfg = ChurnConfig {
        seed: 32,
        events: 6,
        min_live: 16,
        settle_steps: 32,
        ..ChurnConfig::default()
    };
    let mut group = c.benchmark_group("churn_step");
    group.sample_size(10);
    group.bench_function("p2p32_6events", |b| {
        b.iter(|| {
            let mut sim = ChurnSim::new(&spec, designed.clone(), cfg.clone());
            sim.run().expect("phases fit budget").trajectory_digest
        })
    });
    // The same workload pinned to each row tier (auto picks u32 here —
    // n·M = 32·1024 fits — so the u32 case doubles as a guard that the
    // default path stays on the narrow kernel). Digest equality across
    // tiers is asserted before timing.
    let digest = {
        let mut sim = ChurnSim::with_tier(&spec, designed.clone(), cfg.clone(), RowTier::U64)
            .expect("u64 always fits");
        sim.run().expect("phases fit budget").trajectory_digest
    };
    for tier in [RowTier::U32, RowTier::U64] {
        let mut sim = ChurnSim::with_tier(&spec, designed.clone(), cfg.clone(), tier)
            .expect("32-peer overlay fits both tiers");
        assert_eq!(
            sim.run().expect("phases fit budget").trajectory_digest,
            digest,
            "tiers diverged on the churn workload"
        );
        group.bench_function(format!("p2p32_6events_{tier:?}").to_lowercase(), |b| {
            b.iter(|| {
                let mut sim =
                    ChurnSim::with_tier(&spec, designed.clone(), cfg.clone(), tier).expect("fits");
                sim.run().expect("phases fit budget").trajectory_digest
            })
        });
    }
    group.finish();
}

fn bench_e13_point_tiers(c: &mut Criterion) {
    // The E13 512-peer sweep point's inner loop — round-robin selfish play
    // on the circulant{1,23} overlay, the workload the u32 row kernel
    // exists for (rows and search scratch at n = 512 stop fitting cache at
    // u64 width). Both tiers run the identical trajectory (asserted), so
    // the median ratio is a pure kernel speedup. The landmark policy is
    // pinned `Off`: this group is the exact-path kernel baseline — the
    // engine's default (`Auto`) path is timed by `e13_point_512_landmark`.
    let overlay = CayleyGraph::circulant(512, &[1, 23]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();
    const STEPS: u64 = 24;

    let run = |tier: RowTier| {
        let mut walk = Walk::with_tier(&spec, designed.clone(), tier)
            .expect("512-peer overlay fits both tiers")
            .detect_cycles(false)
            .with_landmarks(LandmarkPolicy::Off);
        walk.run(STEPS).expect("walk fits");
        (walk.stats().moves, walk.state_digest())
    };
    assert_eq!(
        run(RowTier::U32),
        run(RowTier::U64),
        "tiers diverged on the e13 point"
    );

    let mut group = c.benchmark_group("e13_point_512");
    group.sample_size(10);
    for tier in [RowTier::U32, RowTier::U64] {
        group.bench_function(format!("steps24_{tier:?}").to_lowercase(), |b| {
            b.iter(|| run(tier))
        });
    }
    group.finish();
}

fn bench_landmark_step(c: &mut Criterion) {
    // The landmark bound cache's unit of work: a fixed round-robin walk on
    // the 128-peer circulant under each landmark policy. Admissible bounds
    // never change a decision, so all three runs replay the identical
    // trajectory (asserted) — the timing difference is pure row pruning:
    // `Off` materializes every deviation row, `Auto`/`Forced` only the rows
    // the bound tier cannot exclude.
    let overlay = CayleyGraph::circulant(128, &[1, 11]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();
    const STEPS: u64 = 32;

    let run = |policy: LandmarkPolicy| {
        let mut walk = Walk::new(&spec, designed.clone())
            .detect_cycles(false)
            .with_landmarks(policy);
        walk.run(STEPS).expect("walk fits");
        (walk.stats().moves, walk.state_digest())
    };
    let exact = run(LandmarkPolicy::Off);
    for policy in [LandmarkPolicy::Auto, LandmarkPolicy::Forced(11)] {
        assert_eq!(run(policy), exact, "policies diverged on the walk");
    }

    let mut group = c.benchmark_group("landmark_step");
    group.sample_size(10);
    for (name, policy) in [
        ("off", LandmarkPolicy::Off),
        ("auto", LandmarkPolicy::Auto),
        ("forced11", LandmarkPolicy::Forced(11)),
    ] {
        group.bench_function(format!("n128_steps32_{name}"), |b| b.iter(|| run(policy)));
    }
    group.finish();
}

fn bench_e13_point_512_landmark(c: &mut Criterion) {
    // The E13 512-peer sweep point on the landmark bound cache — the same
    // 24-step workload as `e13_point_512`, with the engine consulting the
    // cached `Auto` landmark tier (√512 → 22 landmarks) before
    // materializing exact deviation rows. Digest equality against the
    // exact path is asserted per tier before timing, so the speedup over
    // `e13_point_512/steps24_*` is pure bound-layer pruning.
    let overlay = CayleyGraph::circulant(512, &[1, 23]).expect("valid circulant");
    let spec = overlay.spec();
    let designed = overlay.configuration();
    const STEPS: u64 = 24;

    let run = |tier: RowTier, policy: LandmarkPolicy| {
        let mut walk = Walk::with_tier(&spec, designed.clone(), tier)
            .expect("512-peer overlay fits both tiers")
            .detect_cycles(false)
            .with_landmarks(policy);
        walk.run(STEPS).expect("walk fits");
        (walk.stats().moves, walk.state_digest())
    };
    for tier in [RowTier::U32, RowTier::U64] {
        assert_eq!(
            run(tier, LandmarkPolicy::Auto),
            run(tier, LandmarkPolicy::Off),
            "landmark path diverged on the e13 point"
        );
    }

    let mut group = c.benchmark_group("e13_point_512_landmark");
    group.sample_size(10);
    for tier in [RowTier::U32, RowTier::U64] {
        group.bench_function(format!("steps24_{tier:?}_auto").to_lowercase(), |b| {
            b.iter(|| run(tier, LandmarkPolicy::Auto))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_vs_reference,
    bench_walk_from_empty,
    bench_ring_with_path,
    bench_loop_detection,
    bench_churn_step,
    bench_e13_point_tiers,
    bench_landmark_step,
    bench_e13_point_512_landmark
);
criterion_main!(benches);

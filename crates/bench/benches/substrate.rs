//! Substrate micro-benchmarks: the graph primitives that dominate every
//! best-response loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bbc_core::{Configuration, GameSpec};
use bbc_graph::{
    reach_counts, scc::strongly_connected_components, BfsBuffer, ConnectivityScratch, CsrBfs,
    CsrGraph, DistanceMatrix,
};

fn graph_of(n: usize, k: u64, seed: u64) -> bbc_graph::DiGraph {
    let spec = GameSpec::uniform(n, k);
    Configuration::random(&spec, seed).to_graph(&spec)
}

fn bench_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("bfs");
    group.sample_size(20);
    for &n in &[100usize, 400, 1600] {
        let g = graph_of(n, 3, 7);
        let mut buf = BfsBuffer::new(n);
        group.bench_with_input(BenchmarkId::new("adjacency", n), &g, |b, g| {
            b.iter(|| {
                buf.run(g, 0);
                buf.reached()
            })
        });
        let csr = CsrGraph::from_digraph(&g);
        let mut cbuf = CsrBfs::new(n);
        group.bench_with_input(BenchmarkId::new("csr", n), &csr, |b, csr| {
            b.iter(|| {
                cbuf.run(csr, 0);
                cbuf.reached()
            })
        });
    }
    group.finish();
}

fn bench_csr_patching(c: &mut Criterion) {
    // The dynamics-step primitive: rewire one node's slab in place vs
    // re-materializing the whole adjacency list from the configuration.
    let mut group = c.benchmark_group("graph_update");
    group.sample_size(20);
    for &n in &[64usize, 400] {
        let spec = GameSpec::uniform(n, 3);
        let cfg = Configuration::random(&spec, 3);
        group.bench_with_input(BenchmarkId::new("rebuild_adjacency", n), &cfg, |b, cfg| {
            b.iter(|| cfg.to_graph(&spec).arc_count())
        });
        let mut csr = CsrGraph::from_digraph(&cfg.to_graph(&spec));
        let mut conn = ConnectivityScratch::new();
        group.bench_with_input(BenchmarkId::new("patch_csr", n), &cfg, |b, _| {
            let mut flip = 0u32;
            b.iter(|| {
                // Rewire node 0 between two 3-link strategies.
                flip ^= 1;
                let base = 1 + flip as usize;
                csr.set_out_links(
                    0,
                    &[
                        (base as u32, 1),
                        ((base + 2) as u32, 1),
                        ((base + 4) as u32, 1),
                    ],
                );
                conn.is_strongly_connected(&csr)
            })
        });
    }
    group.finish();
}

fn bench_all_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_distances");
    group.sample_size(10);
    for &n in &[50usize, 150, 300] {
        let g = graph_of(n, 2, 11);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| DistanceMatrix::all_pairs(g).node_count())
        });
    }
    group.finish();
}

fn bench_scc_and_reach(c: &mut Criterion) {
    let mut group = c.benchmark_group("scc_reach");
    group.sample_size(20);
    for &n in &[200usize, 800] {
        let g = graph_of(n, 1, 3); // k=1 gives rich component structure
        group.bench_with_input(BenchmarkId::new("tarjan", n), &g, |b, g| {
            b.iter(|| strongly_connected_components(g).len())
        });
        group.bench_with_input(BenchmarkId::new("reach", n), &g, |b, g| {
            b.iter(|| reach_counts(g).iter().sum::<usize>())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_bfs,
    bench_csr_patching,
    bench_all_pairs,
    bench_scc_and_reach
);
criterion_main!(benches);

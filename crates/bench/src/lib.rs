//! Criterion benchmarks for the BBC workspace (see benches/).

#![forbid(unsafe_code)]

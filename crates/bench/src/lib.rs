//! Criterion benchmarks for the BBC workspace (see benches/).

//! Property-based tests for the measurement layer.

use bbc_analysis::{equilibria, fairness, social};
use bbc_core::{Configuration, GameSpec, NodeId, StabilityChecker};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn social_lower_bound_is_sound(n in 2usize..=14, k in 1u64..=3, seed in any::<u64>()) {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, seed);
        prop_assert!(social::social_cost(&spec, &cfg) >= social::uniform_social_lower_bound(&spec));
        prop_assert!(social::price_ratio(&spec, &cfg) >= 1.0 - 1e-12);
    }

    #[test]
    fn min_node_cost_matches_direct_simulation(n in 2usize..=40, k in 1u64..=5) {
        // Re-derive the packing bound by explicit level filling.
        let mut remaining = n as u64 - 1;
        let mut level = k;
        let mut d = 1u64;
        let mut expect = 0u64;
        while remaining > 0 {
            let here = remaining.min(level);
            expect += here * d;
            remaining -= here;
            level = level.saturating_mul(k);
            d += 1;
        }
        prop_assert_eq!(social::uniform_min_node_cost(n, k), expect);
    }

    #[test]
    fn floor_log_brackets_powers(k in 2u64..=5, x in 1u64..=100_000) {
        let e = social::floor_log(k, x);
        prop_assert!(k.pow(e) <= x);
        // k^(e+1) > x unless it overflows the check range.
        if let Some(next) = k.checked_pow(e + 1) {
            prop_assert!(next > x);
        }
    }

    #[test]
    fn fairness_report_is_internally_consistent(
        n in 2usize..=12,
        k in 1u64..=3,
        seed in any::<u64>(),
    ) {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, seed);
        let f = fairness::fairness(&spec, &cfg);
        prop_assert!(f.min_cost <= f.max_cost);
        prop_assert_eq!(f.additive_gap, f.max_cost - f.min_cost);
        if f.min_cost > 0 {
            prop_assert!((f.ratio - f.max_cost as f64 / f.min_cost as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn eccentricity_lower_bound_is_sound(n in 2usize..=14, k in 1u64..=3, seed in any::<u64>()) {
        use bbc_core::CostModel;
        let spec = GameSpec::uniform(n, k).with_cost_model(CostModel::MaxDistance);
        let cfg = Configuration::random(&spec, seed);
        prop_assert!(
            social::social_cost(&spec, &cfg) >= social::uniform_social_lower_bound(&spec)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_harvest_matches_sequential_on_uniform_games(
        n in 4usize..=8,
        k in 1u64..=2,
        threads in 2usize..=6,
        seeds in 4u64..=12,
        max_steps in 50u64..=400,
    ) {
        // Byte-identical merge contract: equilibria in first-discovery
        // order, cycling and exhausted seed lists, for any worker count.
        // The small step caps deliberately produce exhausted walks too.
        let spec = GameSpec::uniform(n, k);
        let seq = equilibria::harvest_equilibria(&spec, 0..seeds, max_steps).unwrap();
        let par =
            equilibria::harvest_equilibria_parallel(&spec, 0..seeds, max_steps, threads).unwrap();
        prop_assert_eq!(&par.equilibria, &seq.equilibria);
        prop_assert_eq!(&par.cycling_seeds, &seq.cycling_seeds);
        prop_assert_eq!(&par.exhausted_seeds, &seq.exhausted_seeds);
    }

    #[test]
    fn parallel_harvest_matches_sequential_on_preference_games(
        seed in any::<u64>(),
        threads in 2usize..=5,
        max_steps in 50u64..=300,
    ) {
        use bbc_core::CostModel;
        let spec = equilibria::random_preference_game(6, seed, 3, CostModel::SumDistance);
        let seq = equilibria::harvest_equilibria(&spec, 0..8, max_steps).unwrap();
        let par =
            equilibria::harvest_equilibria_parallel(&spec, 0..8, max_steps, threads).unwrap();
        prop_assert_eq!(&par.equilibria, &seq.equilibria);
        prop_assert_eq!(&par.cycling_seeds, &seq.cycling_seeds);
        prop_assert_eq!(&par.exhausted_seeds, &seq.exhausted_seeds);
    }
}

#[test]
fn harvested_equilibria_are_all_exactly_stable() {
    let spec = GameSpec::uniform(8, 2);
    let harvest = equilibria::harvest_equilibria(&spec, 0..8, 100_000).unwrap();
    let checker = StabilityChecker::new(&spec);
    for eq in &harvest.equilibria {
        assert!(checker.is_stable(eq).unwrap());
        for u in NodeId::all(8) {
            assert!(spec.validate_strategy(u, eq.strategy(u)).is_ok());
        }
    }
}

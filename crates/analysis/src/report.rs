//! Structured experiment records.
//!
//! Each experiment binary emits one [`ExperimentReport`]: the paper's claim,
//! what was measured, and whether they agree. EXPERIMENTS.md is assembled
//! from these records; the JSON artifacts live under `target/experiments/`
//! so reruns are diffable.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// The directory every experiment artifact lands in — the report JSON *and*
/// the per-row JSONL streams: `$CARGO_TARGET_DIR/experiments`, falling back
/// to `target/experiments` relative to the current directory. One resolver,
/// so the two artifact kinds can never drift into different places.
pub fn experiments_dir() -> PathBuf {
    let base = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    base.join("experiments")
}

/// One experiment's outcome record.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id, e.g. `"E5"`.
    pub id: String,
    /// The paper artifact being reproduced, e.g. `"Lemma 6 / Figure 3"`.
    pub paper_artifact: String,
    /// The paper's claim, in one sentence.
    pub claim: String,
    /// What this run measured, in one sentence.
    pub measured: String,
    /// Whether the measurement supports the claim.
    pub agrees: bool,
    /// Free-form caveats (reconstruction notes, deviations, runtimes).
    pub notes: Vec<String>,
    /// The data rows behind the verdict (CSV text, for diffing).
    pub csv: String,
    /// Canonical run-config fingerprint of the sweep that produced the
    /// record (empty for non-streaming experiments). Matches the header of
    /// the experiment's `.jsonl` stream, so the report names exactly which
    /// configuration — grid, scheduler, seeds, mode — its rows came from.
    pub fingerprint: String,
}

impl ExperimentReport {
    /// Creates a report shell; fill `measured`/`agrees`/`csv` before saving.
    pub fn new(id: &str, paper_artifact: &str, claim: &str) -> Self {
        Self {
            id: id.to_string(),
            paper_artifact: paper_artifact.to_string(),
            claim: claim.to_string(),
            measured: String::new(),
            agrees: false,
            notes: Vec::new(),
            csv: String::new(),
            fingerprint: String::new(),
        }
    }

    /// Default artifact path: `target/experiments/<id>.json` (see
    /// [`experiments_dir`]).
    pub fn default_path(&self) -> PathBuf {
        experiments_dir().join(format!("{}.json", self.id))
    }

    /// Serializes to pretty JSON at `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        // bbc-lint: allow(panic, the report is a plain data struct; serialization cannot fail)
        let json = serde_json::to_string_pretty(self).expect("report serializes");
        fs::write(path, json)
    }

    /// Loads a previously saved report.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; malformed JSON maps to
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Renders the human-readable header block the binaries print.
    pub fn banner(&self) -> String {
        format!(
            "[{}] {}\n  claim:    {}\n  measured: {}\n  verdict:  {}\n",
            self.id,
            self.paper_artifact,
            self.claim,
            self.measured,
            if self.agrees {
                "AGREES with the paper"
            } else {
                "DISAGREES (see notes)"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn save_load_round_trip() {
        let mut r = ExperimentReport::new("E0", "Test", "testing works");
        r.measured = "it did".into();
        r.agrees = true;
        r.csv = "a,b\n1,2\n".into();
        r.notes.push("note".into());
        let dir = std::env::temp_dir().join("bbc-report-test");
        let path = dir.join("E0.json");
        r.save(&path).unwrap();
        let loaded = ExperimentReport::load(&path).unwrap();
        assert_eq!(r, loaded);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn banner_mentions_verdict() {
        let mut r = ExperimentReport::new("E1", "Thm 1", "no NE");
        r.agrees = true;
        assert!(r.banner().contains("AGREES"));
        r.agrees = false;
        assert!(r.banner().contains("DISAGREES"));
    }
}

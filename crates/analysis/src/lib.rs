//! Measurement layer for BBC games: social cost and PoA/PoS ratios,
//! fairness (Lemma 1), equilibrium harvesting by dynamics, no-equilibrium
//! instance search, and the table/report plumbing shared by the experiment
//! binaries.

#![forbid(unsafe_code)]

pub mod equilibria;
pub mod fairness;
pub mod report;
pub mod social;
pub mod table;

pub use equilibria::{harvest_equilibria, harvest_equilibria_parallel, Harvest};
pub use fairness::{fairness, fairness_with, FairnessReport};
pub use report::ExperimentReport;
pub use social::{price_ratio, social_cost, uniform_social_lower_bound};
pub use table::Table;

//! Aligned text tables and CSV output for the experiment binaries.
//!
//! Every experiment prints the same rows the paper's figures encode, in a
//! form that survives a terminal: an aligned table for eyes, CSV for tools.

use std::fmt::Write as _;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use bbc_analysis::table::Table;
///
/// let mut t = Table::new(&["n", "k", "ratio"]);
/// t.row(&["14", "2", "1.53"]);
/// let text = t.to_text();
/// assert!(text.contains("ratio"));
/// assert!(text.contains("1.53"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn to_text(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting — experiment cells are plain numbers and
    /// identifiers).
    pub fn to_csv(&self) -> String {
        let mut out = self.headers.join(",");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_pads_to_widest_cell() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["12345", "x"]);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len(), "header and row align");
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1", "2"]);
        t.row(&["3", "4"]);
        assert_eq!(t.to_csv(), "x,y\n1,2\n3,4\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["x"]);
        t.row(&["1", "2"]);
    }
}

//! Fairness of stable graphs (Lemma 1).
//!
//! In any stable `(n,k)`-uniform graph, every node's cost is within an
//! additive `n + n·⌊log_k n⌋` and a multiplicative `2 + 1/k + o(1)` of every
//! other node's. E4 measures both quantities on every equilibrium the other
//! experiments produce.

use serde::{Deserialize, Serialize};

use bbc_core::{Configuration, Evaluator, GameSpec};

use crate::social::floor_log;

/// Measured cost spread of a configuration, with the paper's Lemma 1 bounds
/// evaluated alongside.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FairnessReport {
    /// Smallest node cost.
    pub min_cost: u64,
    /// Largest node cost.
    pub max_cost: u64,
    /// `max_cost − min_cost`.
    pub additive_gap: u64,
    /// `max_cost / min_cost` (`inf` if some node has zero cost).
    pub ratio: f64,
    /// Lemma 1's additive bound `n + n·⌊log_k n⌋`.
    pub additive_bound: u64,
    /// Lemma 1's leading multiplicative constant `2 + 1/k`.
    pub multiplicative_bound: f64,
}

impl FairnessReport {
    /// `true` when the measured additive gap respects Lemma 1's bound.
    pub fn within_additive_bound(&self) -> bool {
        self.additive_gap <= self.additive_bound
    }
}

/// Measures the fairness of `config` under a uniform game.
///
/// # Panics
///
/// Panics if the game is not uniform (Lemma 1 is a uniform-game statement).
pub fn fairness(spec: &GameSpec, config: &Configuration) -> FairnessReport {
    fairness_with(&mut Evaluator::new(spec), config)
}

/// [`fairness`] with a caller-held [`Evaluator`].
///
/// The evaluator's `DistanceEngine` diffs consecutive configurations, so
/// measuring a batch of related equilibria (a dynamics harvest, a tail-length
/// sweep) only recomputes the distance rows each configuration change could
/// have affected.
///
/// # Panics
///
/// Panics if the evaluator's game is not uniform.
pub fn fairness_with(eval: &mut Evaluator<'_>, config: &Configuration) -> FairnessReport {
    let spec = eval.spec();
    let k = spec
        .uniform_k()
        // bbc-lint: allow(panic, documented # Panics contract: fairness bounds apply to uniform games only)
        .expect("fairness bounds apply to uniform games");
    let n = spec.node_count() as u64;
    let costs = eval.node_costs(config);
    let min_cost = costs.iter().copied().min().unwrap_or(0);
    let max_cost = costs.iter().copied().max().unwrap_or(0);
    let additive_bound = n + n * u64::from(floor_log(k.max(2), n));
    FairnessReport {
        min_cost,
        max_cost,
        additive_gap: max_cost - min_cost,
        ratio: if min_cost == 0 {
            f64::INFINITY
        } else {
            max_cost as f64 / min_cost as f64
        },
        additive_bound,
        multiplicative_bound: 2.0 + 1.0 / k.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::NodeId;

    #[test]
    fn cycle_is_perfectly_fair() {
        let n = 6;
        let spec = GameSpec::uniform(n, 1);
        let cfg = Configuration::from_strategies(
            &spec,
            (0..n).map(|i| vec![NodeId::new((i + 1) % n)]).collect(),
        )
        .unwrap();
        let report = fairness(&spec, &cfg);
        assert_eq!(report.additive_gap, 0);
        assert!((report.ratio - 1.0).abs() < 1e-12);
        assert!(report.within_additive_bound());
    }

    #[test]
    fn bound_values_match_lemma() {
        let spec = GameSpec::uniform(16, 2);
        let cfg = Configuration::random(&spec, 1);
        let report = fairness(&spec, &cfg);
        // n + n·⌊log₂ 16⌋ = 16 + 16·4 = 80.
        assert_eq!(report.additive_bound, 80);
        assert!((report.multiplicative_bound - 2.5).abs() < 1e-12);
    }

    #[test]
    fn unfair_configuration_detected() {
        // A path: the head is far from everyone, the tail disconnected.
        let spec = GameSpec::uniform(5, 1);
        let mut cfg = Configuration::empty(5);
        for i in 0..4 {
            cfg.set_strategy(&spec, NodeId::new(i), vec![NodeId::new(i + 1)])
                .unwrap();
        }
        let report = fairness(&spec, &cfg);
        assert!(report.additive_gap > 0);
        assert!(
            !report.within_additive_bound(),
            "a non-equilibrium may violate Lemma 1"
        );
    }
}

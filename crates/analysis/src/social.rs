//! Social cost and the structural lower bounds behind PoA/PoS claims.
//!
//! Theorem 4's accounting rests on two facts about any `(n,k)`-uniform
//! configuration: a node with out-degree ≤ k can see at most `k^d` nodes at
//! distance `d`, so its cost is at least the "greedy BFS" bound
//! ([`uniform_min_node_cost`]); and a Forest of Willows with `l = 0` gets
//! within a constant of that bound, pinning the price of stability at Θ(1).

use bbc_core::{Configuration, CostModel, Evaluator, GameSpec};

/// `⌊log_k x⌋` for `k ≥ 2`, with `floor_log(k, 0) = 0`.
pub fn floor_log(k: u64, x: u64) -> u32 {
    assert!(k >= 2, "logarithm base must be at least 2");
    let mut pow = 1u64;
    let mut e = 0u32;
    while pow <= x / k {
        pow *= k;
        e += 1;
    }
    if pow <= x && x > 0 {
        // pow = k^e ≤ x < k^{e+1}.
        e
    } else {
        0
    }
}

/// The minimum possible sum-of-distances cost of a single node in any graph
/// with maximum out-degree `k`: `k` nodes at distance 1, `k²` at 2, and so
/// on until all `n−1` targets are packed.
///
/// # Examples
///
/// ```
/// use bbc_analysis::social::uniform_min_node_cost;
///
/// // n=7, k=2: two at distance 1, four at 2: 2 + 8 = 10.
/// assert_eq!(uniform_min_node_cost(7, 2), 10);
/// ```
pub fn uniform_min_node_cost(n: usize, k: u64) -> u64 {
    assert!(k >= 1, "degree bound must be positive");
    let mut remaining = (n as u64).saturating_sub(1);
    let mut level_capacity = k;
    let mut depth = 1u64;
    let mut cost = 0u64;
    while remaining > 0 {
        let here = remaining.min(level_capacity);
        cost += here * depth;
        remaining -= here;
        level_capacity = level_capacity.saturating_mul(k);
        depth += 1;
    }
    cost
}

/// The minimum possible eccentricity of a node in a max-out-degree-`k`
/// graph: the smallest `D` with `1 + k + … + k^D ≥ n`.
pub fn uniform_min_node_eccentricity(n: usize, k: u64) -> u64 {
    assert!(k >= 1);
    let mut covered = 1u64;
    let mut level_capacity = k;
    let mut depth = 0u64;
    while covered < n as u64 {
        covered = covered.saturating_add(level_capacity);
        level_capacity = level_capacity.saturating_mul(k);
        depth += 1;
    }
    depth
}

/// Lower bound on the social cost of *any* `(n,k)`-uniform configuration,
/// under the spec's cost model (sum: `n · uniform_min_node_cost`; max:
/// `n · uniform_min_node_eccentricity`).
pub fn uniform_social_lower_bound(spec: &GameSpec) -> u64 {
    let n = spec.node_count();
    let k = spec
        .uniform_k()
        // bbc-lint: allow(panic, documented # Panics contract: the bound applies to uniform games only)
        .expect("lower bound applies to uniform games");
    match spec.cost_model() {
        CostModel::SumDistance => n as u64 * uniform_min_node_cost(n, k),
        CostModel::MaxDistance => n as u64 * uniform_min_node_eccentricity(n, k),
    }
}

/// Social cost of a configuration (sum of node costs).
///
/// One-shot convenience over an [`Evaluator`] (and therefore the CSR
/// distance engine); callers pricing many configurations of the same game
/// should hold their own `Evaluator` so consecutive evaluations diff
/// instead of recomputing.
pub fn social_cost(spec: &GameSpec, config: &Configuration) -> u64 {
    Evaluator::new(spec).social_cost(config)
}

/// Ratio of a measured social cost to the structural lower bound; the
/// empirical stand-in for "price" quantities.
pub fn price_ratio(spec: &GameSpec, config: &Configuration) -> f64 {
    social_cost(spec, config) as f64 / uniform_social_lower_bound(spec) as f64
}

/// The paper's PoA lower-bound curve `√(n/k) / log_k n` (Theorem 4),
/// evaluated as a float for plotting against measured ratios.
pub fn poa_lower_bound_curve(n: usize, k: u64) -> f64 {
    let log = (n as f64).ln() / (k.max(2) as f64).ln();
    ((n as f64) / k as f64).sqrt() / log
}

/// The paper's BBC-max PoA lower-bound curve `n / (k·log_k n)` (Theorem 8).
pub fn max_poa_lower_bound_curve(n: usize, k: u64) -> f64 {
    let log = (n as f64).ln() / (k.max(2) as f64).ln();
    n as f64 / (k as f64 * log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::NodeId;

    #[test]
    fn floor_log_values() {
        assert_eq!(floor_log(2, 1), 0);
        assert_eq!(floor_log(2, 2), 1);
        assert_eq!(floor_log(2, 7), 2);
        assert_eq!(floor_log(2, 8), 3);
        assert_eq!(floor_log(3, 26), 2);
        assert_eq!(floor_log(3, 27), 3);
        assert_eq!(floor_log(10, 0), 0);
    }

    #[test]
    fn min_node_cost_small_cases() {
        // n=2, k=1: one node at distance 1.
        assert_eq!(uniform_min_node_cost(2, 1), 1);
        // k=1: path distances 1+2+...+(n-1).
        assert_eq!(uniform_min_node_cost(5, 1), 10);
        // k >= n-1: everyone at distance 1.
        assert_eq!(uniform_min_node_cost(5, 10), 4);
    }

    #[test]
    fn min_eccentricity_small_cases() {
        assert_eq!(uniform_min_node_eccentricity(2, 1), 1);
        assert_eq!(uniform_min_node_eccentricity(4, 3), 1);
        assert_eq!(uniform_min_node_eccentricity(5, 2), 2);
        assert_eq!(uniform_min_node_eccentricity(8, 2), 3);
    }

    #[test]
    fn lower_bound_is_actually_lower() {
        // Compare against real configurations.
        for (n, k) in [(8usize, 1u64), (9, 2), (12, 3)] {
            let spec = GameSpec::uniform(n, k);
            for seed in 0..5 {
                let cfg = Configuration::random(&spec, seed);
                assert!(
                    social_cost(&spec, &cfg) >= uniform_social_lower_bound(&spec),
                    "n={n} k={k} seed={seed}"
                );
            }
        }
    }

    #[test]
    fn cycle_achieves_k1_lower_bound() {
        let n = 7;
        let spec = GameSpec::uniform(n, 1);
        let cfg = Configuration::from_strategies(
            &spec,
            (0..n).map(|i| vec![NodeId::new((i + 1) % n)]).collect(),
        )
        .unwrap();
        assert_eq!(social_cost(&spec, &cfg), uniform_social_lower_bound(&spec));
        assert!((price_ratio(&spec, &cfg) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn poa_curves_are_monotone_in_n() {
        assert!(poa_lower_bound_curve(1000, 2) > poa_lower_bound_curve(100, 2));
        assert!(max_poa_lower_bound_curve(1000, 2) > max_poa_lower_bound_curve(100, 2));
    }
}

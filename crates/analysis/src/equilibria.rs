//! Equilibrium harvesting and instance search.
//!
//! Two workhorses for the experiments: collecting distinct equilibria by
//! running best-response dynamics from many seeded starting points (the way
//! the paper's §4.3 experiments explore the landscape), and searching small
//! random games for no-equilibrium witnesses (used to pin down Theorem 7's
//! BBC-max claim with a concrete, machine-checkable instance).

use std::sync::atomic::{AtomicU64, Ordering};

use rand::{rngs::SmallRng, Rng, SeedableRng};

use bbc_core::det::DetHashSet;
use bbc_core::{enumerate, Configuration, CostModel, GameSpec, Result, Walk, WalkOutcome};

/// Outcome of a seeded dynamics harvest.
#[derive(Clone, Debug, Default)]
pub struct Harvest {
    /// Distinct equilibria found, in first-discovery order.
    pub equilibria: Vec<Configuration>,
    /// Seeds whose walk ended in a detected best-response cycle.
    pub cycling_seeds: Vec<u64>,
    /// Seeds whose walk hit the step limit.
    pub exhausted_seeds: Vec<u64>,
}

/// Runs round-robin best-response walks from `seeds` random starting
/// configurations and collects the distinct equilibria reached.
///
/// Each walk owns a [`bbc_core::DistanceEngine`]: the per-step deviation
/// rows and best-response outcomes are cached and invalidated incrementally
/// as the walk rewires nodes, so a harvest is search-bound rather than
/// shortest-path-bound.
///
/// # Errors
///
/// Propagates best-response search failures (oversized strategy spaces).
pub fn harvest_equilibria(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
) -> Result<Harvest> {
    let mut merger = HarvestMerger::default();
    for seed in seeds {
        let verdict = walk_seed(spec, seed, max_steps)?;
        merger.absorb(seed, verdict);
    }
    Ok(merger.harvest)
}

/// Parallel variant of [`harvest_equilibria`]: seeds fan out across
/// `threads` OS threads (`std::thread::scope`), each walk owning its own
/// [`bbc_core::DistanceEngine`]. Workers claim seeds from a shared atomic
/// cursor (work-stealing — long walks do not serialize behind short ones)
/// and per-seed outcomes are merged **in seed order**, so the result —
/// equilibria in first-discovery order, cycling and exhausted seed lists —
/// is byte-identical to the sequential harvest for every thread count.
///
/// # Errors
///
/// Same conditions as [`harvest_equilibria`]; when several walks fail, the
/// lowest-seed error (the one the sequential harvest would have hit) is
/// returned.
pub fn harvest_equilibria_parallel(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    threads: usize,
) -> Result<Harvest> {
    let len = seeds.end.saturating_sub(seeds.start);
    let threads = threads
        .max(1)
        .min(usize::try_from(len).unwrap_or(usize::MAX).max(1));
    if threads <= 1 {
        return harvest_equilibria(spec, seeds, max_steps);
    }
    // A harvest consults every seed's verdict, so the slot table is the
    // same O(range) as the result it feeds.
    let mut slots: Vec<Option<Result<SeedVerdict>>> = (0..len).map(|_| None).collect();
    for (seed, verdict) in run_walks_stealing(
        spec,
        seeds.clone(),
        max_steps,
        threads,
        |v| v.is_err(),
        true,
    ) {
        slots[(seed - seeds.start) as usize] = Some(verdict);
    }
    let mut merger = HarvestMerger::default();
    for (i, slot) in slots.into_iter().enumerate() {
        // bbc-lint: allow(panic, the work-stealing loop fills every slot below the stop point before exiting)
        match slot.expect("seeds below the first failure are always processed") {
            Ok(verdict) => merger.absorb(seeds.start + i as u64, verdict),
            Err(e) => return Err(e),
        }
    }
    Ok(merger.harvest)
}

/// Outcome of one harvest walk, before the deterministic merge.
enum SeedVerdict {
    Equilibrium(Configuration),
    Cycle { first_seen_step: u64, period: u64 },
    StepLimit,
}

/// Runs one engine-backed round-robin walk from `seed`'s random start.
fn walk_seed(spec: &GameSpec, seed: u64, max_steps: u64) -> Result<SeedVerdict> {
    let start = Configuration::random(spec, seed);
    let mut walk = Walk::new(spec, start);
    Ok(match walk.run(max_steps)? {
        WalkOutcome::Equilibrium { .. } => SeedVerdict::Equilibrium(walk.into_config()),
        WalkOutcome::Cycle {
            first_seen_step,
            period,
        } => SeedVerdict::Cycle {
            first_seen_step,
            period,
        },
        WalkOutcome::StepLimit { .. } => SeedVerdict::StepLimit,
    })
}

/// Seed-order accumulator shared by the sequential and parallel harvests, so
/// both produce identical [`Harvest`] records by construction.
#[derive(Default)]
struct HarvestMerger {
    seen: DetHashSet<Configuration>,
    harvest: Harvest,
}

impl HarvestMerger {
    fn absorb(&mut self, seed: u64, verdict: SeedVerdict) {
        match verdict {
            SeedVerdict::Equilibrium(cfg) => {
                if self.seen.insert(cfg.clone()) {
                    self.harvest.equilibria.push(cfg);
                }
            }
            SeedVerdict::Cycle { .. } => self.harvest.cycling_seeds.push(seed),
            SeedVerdict::StepLimit => self.harvest.exhausted_seeds.push(seed),
        }
    }
}

/// Work-stealing driver shared by the parallel harvest and loop search:
/// claims seeds from `seeds` via an atomic cursor (the range is never
/// materialized — seeds derive from the cursor index), walks each claimed
/// seed, and returns the flattened, unordered `(seed, verdict)` pairs.
/// `is_hit` marks outcomes that decide the overall result (an error, or a
/// cycle for the loop search): once a hit lands at seed `s`, seeds above `s`
/// may be skipped, but every seed at or below the **lowest** hit is always
/// processed — exactly the prefix a sequential scan would have visited.
/// With `keep_non_hits = false` only hits are returned, so a short-circuit
/// search over a huge range stays O(workers) memory.
fn run_walks_stealing(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    threads: usize,
    is_hit: impl Fn(&Result<SeedVerdict>) -> bool + Sync,
    keep_non_hits: bool,
) -> Vec<(u64, Result<SeedVerdict>)> {
    let cursor = AtomicU64::new(seeds.start);
    let first_hit = AtomicU64::new(u64::MAX);
    let per_worker: Vec<Vec<(u64, Result<SeedVerdict>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local: Vec<(u64, Result<SeedVerdict>)> = Vec::new();
                    loop {
                        let seed = cursor.fetch_add(1, Ordering::Relaxed);
                        if seed >= seeds.end {
                            break;
                        }
                        if seed > first_hit.load(Ordering::Relaxed) {
                            // A lower seed already decided the result, and
                            // the cursor is monotone: every later claim is
                            // larger still (and `first_hit` only ever
                            // decreases), so this worker is done.
                            break;
                        }
                        let verdict = walk_seed(spec, seed, max_steps);
                        if is_hit(&verdict) {
                            first_hit.fetch_min(seed, Ordering::Relaxed);
                            local.push((seed, verdict));
                        } else if keep_non_hits {
                            local.push((seed, verdict));
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            // bbc-lint: allow(panic, the harvest driver returns a Vec, so re-raising the worker panic is the only sound option)
            .map(|h| h.join().expect("harvest worker panicked"))
            .collect()
    });
    per_worker.into_iter().flatten().collect()
}

/// Searches for a round-robin best-response *loop* (Figure 4's artifact) in
/// the `(n,k)`-uniform game: walks from seeded random configurations until
/// one provably cycles, returning the seed and the cycle parameters.
///
/// # Errors
///
/// Propagates best-response search failures.
pub fn find_best_response_loop(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
) -> Result<Option<(u64, u64, u64)>> {
    for seed in seeds {
        if let SeedVerdict::Cycle {
            first_seen_step,
            period,
        } = walk_seed(spec, seed, max_steps)?
        {
            return Ok(Some((seed, first_seen_step, period)));
        }
    }
    Ok(None)
}

/// Parallel variant of [`find_best_response_loop`]: seeds fan out across
/// `threads` OS threads with work-stealing; the returned witness is the
/// **lowest** cycling seed in the range — exactly what the sequential scan
/// returns — regardless of which worker found it first. Seeds above the
/// current best hit are skipped, so the search still short-circuits.
///
/// # Errors
///
/// Same conditions as [`find_best_response_loop`], resolved to the
/// lowest-seed failure.
pub fn find_best_response_loop_parallel(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
    threads: usize,
) -> Result<Option<(u64, u64, u64)>> {
    let len = seeds.end.saturating_sub(seeds.start);
    let threads = threads
        .max(1)
        .min(usize::try_from(len).unwrap_or(usize::MAX).max(1));
    if threads <= 1 {
        return find_best_response_loop(spec, seeds, max_steps);
    }
    // Only hits (cycles and errors) come back — a short-circuiting search
    // over a huge seed range never buffers the non-cycling majority.
    let hits = run_walks_stealing(
        spec,
        seeds,
        max_steps,
        threads,
        |verdict| matches!(verdict, Err(_) | Ok(SeedVerdict::Cycle { .. })),
        false,
    );
    // The lowest hit is the sequential answer: every seed below it ran and
    // was a non-cycling success.
    match hits.into_iter().min_by_key(|(seed, _)| *seed) {
        None => Ok(None),
        Some((_, Err(e))) => Err(e),
        Some((
            seed,
            Ok(SeedVerdict::Cycle {
                first_seen_step,
                period,
            }),
        )) => Ok(Some((seed, first_seen_step, period))),
        Some((_, Ok(_))) => unreachable!("non-hits are filtered by the driver"),
    }
}

/// A seeded random non-uniform game: unit lengths and costs, budget 1,
/// preference weights drawn uniformly from `0..=max_weight`.
pub fn random_preference_game(
    n: usize,
    seed: u64,
    max_weight: u64,
    cost_model: CostModel,
) -> GameSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GameSpec::builder(n)
        .default_budget(1)
        .cost_model(cost_model);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b = b.weight(u, v, rng.gen_range(0..=max_weight));
            }
        }
    }
    // bbc-lint: allow(panic, the builder gets in-range weights and the default budget, which always validate)
    b.build().expect("random preference game is valid")
}

/// Exhaustively decides whether a small game has any pure Nash equilibrium.
///
/// # Errors
///
/// Returns [`bbc_core::Error::SearchBudgetExceeded`] when the joint space
/// exceeds `max_profiles`.
pub fn has_pure_equilibrium(spec: &GameSpec, max_profiles: u64) -> Result<bool> {
    let space = enumerate::ProfileSpace::full(spec, max_profiles)?;
    let result = enumerate::find_equilibria(spec, &space, max_profiles)?;
    Ok(!result.equilibria.is_empty())
}

/// Scans seeds for a random preference game with **no** pure Nash
/// equilibrium; returns the first witness seed.
///
/// # Errors
///
/// Propagates enumeration failures for oversized instances.
pub fn search_no_equilibrium_game(
    n: usize,
    seeds: std::ops::Range<u64>,
    max_weight: u64,
    cost_model: CostModel,
    max_profiles: u64,
) -> Result<Option<u64>> {
    for seed in seeds {
        let spec = random_preference_game(n, seed, max_weight, cost_model);
        if !has_pure_equilibrium(&spec, max_profiles)? {
            return Ok(Some(seed));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::StabilityChecker;

    #[test]
    fn harvest_finds_multiple_equilibria() {
        let spec = GameSpec::uniform(6, 1);
        let harvest = harvest_equilibria(&spec, 0..20, 50_000).unwrap();
        assert!(!harvest.equilibria.is_empty());
        let checker = StabilityChecker::new(&spec);
        for eq in &harvest.equilibria {
            assert!(checker.is_stable(eq).unwrap());
        }
        // Different seeds typically land on different cycles/orientations.
        assert!(
            harvest.equilibria.len() >= 2,
            "expected equilibrium diversity"
        );
    }

    #[test]
    fn parallel_harvest_matches_sequential_byte_identically() {
        // (6,1) with a modest step cap: the seed range mixes equilibria,
        // duplicate equilibria (dedup order matters), cycles, and exhausted
        // walks — the parallel merge must reproduce all four lists exactly.
        let spec = GameSpec::uniform(6, 1);
        let seq = harvest_equilibria(&spec, 0..20, 400).unwrap();
        for threads in [2, 3, 8] {
            let par = harvest_equilibria_parallel(&spec, 0..20, 400, threads).unwrap();
            assert_eq!(par.equilibria, seq.equilibria, "threads={threads}");
            assert_eq!(par.cycling_seeds, seq.cycling_seeds, "threads={threads}");
            assert_eq!(
                par.exhausted_seeds, seq.exhausted_seeds,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn parallel_loop_search_returns_the_lowest_cycling_seed() {
        let spec = GameSpec::uniform(7, 2);
        let seq = find_best_response_loop(&spec, 0..40, 50_000).unwrap();
        for threads in [2, 4] {
            let par = find_best_response_loop_parallel(&spec, 0..40, 50_000, threads).unwrap();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn random_preference_game_is_seed_deterministic() {
        let a = random_preference_game(5, 9, 3, CostModel::SumDistance);
        let b = random_preference_game(5, 9, 3, CostModel::SumDistance);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_tiny_games_always_have_equilibria() {
        for n in 2..=4 {
            let spec = GameSpec::uniform(n, 1);
            assert!(has_pure_equilibrium(&spec, 1_000_000).unwrap(), "n={n}");
        }
    }
}

//! Equilibrium harvesting and instance search.
//!
//! Two workhorses for the experiments: collecting distinct equilibria by
//! running best-response dynamics from many seeded starting points (the way
//! the paper's §4.3 experiments explore the landscape), and searching small
//! random games for no-equilibrium witnesses (used to pin down Theorem 7's
//! BBC-max claim with a concrete, machine-checkable instance).

use std::collections::HashSet;

use rand::{rngs::SmallRng, Rng, SeedableRng};

use bbc_core::{enumerate, Configuration, CostModel, GameSpec, Result, Walk, WalkOutcome};

/// Outcome of a seeded dynamics harvest.
#[derive(Clone, Debug, Default)]
pub struct Harvest {
    /// Distinct equilibria found, in first-discovery order.
    pub equilibria: Vec<Configuration>,
    /// Seeds whose walk ended in a detected best-response cycle.
    pub cycling_seeds: Vec<u64>,
    /// Seeds whose walk hit the step limit.
    pub exhausted_seeds: Vec<u64>,
}

/// Runs round-robin best-response walks from `seeds` random starting
/// configurations and collects the distinct equilibria reached.
///
/// Each walk owns a [`bbc_core::DistanceEngine`]: the per-step deviation
/// rows and best-response outcomes are cached and invalidated incrementally
/// as the walk rewires nodes, so a harvest is search-bound rather than
/// shortest-path-bound.
///
/// # Errors
///
/// Propagates best-response search failures (oversized strategy spaces).
pub fn harvest_equilibria(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
) -> Result<Harvest> {
    let mut seen: HashSet<Configuration> = HashSet::new();
    let mut harvest = Harvest::default();
    for seed in seeds {
        let start = Configuration::random(spec, seed);
        let mut walk = Walk::new(spec, start);
        match walk.run(max_steps)? {
            WalkOutcome::Equilibrium { .. } => {
                let cfg = walk.into_config();
                if seen.insert(cfg.clone()) {
                    harvest.equilibria.push(cfg);
                }
            }
            WalkOutcome::Cycle { .. } => harvest.cycling_seeds.push(seed),
            WalkOutcome::StepLimit { .. } => harvest.exhausted_seeds.push(seed),
        }
    }
    Ok(harvest)
}

/// Searches for a round-robin best-response *loop* (Figure 4's artifact) in
/// the `(n,k)`-uniform game: walks from seeded random configurations until
/// one provably cycles, returning the seed and the cycle parameters.
///
/// # Errors
///
/// Propagates best-response search failures.
pub fn find_best_response_loop(
    spec: &GameSpec,
    seeds: std::ops::Range<u64>,
    max_steps: u64,
) -> Result<Option<(u64, u64, u64)>> {
    for seed in seeds {
        let start = Configuration::random(spec, seed);
        let mut walk = Walk::new(spec, start);
        if let WalkOutcome::Cycle {
            first_seen_step,
            period,
        } = walk.run(max_steps)?
        {
            return Ok(Some((seed, first_seen_step, period)));
        }
    }
    Ok(None)
}

/// A seeded random non-uniform game: unit lengths and costs, budget 1,
/// preference weights drawn uniformly from `0..=max_weight`.
pub fn random_preference_game(
    n: usize,
    seed: u64,
    max_weight: u64,
    cost_model: CostModel,
) -> GameSpec {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GameSpec::builder(n)
        .default_budget(1)
        .cost_model(cost_model);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b = b.weight(u, v, rng.gen_range(0..=max_weight));
            }
        }
    }
    b.build().expect("random preference game is valid")
}

/// Exhaustively decides whether a small game has any pure Nash equilibrium.
///
/// # Errors
///
/// Returns [`bbc_core::Error::SearchBudgetExceeded`] when the joint space
/// exceeds `max_profiles`.
pub fn has_pure_equilibrium(spec: &GameSpec, max_profiles: u64) -> Result<bool> {
    let space = enumerate::ProfileSpace::full(spec, max_profiles)?;
    let result = enumerate::find_equilibria(spec, &space, max_profiles)?;
    Ok(!result.equilibria.is_empty())
}

/// Scans seeds for a random preference game with **no** pure Nash
/// equilibrium; returns the first witness seed.
///
/// # Errors
///
/// Propagates enumeration failures for oversized instances.
pub fn search_no_equilibrium_game(
    n: usize,
    seeds: std::ops::Range<u64>,
    max_weight: u64,
    cost_model: CostModel,
    max_profiles: u64,
) -> Result<Option<u64>> {
    for seed in seeds {
        let spec = random_preference_game(n, seed, max_weight, cost_model);
        if !has_pure_equilibrium(&spec, max_profiles)? {
            return Ok(Some(seed));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::StabilityChecker;

    #[test]
    fn harvest_finds_multiple_equilibria() {
        let spec = GameSpec::uniform(6, 1);
        let harvest = harvest_equilibria(&spec, 0..20, 50_000).unwrap();
        assert!(!harvest.equilibria.is_empty());
        let checker = StabilityChecker::new(&spec);
        for eq in &harvest.equilibria {
            assert!(checker.is_stable(eq).unwrap());
        }
        // Different seeds typically land on different cycles/orientations.
        assert!(
            harvest.equilibria.len() >= 2,
            "expected equilibrium diversity"
        );
    }

    #[test]
    fn random_preference_game_is_seed_deterministic() {
        let a = random_preference_game(5, 9, 3, CostModel::SumDistance);
        let b = random_preference_game(5, 9, 3, CostModel::SumDistance);
        assert_eq!(a, b);
    }

    #[test]
    fn uniform_tiny_games_always_have_equilibria() {
        for n in 2..=4 {
            let spec = GameSpec::uniform(n, 1);
            assert!(has_pure_equilibrium(&spec, 1_000_000).unwrap(), "n={n}");
        }
    }
}

//! A DPLL satisfiability solver.
//!
//! Small and dependable rather than fast: unit propagation, pure-literal
//! elimination, and first-unassigned branching. The Theorem 2 experiments
//! only ever solve formulas with a handful of variables — the point is an
//! *independent* ground truth for "is φ satisfiable?" to compare against the
//! game-theoretic answer produced by the reduction.

use crate::{Cnf, Lit};

/// Decides satisfiability; returns a satisfying assignment if one exists.
///
/// # Examples
///
/// ```
/// use bbc_sat::{dpll, Cnf, Lit};
///
/// let f = Cnf::new(2, vec![vec![Lit::pos(0)], vec![Lit::neg(0), Lit::pos(1)]]);
/// let a = dpll::solve(&f).expect("satisfiable");
/// assert!(f.is_satisfied_by(&a));
///
/// let contradiction = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
/// assert!(dpll::solve(&contradiction).is_none());
/// ```
pub fn solve(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut assignment: Vec<Option<bool>> = vec![None; cnf.num_vars()];
    if search(cnf, &mut assignment) {
        // Unconstrained variables default to false.
        Some(assignment.into_iter().map(|a| a.unwrap_or(false)).collect())
    } else {
        None
    }
}

/// Clause status under a partial assignment.
enum ClauseState {
    Satisfied,
    /// All literals false.
    Conflict,
    /// Exactly one literal unassigned, the rest false.
    Unit(Lit),
    Open,
}

fn clause_state(clause: &[Lit], assignment: &[Option<bool>]) -> ClauseState {
    let mut unassigned = None;
    let mut unassigned_count = 0;
    for &lit in clause {
        match assignment[lit.var.index()] {
            Some(v) if lit.satisfied_by(v) => return ClauseState::Satisfied,
            Some(_) => {}
            None => {
                unassigned = Some(lit);
                unassigned_count += 1;
            }
        }
    }
    match unassigned_count {
        0 => ClauseState::Conflict,
        // bbc-lint: allow(panic, unassigned_count == 1 means the Option was filled in the scan above)
        1 => ClauseState::Unit(unassigned.expect("counted one unassigned literal")),
        _ => ClauseState::Open,
    }
}

/// Applies unit propagation until fixpoint. Returns `false` on conflict;
/// records the trail of forced assignments in `trail`.
fn propagate(cnf: &Cnf, assignment: &mut [Option<bool>], trail: &mut Vec<usize>) -> bool {
    loop {
        let mut forced = None;
        for clause in cnf.clauses() {
            match clause_state(clause, assignment) {
                ClauseState::Conflict => return false,
                ClauseState::Unit(lit) => {
                    forced = Some(lit);
                    break;
                }
                _ => {}
            }
        }
        match forced {
            Some(lit) => {
                assignment[lit.var.index()] = Some(lit.positive);
                trail.push(lit.var.index());
            }
            None => return true,
        }
    }
}

/// Assigns pure literals (appearing with only one polarity among
/// not-yet-satisfied clauses). Sound: satisfying a pure literal never hurts.
fn assign_pure_literals(cnf: &Cnf, assignment: &mut [Option<bool>], trail: &mut Vec<usize>) {
    let n = cnf.num_vars();
    let mut pos = vec![false; n];
    let mut neg = vec![false; n];
    for clause in cnf.clauses() {
        if matches!(clause_state(clause, assignment), ClauseState::Satisfied) {
            continue;
        }
        for &lit in clause {
            if assignment[lit.var.index()].is_none() {
                if lit.positive {
                    pos[lit.var.index()] = true;
                } else {
                    neg[lit.var.index()] = true;
                }
            }
        }
    }
    for v in 0..n {
        if assignment[v].is_none() && (pos[v] ^ neg[v]) {
            assignment[v] = Some(pos[v]);
            trail.push(v);
        }
    }
}

fn search(cnf: &Cnf, assignment: &mut Vec<Option<bool>>) -> bool {
    let mut trail = Vec::new();
    if !propagate(cnf, assignment, &mut trail) {
        undo(assignment, &trail);
        return false;
    }
    assign_pure_literals(cnf, assignment, &mut trail);

    let branch_var = (0..cnf.num_vars()).find(|&v| assignment[v].is_none());
    let Some(v) = branch_var else {
        // Fully assigned: propagation guarantees no conflict, but check to be
        // dependable rather than clever.
        let full: Vec<bool> = assignment.iter().map(|a| a.unwrap_or(false)).collect();
        if cnf.is_satisfied_by(&full) {
            return true;
        }
        undo(assignment, &trail);
        return false;
    };

    for value in [true, false] {
        assignment[v] = Some(value);
        if search(cnf, assignment) {
            return true;
        }
        assignment[v] = None;
    }
    undo(assignment, &trail);
    false
}

fn undo(assignment: &mut [Option<bool>], trail: &[usize]) {
    for &v in trail {
        assignment[v] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ground truth by truth table.
    fn brute_force_sat(cnf: &Cnf) -> bool {
        let n = cnf.num_vars();
        assert!(n <= 20);
        (0u32..(1 << n)).any(|mask| {
            let a: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            cnf.is_satisfied_by(&a)
        })
    }

    #[test]
    fn trivial_formulas() {
        assert!(solve(&Cnf::new(0, vec![])).is_some());
        assert!(solve(&Cnf::new(3, vec![])).is_some());
        let unit = Cnf::new(1, vec![vec![Lit::neg(0)]]);
        assert_eq!(solve(&unit), Some(vec![false]));
    }

    #[test]
    fn models_are_verified() {
        let f = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
                vec![Lit::neg(0), Lit::neg(1)],
                vec![Lit::neg(1), Lit::neg(2)],
                vec![Lit::pos(1)],
            ],
        );
        let a = solve(&f).expect("satisfiable: x1 true, x0,x2 false");
        assert!(f.is_satisfied_by(&a));
    }

    #[test]
    fn detects_unsatisfiable_chains() {
        // x0, x0->x1, x1->x2, ¬x2.
        let f = Cnf::new(
            3,
            vec![
                vec![Lit::pos(0)],
                vec![Lit::neg(0), Lit::pos(1)],
                vec![Lit::neg(1), Lit::pos(2)],
                vec![Lit::neg(2)],
            ],
        );
        assert!(solve(&f).is_none());
    }

    #[test]
    fn matches_truth_table_on_pseudorandom_formulas() {
        let mut x: u64 = 12345;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize
        };
        for _ in 0..200 {
            let n = 2 + next() % 5;
            let m = 1 + next() % 12;
            let clauses: Vec<Vec<Lit>> = (0..m)
                .map(|_| {
                    (0..3)
                        .map(|_| {
                            let v = (next() % n) as u32;
                            if next() % 2 == 0 {
                                Lit::pos(v)
                            } else {
                                Lit::neg(v)
                            }
                        })
                        .collect()
                })
                .collect();
            let f = Cnf::new(n, clauses);
            let solved = solve(&f);
            assert_eq!(solved.is_some(), brute_force_sat(&f), "formula {f}");
            if let Some(a) = solved {
                assert!(f.is_satisfied_by(&a));
            }
        }
    }
}

//! CNF formulas: variables, literals, clauses.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A propositional variable, indexed densely from 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit {
    /// The underlying variable.
    pub var: Var,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// The positive literal of variable `v`.
    pub fn pos(v: u32) -> Self {
        Self {
            var: Var(v),
            positive: true,
        }
    }

    /// The negative literal of variable `v`.
    pub fn neg(v: u32) -> Self {
        Self {
            var: Var(v),
            positive: false,
        }
    }

    /// The literal's negation.
    pub fn negated(self) -> Self {
        Self {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Truth value under an assignment of the variable.
    #[inline]
    pub fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "¬{}", self.var)
        }
    }
}

/// A disjunction of literals.
pub type Clause = Vec<Lit>;

/// A CNF formula.
///
/// # Examples
///
/// ```
/// use bbc_sat::{Cnf, Lit};
///
/// // (x0 ∨ ¬x1) ∧ (x1)
/// let f = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)], vec![Lit::pos(1)]]);
/// assert!(f.is_satisfied_by(&[true, true]));
/// assert!(!f.is_satisfied_by(&[false, true]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates a formula over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if a clause references a variable `>= num_vars` or is empty
    /// (an empty clause makes the formula trivially unsatisfiable; represent
    /// that explicitly rather than by accident).
    pub fn new(num_vars: usize, clauses: Vec<Clause>) -> Self {
        for (i, c) in clauses.iter().enumerate() {
            assert!(!c.is_empty(), "clause {i} is empty");
            for lit in c {
                assert!(
                    lit.var.index() < num_vars,
                    "clause {i} references {} beyond num_vars={num_vars}",
                    lit.var
                );
            }
        }
        Self { num_vars, clauses }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Evaluates the formula under a full assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() != num_vars`.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment size mismatch");
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|lit| lit.satisfied_by(assignment[lit.var.index()]))
        })
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "⊤");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "(")?;
            for (j, lit) in c.iter().enumerate() {
                if j > 0 {
                    write!(f, " ∨ ")?;
                }
                write!(f, "{lit}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_negation() {
        let l = Lit::pos(3);
        assert_eq!(l.negated(), Lit::neg(3));
        assert_eq!(l.negated().negated(), l);
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert!(Lit::neg(3).satisfied_by(false));
    }

    #[test]
    fn empty_formula_is_satisfied() {
        let f = Cnf::new(2, vec![]);
        assert!(f.is_satisfied_by(&[false, false]));
    }

    #[test]
    fn evaluation_over_all_assignments() {
        // (x0 ∨ x1) ∧ (¬x0 ∨ ¬x1): exactly one of the two true.
        let f = Cnf::new(
            2,
            vec![
                vec![Lit::pos(0), Lit::pos(1)],
                vec![Lit::neg(0), Lit::neg(1)],
            ],
        );
        assert!(!f.is_satisfied_by(&[false, false]));
        assert!(f.is_satisfied_by(&[true, false]));
        assert!(f.is_satisfied_by(&[false, true]));
        assert!(!f.is_satisfied_by(&[true, true]));
    }

    #[test]
    fn display_renders_formula() {
        let f = Cnf::new(2, vec![vec![Lit::pos(0), Lit::neg(1)]]);
        assert_eq!(f.to_string(), "(x0 ∨ ¬x1)");
    }

    #[test]
    #[should_panic(expected = "beyond num_vars")]
    fn out_of_range_variable_rejected() {
        Cnf::new(1, vec![vec![Lit::pos(1)]]);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_clause_rejected() {
        Cnf::new(1, vec![vec![]]);
    }
}

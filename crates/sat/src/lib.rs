//! A minimal 3SAT toolkit: CNF formulas, a DPLL solver, and seeded random
//! generators.
//!
//! Built as the substrate for the paper's Theorem 2, which reduces 3SAT to
//! the question "does this non-uniform BBC game have a pure Nash
//! equilibrium?". The experiments cross-check the reduction's game-theoretic
//! answer against this crate's independent DPLL answer on the same formula.
//!
//! # Examples
//!
//! ```
//! use bbc_sat::{dpll, Cnf, Lit};
//!
//! let f = Cnf::new(2, vec![vec![Lit::pos(0), Lit::pos(1)], vec![Lit::neg(0)]]);
//! let model = dpll::solve(&f).expect("satisfiable");
//! assert!(f.is_satisfied_by(&model));
//! ```

#![forbid(unsafe_code)]

pub mod cnf;
pub mod dpll;
pub mod gen;

pub use cnf::{Clause, Cnf, Lit, Var};

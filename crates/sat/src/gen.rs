//! Seeded random 3SAT generation for the reduction experiments.

use rand::{rngs::SmallRng, seq::SliceRandom, Rng, SeedableRng};

use crate::{Cnf, Lit};

/// Generates a random 3SAT formula: `num_clauses` clauses of three literals
/// over distinct variables, polarity coin-flipped, seeded.
///
/// # Panics
///
/// Panics if `num_vars < 3` (a 3-literal clause needs three distinct
/// variables).
///
/// # Examples
///
/// ```
/// use bbc_sat::gen::random_3sat;
///
/// let f = random_3sat(5, 8, 42);
/// assert_eq!(f.num_vars(), 5);
/// assert_eq!(f.num_clauses(), 8);
/// assert_eq!(f, random_3sat(5, 8, 42), "seeded generation is deterministic");
/// ```
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
    assert!(num_vars >= 3, "3SAT clauses need at least 3 variables");
    let mut rng = SmallRng::seed_from_u64(seed);
    let vars: Vec<u32> = (0..num_vars as u32).collect();
    let clauses = (0..num_clauses)
        .map(|_| {
            let chosen: Vec<u32> = vars.choose_multiple(&mut rng, 3).copied().collect();
            chosen
                .into_iter()
                .map(|v| if rng.gen() { Lit::pos(v) } else { Lit::neg(v) })
                .collect()
        })
        .collect();
    Cnf::new(num_vars, clauses)
}

/// A pair of hand-picked fixture formulas: one satisfiable, one not. Used by
/// tests and the E2 experiment as smoke inputs with known answers.
pub fn fixtures() -> (Cnf, Cnf) {
    // (x0 ∨ x1 ∨ x2) ∧ (¬x0 ∨ x1 ∨ ¬x2): satisfiable (e.g. x1 = true).
    let sat = Cnf::new(
        3,
        vec![
            vec![Lit::pos(0), Lit::pos(1), Lit::pos(2)],
            vec![Lit::neg(0), Lit::pos(1), Lit::neg(2)],
        ],
    );
    // All eight polarity patterns over three variables: unsatisfiable.
    let mut clauses = Vec::new();
    for mask in 0u8..8 {
        clauses.push(
            (0..3u32)
                .map(|v| {
                    if mask & (1 << v) != 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect(),
        );
    }
    let unsat = Cnf::new(3, clauses);
    (sat, unsat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll;

    #[test]
    fn fixtures_have_known_answers() {
        let (sat, unsat) = fixtures();
        assert!(dpll::solve(&sat).is_some());
        assert!(dpll::solve(&unsat).is_none());
    }

    #[test]
    fn random_clauses_use_distinct_variables() {
        for seed in 0..20 {
            let f = random_3sat(6, 10, seed);
            for clause in f.clauses() {
                assert_eq!(clause.len(), 3);
                let mut vars: Vec<_> = clause.iter().map(|l| l.var).collect();
                vars.sort();
                vars.dedup();
                assert_eq!(vars.len(), 3, "seed {seed}: repeated variable in clause");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(random_3sat(6, 10, 1), random_3sat(6, 10, 2));
    }
}

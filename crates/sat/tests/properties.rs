//! Property-based tests: DPLL against the truth table.

use bbc_sat::{dpll, gen, Cnf, Lit};
use proptest::prelude::*;

fn arb_cnf() -> impl Strategy<Value = Cnf> {
    (2usize..=6).prop_flat_map(|n| {
        proptest::collection::vec(
            proptest::collection::vec((0..n as u32, proptest::bool::ANY), 1..=3),
            1..=10,
        )
        .prop_map(move |clauses| {
            let clauses = clauses
                .into_iter()
                .map(|lits| {
                    lits.into_iter()
                        .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                        .collect()
                })
                .collect();
            Cnf::new(n, clauses)
        })
    })
}

fn truth_table_sat(cnf: &Cnf) -> bool {
    let n = cnf.num_vars();
    (0u32..(1 << n)).any(|mask| {
        let a: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
        cnf.is_satisfied_by(&a)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dpll_agrees_with_truth_table(cnf in arb_cnf()) {
        let solved = dpll::solve(&cnf);
        prop_assert_eq!(solved.is_some(), truth_table_sat(&cnf));
        if let Some(model) = solved {
            prop_assert!(cnf.is_satisfied_by(&model));
        }
    }

    #[test]
    fn random_3sat_generator_yields_wellformed_formulas(
        nv in 3usize..=8,
        m in 1usize..=20,
        seed in any::<u64>(),
    ) {
        let f = gen::random_3sat(nv, m, seed);
        prop_assert_eq!(f.num_vars(), nv);
        prop_assert_eq!(f.num_clauses(), m);
        for clause in f.clauses() {
            prop_assert_eq!(clause.len(), 3);
            let mut vars: Vec<_> = clause.iter().map(|l| l.var).collect();
            vars.sort();
            vars.dedup();
            prop_assert_eq!(vars.len(), 3, "variables within a clause are distinct");
        }
        // DPLL decides it without panicking, and any model verifies.
        if let Some(model) = dpll::solve(&f) {
            prop_assert!(f.is_satisfied_by(&model));
        }
    }
}

//! Eccentricities and diameter.
//!
//! Lemma 7 of the paper bounds the diameter of any uniform stable graph by
//! `O(√(n log_k n))`; experiment E6 measures diameters of Forest-of-Willows
//! equilibria against that bound. Directed diameter here is the maximum
//! finite shortest-path distance over ordered pairs, with an explicit flag
//! for disconnected graphs rather than a fake infinite value.

use crate::{bfs::BfsBuffer, dijkstra::DijkstraBuffer, DiGraph, UNREACHABLE};

/// Per-node eccentricities plus connectivity information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Eccentricities {
    /// `ecc[v]` = max over reachable `w` of `d(v, w)`; `0` for an isolated
    /// node.
    pub ecc: Vec<u64>,
    /// `true` iff every ordered pair is connected.
    pub all_pairs_connected: bool,
}

impl Eccentricities {
    /// The diameter: maximum eccentricity. `None` when some ordered pair is
    /// disconnected (the paper would charge it the penalty `M`; we surface
    /// the condition instead).
    pub fn diameter(&self) -> Option<u64> {
        if self.all_pairs_connected {
            self.ecc.iter().copied().max()
        } else {
            None
        }
    }

    /// The radius: minimum eccentricity over nodes that reach everyone, i.e.
    /// the best "central" node of Lemma 7's second claim. `None` if no node
    /// reaches all others.
    pub fn radius(&self) -> Option<u64> {
        if self.all_pairs_connected {
            self.ecc.iter().copied().min()
        } else {
            None
        }
    }
}

/// Computes all eccentricities with one shortest-path run per node.
pub fn eccentricity(g: &DiGraph) -> Eccentricities {
    let n = g.node_count();
    let mut ecc = vec![0u64; n];
    let mut all_connected = true;
    if g.is_unit_length() {
        let mut buf = BfsBuffer::new(n);
        for (v, slot) in ecc.iter_mut().enumerate() {
            buf.run(g, v);
            let (e, conn) = max_finite(buf.distances());
            *slot = e;
            all_connected &= conn;
        }
    } else {
        let mut buf = DijkstraBuffer::new(n);
        for (v, slot) in ecc.iter_mut().enumerate() {
            buf.run(g, v);
            let (e, conn) = max_finite(buf.distances());
            *slot = e;
            all_connected &= conn;
        }
    }
    Eccentricities {
        ecc,
        all_pairs_connected: all_connected,
    }
}

/// Directed diameter of `g`, or `None` if any ordered pair is disconnected.
///
/// # Examples
///
/// ```
/// use bbc_graph::{diameter, DiGraph};
///
/// let ring = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
/// assert_eq!(diameter(&ring), Some(3));
/// let path = DiGraph::from_unit_edges(2, [(0, 1)]);
/// assert_eq!(diameter(&path), None); // 1 cannot reach 0
/// ```
pub fn diameter(g: &DiGraph) -> Option<u64> {
    eccentricity(g).diameter()
}

fn max_finite(dist: &[u64]) -> (u64, bool) {
    let mut max = 0;
    let mut connected = true;
    for &d in dist {
        if d == UNREACHABLE {
            connected = false;
        } else if d > max {
            max = d;
        }
    }
    (max, connected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_diameter_is_n_minus_1() {
        for n in 2..8 {
            let g = DiGraph::from_unit_edges(n, (0..n).map(|i| (i, (i + 1) % n)));
            assert_eq!(diameter(&g), Some(n as u64 - 1));
        }
    }

    #[test]
    fn complete_graph_diameter_is_1() {
        let n = 5;
        let edges = (0..n).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)));
        let g = DiGraph::from_unit_edges(n, edges);
        let e = eccentricity(&g);
        assert_eq!(e.diameter(), Some(1));
        assert_eq!(e.radius(), Some(1));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 0)]);
        let e = eccentricity(&g);
        assert!(!e.all_pairs_connected);
        assert_eq!(e.diameter(), None);
        assert_eq!(e.radius(), None);
    }

    #[test]
    fn weighted_diameter_uses_lengths() {
        let g = DiGraph::from_edges(3, [(0, 1, 10), (1, 2, 10), (2, 0, 10)]);
        assert_eq!(diameter(&g), Some(20));
    }

    #[test]
    fn radius_identifies_central_node() {
        // Star with hub 0 <-> leaves: hub eccentricity 1, leaves 2.
        let edges = (1..5).flat_map(|v| [(0, v), (v, 0)]);
        let g = DiGraph::from_unit_edges(5, edges);
        let e = eccentricity(&g);
        assert_eq!(e.radius(), Some(1));
        assert_eq!(e.diameter(), Some(2));
        assert_eq!(e.ecc[0], 1);
    }

    #[test]
    fn single_node_graph() {
        let e = eccentricity(&DiGraph::new(1));
        assert_eq!(e.diameter(), Some(0));
    }
}

//! Compressed sparse row (CSR) graph storage with in-place patching.
//!
//! [`DiGraph`]'s `Vec<Vec<Arc>>` adjacency is convenient to build but costs
//! one heap allocation per node and scatters arc slabs across the heap — the
//! best-response inner loops of the game layer traverse the same graph
//! thousands of times per second and pay for that scatter on every arc hop.
//! [`CsrGraph`] packs all arcs into two flat arenas (`targets`, `lengths`)
//! with a per-node span, so a traversal walks contiguous memory and a
//! configuration change that rewires **one** node patches one slab in place
//! ([`CsrGraph::set_out_links`]) instead of rebuilding the graph.
//!
//! Patching policy: each node's slab carries a little spare capacity. A new
//! strategy that fits the slab is written in place; one that doesn't gets a
//! fresh slab at the arena tail and the old slots become garbage, reclaimed
//! by an automatic compaction once more than half the arena is dead. Spans
//! are node-local, so compaction never invalidates node indices.
//!
//! [`CsrBfs`] and [`CsrDijkstra`] mirror the pooled-buffer API of
//! [`crate::BfsBuffer`] / [`crate::DijkstraBuffer`] on this layout, and add
//! the *skip-node* traversal (`G∖u`: ignore one node's out-arcs) that the
//! game layer's deviation oracle is built on.

use crate::{bitset::BitSet, DiGraph, UNREACHABLE};

/// Per-node slab descriptor into the arc arenas.
#[derive(Clone, Copy, Debug, Default)]
struct Span {
    start: u32,
    len: u32,
    cap: u32,
}

/// A directed graph in compressed-sparse-row form with patchable rows.
///
/// # Examples
///
/// ```
/// use bbc_graph::csr::CsrGraph;
///
/// let mut g = CsrGraph::new(4);
/// g.set_out_links(0, &[(1, 1), (2, 1)]);
/// g.set_out_links(2, &[(3, 5)]);
/// assert_eq!(g.arc_count(), 3);
/// assert_eq!(g.out_targets(0), &[1, 2]);
/// g.set_out_links(0, &[(3, 1)]); // in-place patch
/// assert_eq!(g.out_targets(0), &[3]);
/// assert_eq!(g.arc_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    spans: Vec<Span>,
    targets: Vec<u32>,
    lengths: Vec<u64>,
    live_arcs: usize,
    non_unit_arcs: usize,
    dead_slots: usize,
}

impl CsrGraph {
    /// Creates an arc-less graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "node count {n} exceeds u32 range");
        Self {
            spans: vec![Span::default(); n],
            targets: Vec::new(),
            lengths: Vec::new(),
            live_arcs: 0,
            non_unit_arcs: 0,
            dead_slots: 0,
        }
    }

    /// Converts an adjacency-list graph (arc order per node is preserved).
    pub fn from_digraph(g: &DiGraph) -> Self {
        let mut csr = Self::new(g.node_count());
        let mut row: Vec<(u32, u64)> = Vec::new();
        for u in 0..g.node_count() {
            row.clear();
            row.extend(g.out_arcs(u).iter().map(|a| (a.to, a.len)));
            csr.set_out_links(u, &row);
        }
        csr
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.spans.len()
    }

    /// Number of (live) arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.live_arcs
    }

    /// `true` when every arc has length exactly 1.
    #[inline]
    pub fn is_unit_length(&self) -> bool {
        self.non_unit_arcs == 0
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        self.spans[u].len as usize
    }

    /// Targets of `u`'s out-arcs (contiguous slice).
    #[inline]
    pub fn out_targets(&self, u: usize) -> &[u32] {
        let s = self.spans[u];
        &self.targets[s.start as usize..(s.start + s.len) as usize]
    }

    /// Targets and lengths of `u`'s out-arcs (parallel slices).
    #[inline]
    pub fn out(&self, u: usize) -> (&[u32], &[u64]) {
        let s = self.spans[u];
        let range = s.start as usize..(s.start + s.len) as usize;
        (&self.targets[range.clone()], &self.lengths[range])
    }

    /// Replaces `u`'s out-links with `links`, patching the slab in place when
    /// it fits and relocating it to the arena tail otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `u` or any target is out of bounds, or any length is zero.
    pub fn set_out_links(&mut self, u: usize, links: &[(u32, u64)]) {
        let n = self.spans.len();
        assert!(u < n, "source {u} out of bounds");
        for &(to, len) in links {
            assert!((to as usize) < n, "target {to} out of bounds");
            assert!(len > 0, "arc length must be positive");
        }
        let old = self.spans[u];
        let old_range = old.start as usize..(old.start + old.len) as usize;
        self.non_unit_arcs -= self.lengths[old_range].iter().filter(|&&l| l != 1).count();
        self.non_unit_arcs += links.iter().filter(|&&(_, l)| l != 1).count();
        self.live_arcs = self.live_arcs - old.len as usize + links.len();

        if links.len() <= old.cap as usize {
            let start = old.start as usize;
            for (i, &(to, len)) in links.iter().enumerate() {
                self.targets[start + i] = to;
                self.lengths[start + i] = len;
            }
            // bbc-lint: allow(narrowing-cast, len <= cap already fits the span word)
            self.spans[u].len = links.len() as u32;
            return;
        }

        // Relocate: old slab becomes garbage, new slab (with a little
        // headroom so steady-state rewiring stays in place) goes at the tail.
        self.dead_slots += old.cap as usize;
        let cap = links.len() + 2;
        let start = self.targets.len();
        assert!(
            start + cap <= u32::MAX as usize,
            "arc arena exceeds u32 range"
        );
        self.targets.extend(links.iter().map(|&(to, _)| to));
        self.lengths.extend(links.iter().map(|&(_, len)| len));
        self.targets.resize(start + cap, 0);
        self.lengths.resize(start + cap, 0);
        self.spans[u] = Span {
            start: start as u32, // bbc-lint: allow(narrowing-cast, start+cap <= u32::MAX asserted above)
            len: links.len() as u32, // bbc-lint: allow(narrowing-cast, len < cap <= u32::MAX asserted above)
            cap: cap as u32, // bbc-lint: allow(narrowing-cast, start+cap <= u32::MAX asserted above)
        };

        if self.dead_slots > self.targets.len() / 2 && self.targets.len() > 64 {
            self.compact();
        }
    }

    /// Appends a new, arc-less node and returns its id (`node_count() - 1`).
    ///
    /// Existing node ids, spans and arenas are untouched — growth is purely
    /// additive, so cached traversal results for the old nodes stay valid
    /// (the new node is unreachable until someone links to it).
    pub fn add_node(&mut self) -> usize {
        let id = self.spans.len();
        assert!(id < u32::MAX as usize, "node count exceeds u32 range");
        self.spans.push(Span::default());
        id
    }

    /// Retires node `u` from the arc arenas: its out-links are dropped and
    /// its slab is reclaimed as garbage (compacted away by the standing
    /// dead-slot policy). The node id itself remains valid — `u` stays an
    /// addressable, arc-less node, so no other node's id shifts.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of bounds or some other node still links to `u`
    /// (callers must strip in-arcs first; a departed node with dangling
    /// in-arcs would silently keep absorbing traffic).
    pub fn remove_node(&mut self, u: usize) {
        assert!(u < self.spans.len(), "node {u} out of bounds");
        for w in 0..self.spans.len() {
            if w != u {
                assert!(
                    // bbc-lint: allow(narrowing-cast, u < spans.len() <= u32::MAX per the constructor assert)
                    !self.out_targets(w).contains(&(u as u32)),
                    "node {w} still links to removed node {u}"
                );
            }
        }
        self.set_out_links(u, &[]);
        // The empty row fits any slab in place; explicitly retire the slab
        // so a long-lived graph does not leak capacity for departed nodes.
        let old = self.spans[u];
        self.dead_slots += old.cap as usize;
        self.spans[u] = Span::default();
        if self.dead_slots > self.targets.len() / 2 && self.targets.len() > 64 {
            self.compact();
        }
    }

    /// Rebuilds the arenas into the canonical layout a fresh
    /// [`CsrGraph::new`] + per-node [`CsrGraph::set_out_links`] build (in
    /// node order) produces — byte-identical spans and arenas, garbage-free.
    ///
    /// This is the determinism hook for node-churn workloads: after a
    /// membership change, canonicalizing makes the physical graph state
    /// (hence [`CsrGraph::arena_digest`]) independent of the patch history
    /// that led to it.
    pub fn rebuild_canonical(&mut self) {
        let n = self.spans.len();
        let mut fresh = CsrGraph::new(n);
        let mut row: Vec<(u32, u64)> = Vec::new();
        for u in 0..n {
            let (targets, lengths) = self.out(u);
            row.clear();
            row.extend(targets.iter().copied().zip(lengths.iter().copied()));
            fresh.set_out_links(u, &row);
        }
        *self = fresh;
    }

    /// FNV-1a digest of the physical graph state: node count, spans, and
    /// both arc arenas (garbage slots included). Two graphs with equal
    /// digests went through layout-equivalent build histories; pair with
    /// [`CsrGraph::rebuild_canonical`] to compare graphs modulo history.
    pub fn arena_digest(&self) -> u64 {
        let mut h = crate::digest::Fnv1a::new();
        h.write_u64(self.spans.len() as u64);
        for s in &self.spans {
            h.write_u64(u64::from(s.start));
            h.write_u64(u64::from(s.len));
            h.write_u64(u64::from(s.cap));
        }
        for &t in &self.targets {
            h.write_u64(u64::from(t));
        }
        for &l in &self.lengths {
            h.write_u64(l);
        }
        h.finish()
    }

    /// Rebuilds the arenas with no dead slots (spans keep their capacity).
    fn compact(&mut self) {
        let total_cap: usize = self.spans.iter().map(|s| s.cap as usize).sum();
        let mut targets = Vec::with_capacity(total_cap);
        let mut lengths = Vec::with_capacity(total_cap);
        for s in &mut self.spans {
            // bbc-lint: allow(narrowing-cast, compaction only shrinks an arena already asserted to fit u32)
            let start = targets.len() as u32;
            let range = s.start as usize..(s.start + s.len) as usize;
            targets.extend_from_slice(&self.targets[range.clone()]);
            lengths.extend_from_slice(&self.lengths[range]);
            targets.resize((start + s.cap) as usize, 0);
            lengths.resize((start + s.cap) as usize, 0);
            s.start = start;
        }
        self.targets = targets;
        self.lengths = lengths;
        self.dead_slots = 0;
    }
}

/// Reusable BFS state over [`CsrGraph`]s: distance row, queue, and the
/// *touched set* — every node whose out-arcs the traversal expanded.
///
/// The touched set is what makes shortest-path rows cacheable across graph
/// patches: a row computed from source `c` stays valid under a rewire of
/// node `m` unless `m` was touched (an unreached node's out-arcs cannot
/// affect any distance from `c`, and rewiring `m`'s *out*-links never makes
/// `m` itself newly reachable).
///
/// # Examples
///
/// ```
/// use bbc_graph::csr::{CsrBfs, CsrGraph};
///
/// let mut g = CsrGraph::new(4);
/// g.set_out_links(0, &[(1, 1)]);
/// g.set_out_links(1, &[(2, 1)]);
/// let mut bfs = CsrBfs::new(4);
/// bfs.run(&g, 0);
/// assert_eq!(bfs.distances(), &[0, 1, 2, bbc_graph::UNREACHABLE]);
/// assert!(bfs.touched().contains(1));
/// assert!(!bfs.touched().contains(3));
/// ```
#[derive(Clone, Debug)]
pub struct CsrBfs {
    dist: Vec<u64>,
    queue: Vec<u32>,
    touched: BitSet,
}

impl CsrBfs {
    /// Creates a buffer sized for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHABLE; n],
            queue: Vec::with_capacity(n),
            touched: BitSet::new(n),
        }
    }

    /// Grows the buffer to serve graphs of at least `n` nodes (no-op when
    /// already that large); distances from earlier runs are discarded.
    pub fn grow(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, UNREACHABLE);
            self.touched.grow(n);
        }
    }

    /// Runs BFS from `source` (arc lengths ignored — every arc is one hop).
    pub fn run(&mut self, g: &CsrGraph, source: usize) {
        self.run_impl(g, source, usize::MAX);
    }

    /// Runs BFS from `source` in `G∖skip`: `skip`'s out-arcs are ignored
    /// (`skip` itself remains reachable through other nodes' arcs).
    ///
    /// This is the deviation-oracle traversal: distances from a candidate
    /// target with the deviating node's links removed.
    pub fn run_skipping(&mut self, g: &CsrGraph, source: usize, skip: usize) {
        self.run_impl(g, source, skip);
    }

    fn run_impl(&mut self, g: &CsrGraph, source: usize, skip: usize) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        assert!(source < self.dist.len(), "source {source} out of bounds");
        self.dist.fill(UNREACHABLE);
        self.touched.clear();
        self.queue.clear();
        self.dist[source] = 0;
        // bbc-lint: allow(narrowing-cast, source < n <= u32::MAX per the constructor assert)
        self.queue.push(source as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            if u == skip {
                continue;
            }
            self.touched.insert(u);
            let du = self.dist[u];
            for &t in g.out_targets(u) {
                let v = t as usize;
                if self.dist[v] == UNREACHABLE {
                    self.dist[v] = du + 1;
                    self.queue.push(t);
                }
            }
        }
    }

    /// Distances from the last run; unreached nodes hold [`UNREACHABLE`].
    #[inline]
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }

    /// Nodes whose out-arcs the last run expanded.
    #[inline]
    pub fn touched(&self) -> &BitSet {
        &self.touched
    }

    /// Number of nodes reached by the last run (including the source).
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// Reusable Dijkstra state over [`CsrGraph`]s, with the same skip-node and
/// touched-set semantics as [`CsrBfs`].
#[derive(Clone, Debug)]
pub struct CsrDijkstra {
    dist: Vec<u64>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>>,
    touched: BitSet,
}

impl CsrDijkstra {
    /// Creates a buffer sized for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHABLE; n],
            heap: std::collections::BinaryHeap::with_capacity(n),
            touched: BitSet::new(n),
        }
    }

    /// Grows the buffer to serve graphs of at least `n` nodes (no-op when
    /// already that large); distances from earlier runs are discarded.
    pub fn grow(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, UNREACHABLE);
            self.touched.grow(n);
        }
    }

    /// Runs Dijkstra from `source`.
    pub fn run(&mut self, g: &CsrGraph, source: usize) {
        self.run_impl(g, source, usize::MAX);
    }

    /// Runs Dijkstra from `source` in `G∖skip` (see [`CsrBfs::run_skipping`]).
    pub fn run_skipping(&mut self, g: &CsrGraph, source: usize, skip: usize) {
        self.run_impl(g, source, skip);
    }

    fn run_impl(&mut self, g: &CsrGraph, source: usize, skip: usize) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        assert!(source < self.dist.len(), "source {source} out of bounds");
        self.dist.fill(UNREACHABLE);
        self.touched.clear();
        self.heap.clear();
        self.dist[source] = 0;
        // bbc-lint: allow(narrowing-cast, source < n <= u32::MAX per the constructor assert)
        self.heap.push(std::cmp::Reverse((0, source as u32)));
        while let Some(std::cmp::Reverse((d, u))) = self.heap.pop() {
            let u = u as usize;
            if d > self.dist[u] || u == skip {
                continue;
            }
            self.touched.insert(u);
            let (targets, lengths) = g.out(u);
            for (&t, &len) in targets.iter().zip(lengths) {
                let v = t as usize;
                let nd = d + len;
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.heap.push(std::cmp::Reverse((nd, t)));
                }
            }
        }
    }

    /// Distances from the last run; unreached nodes hold [`UNREACHABLE`].
    #[inline]
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }

    /// Nodes whose out-arcs the last run expanded.
    #[inline]
    pub fn touched(&self) -> &BitSet {
        &self.touched
    }

    /// Number of nodes reached by the last run (including the source).
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// Reusable scratch for strong-connectivity checks on [`CsrGraph`]s.
///
/// A graph is strongly connected iff node 0 reaches every node in both `G`
/// and the reverse graph. The reverse adjacency is rebuilt per call into
/// pooled buffers (counting sort), so the check allocates nothing after
/// warm-up — the dynamics engine runs it after every applied move.
#[derive(Clone, Debug, Default)]
pub struct ConnectivityScratch {
    visited: Vec<bool>,
    stack: Vec<u32>,
    rev_offsets: Vec<u32>,
    rev_targets: Vec<u32>,
    cursor: Vec<u32>,
}

impl ConnectivityScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` iff `g` is strongly connected. Graphs with at most one node
    /// are vacuously strongly connected.
    pub fn is_strongly_connected(&mut self, g: &CsrGraph) -> bool {
        self.is_strongly_connected_among(g, None)
    }

    /// `true` iff the subgraph induced by `live` is strongly connected
    /// (`None` means every node is live). Dead nodes are neither expanded
    /// nor counted, so a churned graph whose departed members still occupy
    /// node ids is judged on its live membership only. At most one live
    /// node is vacuously strongly connected.
    pub fn is_strongly_connected_among(&mut self, g: &CsrGraph, live: Option<&BitSet>) -> bool {
        let n = g.node_count();
        let alive = |v: usize| live.is_none_or(|l| l.contains(v));
        let live_count = live.map_or(n, BitSet::len);
        if live_count <= 1 {
            return true;
        }
        let root = match live {
            None => 0,
            Some(l) => {
                // bbc-lint: allow(panic, the live_count() > 1 early-return above guarantees a live node)
                let first = l.iter().next().expect("live_count > 1");
                // bbc-lint: allow(narrowing-cast, live node ids are < n <= u32::MAX per the constructor assert)
                first as u32
            }
        };
        // Forward sweep from the first live node.
        self.visited.clear();
        self.visited.resize(n, false);
        self.stack.clear();
        self.visited[root as usize] = true;
        self.stack.push(root);
        let mut seen = 1usize;
        while let Some(u) = self.stack.pop() {
            for &t in g.out_targets(u as usize) {
                if !self.visited[t as usize] && alive(t as usize) {
                    self.visited[t as usize] = true;
                    seen += 1;
                    self.stack.push(t);
                }
            }
        }
        if seen != live_count {
            return false;
        }

        // Reverse adjacency via counting sort into pooled arenas.
        self.rev_offsets.clear();
        self.rev_offsets.resize(n + 1, 0);
        for u in 0..n {
            for &t in g.out_targets(u) {
                self.rev_offsets[t as usize + 1] += 1;
            }
        }
        for i in 0..n {
            self.rev_offsets[i + 1] += self.rev_offsets[i];
        }
        let m = self.rev_offsets[n] as usize;
        self.rev_targets.clear();
        self.rev_targets.resize(m, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.rev_offsets[..n]);
        for u in 0..n {
            for &t in g.out_targets(u) {
                let slot = self.cursor[t as usize];
                // bbc-lint: allow(narrowing-cast, u < n <= u32::MAX per the constructor assert)
                self.rev_targets[slot as usize] = u as u32;
                self.cursor[t as usize] += 1;
            }
        }

        // Backward sweep from the same root over the reverse graph.
        self.visited.clear();
        self.visited.resize(n, false);
        self.stack.clear();
        self.visited[root as usize] = true;
        self.stack.push(root);
        let mut seen = 1usize;
        while let Some(u) = self.stack.pop() {
            let lo = self.rev_offsets[u as usize] as usize;
            let hi = self.rev_offsets[u as usize + 1] as usize;
            for &t in &self.rev_targets[lo..hi] {
                if !self.visited[t as usize] && alive(t as usize) {
                    self.visited[t as usize] = true;
                    seen += 1;
                    self.stack.push(t);
                }
            }
        }
        seen == live_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::bfs_distances;
    use crate::scc::is_strongly_connected;
    use crate::Arc;

    fn digraph_of(n: usize, edges: &[(usize, usize, u64)]) -> DiGraph {
        DiGraph::from_edges(n, edges.iter().copied())
    }

    #[test]
    fn from_digraph_preserves_structure() {
        let g = digraph_of(4, &[(0, 1, 1), (0, 2, 3), (2, 3, 1)]);
        let csr = CsrGraph::from_digraph(&g);
        assert_eq!(csr.node_count(), 4);
        assert_eq!(csr.arc_count(), 3);
        assert!(!csr.is_unit_length());
        assert_eq!(csr.out_targets(0), &[1, 2]);
        assert_eq!(csr.out(0).1, &[1, 3]);
        assert_eq!(csr.out_degree(3), 0);
    }

    #[test]
    fn patch_in_place_and_relocate() {
        let mut g = CsrGraph::new(5);
        g.set_out_links(0, &[(1, 1), (2, 1)]);
        g.set_out_links(1, &[(3, 1)]);
        // Shrink: fits in place.
        g.set_out_links(0, &[(4, 1)]);
        assert_eq!(g.out_targets(0), &[4]);
        // Grow past capacity (cap was 2 + 2 headroom): relocates.
        g.set_out_links(0, &[(1, 1), (2, 1), (3, 1), (4, 2)]);
        assert_eq!(g.out_targets(0), &[1, 2, 3, 4]);
        assert_eq!(g.arc_count(), 5);
        assert!(!g.is_unit_length());
        g.set_out_links(0, &[(1, 1)]);
        assert!(g.is_unit_length(), "non-unit arc was retired");
    }

    #[test]
    fn repeated_patching_stays_consistent_with_rebuild() {
        let mut g = CsrGraph::new(6);
        let mut rows: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 6];
        // A deterministic little edit script that forces several relocations
        // and at least one compaction.
        for step in 0..200u32 {
            let u = (step % 6) as usize;
            let deg = (step % 4) as usize;
            let row: Vec<(u32, u64)> = (0..deg)
                .map(|i| (((u + 1 + i) % 6) as u32, u64::from(step % 3) + 1))
                .collect();
            g.set_out_links(u, &row);
            rows[u] = row;
        }
        let mut fresh = CsrGraph::new(6);
        for (u, row) in rows.iter().enumerate() {
            fresh.set_out_links(u, row);
        }
        assert_eq!(g.arc_count(), fresh.arc_count());
        assert_eq!(g.is_unit_length(), fresh.is_unit_length());
        let mut a = CsrBfs::new(6);
        let mut b = CsrBfs::new(6);
        for s in 0..6 {
            a.run(&g, s);
            b.run(&fresh, s);
            assert_eq!(a.distances(), b.distances(), "source {s}");
        }
    }

    #[test]
    fn bfs_matches_adjacency_list_bfs() {
        let g = digraph_of(6, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (0, 4, 1)]);
        let csr = CsrGraph::from_digraph(&g);
        let mut bfs = CsrBfs::new(6);
        for s in 0..6 {
            bfs.run(&csr, s);
            assert_eq!(bfs.distances(), &bfs_distances(&g, s)[..], "source {s}");
        }
    }

    #[test]
    fn bfs_skipping_matches_stripped_graph() {
        let mut g = digraph_of(5, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (1, 4, 1)]);
        let csr = CsrGraph::from_digraph(&g);
        let mut bfs = CsrBfs::new(5);
        bfs.run_skipping(&csr, 0, 1);
        g.take_out_arcs(1);
        assert_eq!(bfs.distances(), &bfs_distances(&g, 0)[..]);
        // Node 1 is still reached (via 0's arc), just not expanded.
        assert_eq!(bfs.distances()[1], 1);
        assert!(!bfs.touched().contains(1));
        assert!(bfs.touched().contains(0));
    }

    #[test]
    fn dijkstra_matches_adjacency_list_dijkstra() {
        let g = digraph_of(5, &[(0, 1, 4), (0, 2, 1), (2, 1, 2), (1, 3, 7)]);
        let csr = CsrGraph::from_digraph(&g);
        let mut dij = CsrDijkstra::new(5);
        for s in 0..5 {
            dij.run(&csr, s);
            assert_eq!(
                dij.distances(),
                &crate::dijkstra::dijkstra_distances(&g, s)[..],
                "source {s}"
            );
        }
    }

    #[test]
    fn dijkstra_skipping_matches_stripped_graph() {
        let mut g = digraph_of(5, &[(0, 1, 2), (1, 2, 3), (2, 3, 1), (0, 3, 9)]);
        let csr = CsrGraph::from_digraph(&g);
        let mut dij = CsrDijkstra::new(5);
        dij.run_skipping(&csr, 0, 1);
        g.take_out_arcs(1);
        assert_eq!(
            dij.distances(),
            &crate::dijkstra::dijkstra_distances(&g, 0)[..]
        );
        assert!(!dij.touched().contains(1));
    }

    #[test]
    fn touched_set_covers_exactly_expanded_nodes() {
        let g = digraph_of(6, &[(0, 1, 1), (1, 2, 1), (4, 5, 1)]);
        let csr = CsrGraph::from_digraph(&g);
        let mut bfs = CsrBfs::new(6);
        bfs.run(&csr, 0);
        let touched: Vec<usize> = bfs.touched().iter().collect();
        assert_eq!(touched, vec![0, 1, 2], "only the reachable side expands");
    }

    #[test]
    fn connectivity_matches_tarjan() {
        let mut scratch = ConnectivityScratch::new();
        let ring = digraph_of(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1)]);
        assert!(scratch.is_strongly_connected(&CsrGraph::from_digraph(&ring)));
        assert!(is_strongly_connected(&ring));

        let path = digraph_of(4, &[(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert!(!scratch.is_strongly_connected(&CsrGraph::from_digraph(&path)));
        assert!(!is_strongly_connected(&path));

        // Forward-complete but backward-broken: 0 reaches all, 3 unreachable
        // in reverse.
        let fan = digraph_of(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1), (1, 0, 1), (2, 0, 1)]);
        assert!(!scratch.is_strongly_connected(&CsrGraph::from_digraph(&fan)));

        let mut single = DiGraph::new(1);
        single.add_arc(0, Arc::unit(0));
        assert!(scratch.is_strongly_connected(&CsrGraph::from_digraph(&single)));
    }

    #[test]
    fn add_node_grows_without_disturbing_existing_rows() {
        let mut g = CsrGraph::new(3);
        g.set_out_links(0, &[(1, 1), (2, 1)]);
        let id = g.add_node();
        assert_eq!(id, 3);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.out_targets(0), &[1, 2]);
        assert_eq!(g.out_degree(3), 0);
        g.set_out_links(3, &[(0, 1)]);
        g.set_out_links(0, &[(3, 1)]);
        let mut bfs = CsrBfs::new(3);
        bfs.grow(4);
        bfs.run(&g, 0);
        assert_eq!(bfs.distances(), &[0, UNREACHABLE, UNREACHABLE, 1]);
    }

    #[test]
    fn remove_node_retires_the_slab_and_keeps_ids_stable() {
        let mut g = CsrGraph::new(4);
        g.set_out_links(0, &[(1, 1)]);
        g.set_out_links(1, &[(2, 1)]);
        g.set_out_links(2, &[(3, 1)]);
        // Strip the in-arc first (the caller's obligation), then remove.
        g.set_out_links(1, &[]);
        g.remove_node(2);
        assert_eq!(g.node_count(), 4, "ids stay addressable");
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.arc_count(), 1);
        let mut bfs = CsrBfs::new(4);
        bfs.run(&g, 0);
        assert_eq!(bfs.distances()[2], UNREACHABLE);
    }

    #[test]
    #[should_panic(expected = "still links to removed node")]
    fn remove_node_with_dangling_in_arcs_panics() {
        let mut g = CsrGraph::new(3);
        g.set_out_links(0, &[(1, 1)]);
        g.remove_node(1);
    }

    #[test]
    fn canonical_rebuild_matches_a_fresh_build_byte_for_byte() {
        // Drive a messy patch history, then canonicalize: the digest must
        // equal that of a graph built fresh from the same rows in node
        // order — and stay equal across *different* histories of the same
        // final rows.
        let mut g = CsrGraph::new(5);
        for step in 0..60u32 {
            let u = (step % 5) as usize;
            let deg = (step % 3) as usize;
            let row: Vec<(u32, u64)> = (0..deg).map(|i| (((u + 1 + i) % 5) as u32, 1)).collect();
            g.set_out_links(u, &row);
        }
        let mut fresh = CsrGraph::new(5);
        let mut row: Vec<(u32, u64)> = Vec::new();
        for u in 0..5 {
            let (targets, lengths) = g.out(u);
            row.clear();
            row.extend(targets.iter().copied().zip(lengths.iter().copied()));
            fresh.set_out_links(u, &row);
        }
        assert_ne!(
            g.arena_digest(),
            fresh.arena_digest(),
            "patched layout differs before canonicalization (else the test is vacuous)"
        );
        g.rebuild_canonical();
        assert_eq!(g.arena_digest(), fresh.arena_digest());
        assert_eq!(g.arc_count(), fresh.arc_count());
    }

    #[test]
    fn masked_connectivity_judges_the_live_subgraph() {
        // 0→1→2→0 ring plus an isolated (dead) node 3.
        let mut g = CsrGraph::new(4);
        g.set_out_links(0, &[(1, 1)]);
        g.set_out_links(1, &[(2, 1)]);
        g.set_out_links(2, &[(0, 1)]);
        let mut scratch = ConnectivityScratch::new();
        assert!(!scratch.is_strongly_connected(&g), "node 3 is unreachable");
        let mut live = BitSet::new(4);
        live.extend([0usize, 1, 2]);
        assert!(scratch.is_strongly_connected_among(&g, Some(&live)));
        // Kill a ring member: the remaining pair is not mutually reachable.
        let mut g2 = g.clone();
        g2.set_out_links(2, &[]);
        g2.set_out_links(1, &[]);
        g2.remove_node(2);
        let mut live2 = BitSet::new(4);
        live2.extend([0usize, 1]);
        assert!(!scratch.is_strongly_connected_among(&g2, Some(&live2)));
        // A single live node is vacuously connected.
        let mut one = BitSet::new(4);
        one.insert(3);
        assert!(scratch.is_strongly_connected_among(&g, Some(&one)));
    }

    #[test]
    fn scratch_is_reusable_across_sizes() {
        let mut scratch = ConnectivityScratch::new();
        let small = digraph_of(3, &[(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        assert!(scratch.is_strongly_connected(&CsrGraph::from_digraph(&small)));
        let big = digraph_of(8, &[(0, 1, 1)]);
        assert!(!scratch.is_strongly_connected(&CsrGraph::from_digraph(&big)));
        assert!(scratch.is_strongly_connected(&CsrGraph::from_digraph(&small)));
    }
}

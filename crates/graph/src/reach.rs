//! Per-node reachability counts ("reach" in the paper's §4.3).
//!
//! The *reach* of a node is the number of nodes it has a path to, counting
//! itself. Lemmas 9–10 of the paper track the vector of reach values to prove
//! best-response walks hit strong connectivity within `n²` steps; the
//! dynamics engine recomputes reach after every step, so this must be fast
//! for repeated whole-graph queries.
//!
//! Strategy: condense to the SCC DAG, then propagate reachable-*sets* (as
//! [`BitSet`]s over components' node counts) in reverse topological order.
//! Sets, not counts, because reach is not additive — two successors may reach
//! overlapping regions.

use crate::{bitset::BitSet, scc::condensation, DiGraph};

/// Reach of every node: `reach[v]` = number of nodes reachable from `v`,
/// including `v` itself.
///
/// Runs in `O(n·m/64)` via bitset propagation over the condensation.
///
/// # Examples
///
/// ```
/// use bbc_graph::{reach_counts, DiGraph};
///
/// let g = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (3, 1)]);
/// assert_eq!(reach_counts(&g), vec![3, 2, 1, 3]);
/// ```
pub fn reach_counts(g: &DiGraph) -> Vec<usize> {
    let n = g.node_count();
    if n == 0 {
        return Vec::new();
    }
    let cond = condensation(g);
    let c = cond.component_count();

    // reachable[i] = set of *components* reachable from component i.
    // Tarjan order is reverse topological: every condensation arc goes from a
    // later index to an earlier one, so a single pass in index order sees all
    // successors before their predecessors.
    let mut reachable: Vec<BitSet> = (0..c)
        .map(|i| {
            let mut s = BitSet::new(c);
            s.insert(i);
            s
        })
        .collect();

    // Group condensation arcs by source for a cache-friendly sweep.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); c];
    for &(from, to) in &cond.arcs {
        out[from].push(to);
    }
    for (i, out_i) in out.iter().enumerate() {
        // Successors have smaller indices, already finalized.
        let (done, rest) = reachable.split_at_mut(i);
        let cur = &mut rest[0];
        for &succ in out_i {
            debug_assert!(succ < i, "condensation arc violates Tarjan order");
            cur.union_with(&done[succ]);
        }
    }

    let comp_size: Vec<usize> = cond.members.iter().map(Vec::len).collect();
    let comp_reach: Vec<usize> = reachable
        .iter()
        .map(|set| set.iter().map(|ci| comp_size[ci]).sum())
        .collect();

    (0..n).map(|v| comp_reach[cond.component[v]]).collect()
}

/// Reach of a single node, via one BFS. Cheaper than [`reach_counts`] when
/// only one node matters.
pub fn reach_of(g: &DiGraph, v: usize) -> usize {
    let mut buf = crate::bfs::BfsBuffer::new(g.node_count());
    buf.run(g, v);
    buf.reached()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force reach via one BFS per node.
    fn reach_brute(g: &DiGraph) -> Vec<usize> {
        (0..g.node_count()).map(|v| reach_of(g, v)).collect()
    }

    #[test]
    fn path_graph_reach_decreases_along_path() {
        let g = DiGraph::from_unit_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(reach_counts(&g), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn strongly_connected_graph_has_full_reach() {
        let g = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(reach_counts(&g), vec![4; 4]);
    }

    #[test]
    fn overlapping_successors_not_double_counted() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3: node 3 reachable two ways.
        let g = DiGraph::from_unit_edges(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(reach_counts(&g), vec![4, 2, 2, 1]);
    }

    #[test]
    fn ring_plus_tail_matches_brute_force() {
        // The paper's Ω(n²) dynamics instance shape: a ring with a path
        // feeding into it.
        let mut edges = vec![(0, 1), (1, 2), (2, 3), (3, 0)];
        edges.extend([(4, 5), (5, 6), (6, 0)]);
        let g = DiGraph::from_unit_edges(7, edges);
        assert_eq!(reach_counts(&g), reach_brute(&g));
    }

    #[test]
    fn matches_brute_force_on_dense_graph() {
        // Deterministic pseudo-random graph.
        let n = 40;
        let mut edges = Vec::new();
        let mut x: u64 = 0x9e3779b9;
        for u in 0..n {
            for _ in 0..3 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (x >> 33) as usize % n;
                if v != u {
                    edges.push((u, v));
                }
            }
        }
        let g = DiGraph::from_unit_edges(n, edges);
        assert_eq!(reach_counts(&g), reach_brute(&g));
    }

    #[test]
    fn empty_graph() {
        assert!(reach_counts(&DiGraph::new(0)).is_empty());
        assert_eq!(reach_counts(&DiGraph::new(3)), vec![1, 1, 1]);
    }
}

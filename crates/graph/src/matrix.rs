//! All-pairs distance matrix.
//!
//! Small instances (gadgets, tiny equilibrium enumeration) evaluate every
//! node's cost against every configuration; a flat row-major matrix of
//! distances is both faster and simpler to assert against than `n` separate
//! vectors.

use serde::{Deserialize, Serialize};

use crate::{bfs::BfsBuffer, dijkstra::DijkstraBuffer, DiGraph, UNREACHABLE};

/// Row-major `n × n` matrix of shortest-path distances; `self.get(u, v)` is
/// `d(u, v)`, with [`UNREACHABLE`] for disconnected pairs.
///
/// # Examples
///
/// ```
/// use bbc_graph::{DiGraph, DistanceMatrix};
///
/// let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// let m = DistanceMatrix::all_pairs(&g);
/// assert_eq!(m.get(0, 2), 2);
/// assert_eq!(m.get(2, 1), 2);
/// assert_eq!(m.row(0), &[0, 1, 2]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u64>,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths with one BFS/Dijkstra per source.
    pub fn all_pairs(g: &DiGraph) -> Self {
        let n = g.node_count();
        let mut data = vec![UNREACHABLE; n * n];
        if g.is_unit_length() {
            let mut buf = BfsBuffer::new(n);
            for u in 0..n {
                buf.run(g, u);
                data[u * n..(u + 1) * n].copy_from_slice(buf.distances());
            }
        } else {
            let mut buf = DijkstraBuffer::new(n);
            for u in 0..n {
                buf.run(g, u);
                data[u * n..(u + 1) * n].copy_from_slice(buf.distances());
            }
        }
        Self { n, data }
    }

    /// Matrix dimension (number of nodes).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Distance from `u` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of bounds.
    #[inline]
    pub fn get(&self, u: usize, v: usize) -> u64 {
        assert!(
            u < self.n && v < self.n,
            "index ({u},{v}) out of bounds for n={}",
            self.n
        );
        self.data[u * self.n + v]
    }

    /// Distances from `u` to every node.
    #[inline]
    pub fn row(&self, u: usize) -> &[u64] {
        &self.data[u * self.n..(u + 1) * self.n]
    }

    /// `true` iff every ordered pair is connected.
    pub fn all_pairs_connected(&self) -> bool {
        !self.data.contains(&UNREACHABLE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_pairs_on_a_path() {
        let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 2)]);
        let m = DistanceMatrix::all_pairs(&g);
        assert_eq!(m.row(0), &[0, 1, 2]);
        assert_eq!(m.row(1), &[UNREACHABLE, 0, 1]);
        assert_eq!(m.row(2), &[UNREACHABLE, UNREACHABLE, 0]);
        assert!(!m.all_pairs_connected());
    }

    #[test]
    fn weighted_all_pairs() {
        let g = DiGraph::from_edges(3, [(0, 1, 5), (1, 2, 5), (2, 0, 1)]);
        let m = DistanceMatrix::all_pairs(&g);
        assert_eq!(m.get(2, 1), 6);
        assert_eq!(m.get(1, 0), 6);
        assert!(m.all_pairs_connected());
    }

    #[test]
    fn diagonal_is_zero() {
        let g = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let m = DistanceMatrix::all_pairs(&g);
        for u in 0..4 {
            assert_eq!(m.get(u, u), 0);
        }
    }
}

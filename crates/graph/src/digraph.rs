//! Compact directed graph with per-arc lengths.
//!
//! [`DiGraph`] is the representation every algorithm in this crate operates
//! on: an adjacency list of `(target, length)` arcs. It tracks whether all
//! lengths are `1` so shortest-path callers can transparently pick BFS over
//! Dijkstra.

use serde::{Deserialize, Serialize};

use crate::{bfs::BfsBuffer, dijkstra::DijkstraBuffer};

/// A directed arc: destination node plus a positive length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Arc {
    /// Destination node index.
    pub to: u32,
    /// Arc length; must be at least 1.
    pub len: u64,
}

impl Arc {
    /// Creates an arc to `to` with length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`; zero-length arcs would let "shortest paths" cycle
    /// for free and are meaningless in a BBC game (§2 of the paper assumes
    /// positive lengths).
    #[inline]
    pub fn new(to: usize, len: u64) -> Self {
        assert!(len > 0, "arc length must be positive");
        Self { to: to as u32, len }
    }

    /// Creates a unit-length arc to `to`.
    #[inline]
    pub fn unit(to: usize) -> Self {
        Self {
            to: to as u32,
            len: 1,
        }
    }

    /// Destination node index as `usize`.
    #[inline]
    pub fn to(&self) -> usize {
        self.to as usize
    }
}

/// A directed graph with `n` nodes and weighted arcs, stored adjacency-list
/// style.
///
/// Nodes are indices `0..n`. The graph remembers whether every arc has length
/// exactly `1` ([`DiGraph::is_unit_length`]); [`DiGraph::distances_from`] uses
/// that to dispatch between BFS and Dijkstra.
///
/// # Examples
///
/// ```
/// use bbc_graph::{Arc, DiGraph};
///
/// let mut g = DiGraph::new(4);
/// g.add_arc(0, Arc::unit(1));
/// g.add_arc(1, Arc::new(2, 5));
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.arc_count(), 2);
/// assert!(!g.is_unit_length());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiGraph {
    adj: Vec<Vec<Arc>>,
    arc_count: usize,
    non_unit_arcs: usize,
}

impl DiGraph {
    /// Creates an empty graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            arc_count: 0,
            non_unit_arcs: 0,
        }
    }

    /// Builds a graph from an iterator of `(source, target)` unit-length
    /// edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n`.
    pub fn from_unit_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            g.add_arc(u, Arc::unit(v));
        }
        g
    }

    /// Builds a graph from an iterator of `(source, target, length)` edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= n` or any length is zero.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize, u64)>) -> Self {
        let mut g = Self::new(n);
        for (u, v, len) in edges {
            g.add_arc(u, Arc::new(v, len));
        }
        g
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.arc_count
    }

    /// `true` when every arc has length exactly 1.
    ///
    /// An empty graph is unit-length by convention.
    #[inline]
    pub fn is_unit_length(&self) -> bool {
        self.non_unit_arcs == 0
    }

    /// Adds an arc out of `from`.
    ///
    /// Parallel arcs and self-loops are allowed at this layer (shortest-path
    /// routines simply never use a self-loop); the game layer forbids them in
    /// strategies where the paper does.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `arc.to` is out of bounds.
    pub fn add_arc(&mut self, from: usize, arc: Arc) {
        assert!(from < self.adj.len(), "source {from} out of bounds");
        assert!(
            (arc.to as usize) < self.adj.len(),
            "target {} out of bounds",
            arc.to
        );
        if arc.len != 1 {
            self.non_unit_arcs += 1;
        }
        self.adj[from].push(arc);
        self.arc_count += 1;
    }

    /// Removes all arcs out of `from`, returning them.
    ///
    /// This is the primitive behind the game layer's *deviation oracle*: to
    /// evaluate node `u`'s candidate strategies we strip `u`'s out-arcs once
    /// and reuse the remaining graph for every candidate.
    pub fn take_out_arcs(&mut self, from: usize) -> Vec<Arc> {
        let arcs = std::mem::take(&mut self.adj[from]);
        self.arc_count -= arcs.len();
        self.non_unit_arcs -= arcs.iter().filter(|a| a.len != 1).count();
        arcs
    }

    /// Restores arcs previously removed with [`DiGraph::take_out_arcs`].
    pub fn put_out_arcs(&mut self, from: usize, arcs: Vec<Arc>) {
        debug_assert!(self.adj[from].is_empty(), "putting arcs over existing ones");
        self.arc_count += arcs.len();
        self.non_unit_arcs += arcs.iter().filter(|a| a.len != 1).count();
        self.adj[from] = arcs;
    }

    /// Out-arcs of `u`.
    #[inline]
    pub fn out_arcs(&self, u: usize) -> &[Arc] {
        &self.adj[u]
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Maximum out-degree over all nodes; 0 for an empty graph.
    pub fn max_out_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Iterates over all arcs as `(source, Arc)` pairs.
    pub fn iter_arcs(&self) -> impl Iterator<Item = (usize, Arc)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(u, arcs)| arcs.iter().map(move |&a| (u, a)))
    }

    /// The reverse graph (every arc flipped, lengths preserved).
    pub fn reversed(&self) -> DiGraph {
        let mut g = DiGraph::new(self.node_count());
        for (u, a) in self.iter_arcs() {
            g.add_arc(
                a.to(),
                Arc {
                    to: u as u32,
                    len: a.len,
                },
            );
        }
        g
    }

    /// Shortest-path distances from `source` to every node.
    ///
    /// Dispatches to BFS when the graph is unit-length and to Dijkstra
    /// otherwise. Unreachable nodes get [`crate::UNREACHABLE`]. Allocates
    /// fresh buffers; hot loops should hold a [`BfsBuffer`] or
    /// [`DijkstraBuffer`] instead.
    pub fn distances_from(&self, source: usize) -> Vec<u64> {
        if self.is_unit_length() {
            let mut buf = BfsBuffer::new(self.node_count());
            buf.run(self, source);
            buf.distances().to_vec()
        } else {
            let mut buf = DijkstraBuffer::new(self.node_count());
            buf.run(self, source);
            buf.distances().to_vec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UNREACHABLE;

    #[test]
    fn empty_graph_is_unit_length() {
        let g = DiGraph::new(5);
        assert!(g.is_unit_length());
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.max_out_degree(), 0);
    }

    #[test]
    fn add_and_count_arcs() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, Arc::unit(1));
        g.add_arc(0, Arc::unit(2));
        g.add_arc(1, Arc::new(2, 7));
        assert_eq!(g.arc_count(), 3);
        assert_eq!(g.out_degree(0), 2);
        assert_eq!(g.max_out_degree(), 2);
        assert!(!g.is_unit_length());
    }

    #[test]
    fn take_and_put_out_arcs_round_trips() {
        let mut g = DiGraph::from_edges(4, [(0, 1, 1), (0, 2, 3), (1, 3, 1)]);
        let before = g.clone();
        let arcs = g.take_out_arcs(0);
        assert_eq!(arcs.len(), 2);
        assert_eq!(g.arc_count(), 1);
        assert!(g.is_unit_length(), "remaining arc is unit-length");
        g.put_out_arcs(0, arcs);
        assert_eq!(g, before);
    }

    #[test]
    fn reversed_flips_arcs() {
        let g = DiGraph::from_edges(3, [(0, 1, 2), (1, 2, 5)]);
        let r = g.reversed();
        assert_eq!(r.out_arcs(1), &[Arc { to: 0, len: 2 }]);
        assert_eq!(r.out_arcs(2), &[Arc { to: 1, len: 5 }]);
        assert_eq!(r.out_degree(0), 0);
    }

    #[test]
    fn distances_dispatch_unit_and_weighted() {
        let unit = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(unit.distances_from(0), vec![0, 1, 2, 3]);

        // Weighted: direct arc 0->2 of length 10 loses to 0->1->2 of length 3.
        let w = DiGraph::from_edges(3, [(0, 2, 10), (0, 1, 1), (1, 2, 2)]);
        assert_eq!(w.distances_from(0), vec![0, 1, 3]);
    }

    #[test]
    fn unreachable_reported_with_sentinel() {
        let g = DiGraph::from_unit_edges(3, [(0, 1)]);
        assert_eq!(g.distances_from(0), vec![0, 1, UNREACHABLE]);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_arc_rejected() {
        let _ = Arc::new(1, 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_target_rejected() {
        let mut g = DiGraph::new(2);
        g.add_arc(0, Arc::unit(5));
    }
}

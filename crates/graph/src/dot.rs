//! Graphviz DOT export.
//!
//! Network-formation results are graphs people want to look at; every
//! example and experiment can dump its configurations via
//! [`to_dot`]/[`to_dot_labeled`] and render them with `dot -Tsvg`.

use std::fmt::Write as _;

use crate::DiGraph;

/// Renders the graph in DOT format with numeric node names. Unit-length
/// arcs are unlabeled; other lengths become edge labels.
///
/// # Examples
///
/// ```
/// use bbc_graph::{dot::to_dot, DiGraph};
///
/// let g = DiGraph::from_unit_edges(2, [(0, 1)]);
/// let text = to_dot(&g, "pair");
/// assert!(text.contains("digraph pair"));
/// assert!(text.contains("\"v0\" -> \"v1\""));
/// ```
pub fn to_dot(g: &DiGraph, name: &str) -> String {
    to_dot_labeled(g, name, |v| format!("v{v}"))
}

/// Renders the graph in DOT format with caller-supplied node labels.
///
/// Labels are quoted verbatim; callers are responsible for avoiding the
/// quote character in labels.
pub fn to_dot_labeled(g: &DiGraph, name: &str, label: impl Fn(usize) -> String) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
    for v in 0..g.node_count() {
        let _ = writeln!(out, "  \"{}\";", label(v));
    }
    for (u, arc) in g.iter_arcs() {
        if arc.len == 1 {
            let _ = writeln!(out, "  \"{}\" -> \"{}\";", label(u), label(arc.to()));
        } else {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                label(u),
                label(arc.to()),
                arc.len
            );
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arc;

    #[test]
    fn includes_every_node_and_arc() {
        let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 2), (2, 0)]);
        let text = to_dot(&g, "ring");
        for v in 0..3 {
            assert!(text.contains(&format!("\"v{v}\";")));
        }
        assert_eq!(text.matches(" -> ").count(), 3);
    }

    #[test]
    fn weighted_arcs_get_labels() {
        let mut g = DiGraph::new(2);
        g.add_arc(0, Arc::new(1, 7));
        let text = to_dot(&g, "w");
        assert!(text.contains("label=\"7\""));
    }

    #[test]
    fn custom_labels_are_used() {
        let g = DiGraph::from_unit_edges(2, [(0, 1)]);
        let names = ["alice", "bob"];
        let text = to_dot_labeled(&g, "people", |v| names[v].to_string());
        assert!(text.contains("\"alice\" -> \"bob\""));
    }

    #[test]
    fn empty_graph_renders() {
        let text = to_dot(&DiGraph::new(0), "empty");
        assert!(text.starts_with("digraph empty {"));
        assert!(text.ends_with("}\n"));
    }
}

//! Directed-graph substrate for Bounded Budget Connection (BBC) games.
//!
//! BBC games need a small, predictable set of graph primitives evaluated many
//! millions of times inside best-response loops: single-source shortest paths
//! (unit and weighted), strongly connected components, per-node reachability
//! counts, and eccentricity/diameter measurements. This crate implements all
//! of them from scratch on a compact adjacency representation, with scratch
//! buffers ([`bfs::BfsBuffer`], [`dijkstra::DijkstraBuffer`]) so the hot paths
//! allocate nothing.
//!
//! Distances are `u64`; an unreachable target is reported as [`UNREACHABLE`],
//! never as a silently-large number — callers (the game layer) substitute the
//! game's disconnection penalty explicitly.
//!
//! # Examples
//!
//! ```
//! use bbc_graph::DiGraph;
//!
//! // A directed triangle 0 -> 1 -> 2 -> 0 with unit lengths.
//! let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 2), (2, 0)]);
//! let d = g.distances_from(0);
//! assert_eq!(d, vec![0, 1, 2]);
//! assert!(bbc_graph::scc::is_strongly_connected(&g));
//! ```

#![forbid(unsafe_code)]

pub mod bfs;
pub mod bitset;
pub mod blocks;
pub mod csr;
pub mod diameter;
pub mod digest;
pub mod digraph;
pub mod dijkstra;
pub mod dot;
pub mod matrix;
pub mod reach;
pub mod rows;
pub mod scc;

pub use bfs::BfsBuffer;
pub use bitset::BitSet;
pub use blocks::{BlockEnvelope, BlockPartition};
pub use csr::{ConnectivityScratch, CsrBfs, CsrDijkstra, CsrGraph};
pub use diameter::{diameter, eccentricity, Eccentricities};
pub use digraph::{Arc, DiGraph};
pub use dijkstra::DijkstraBuffer;
pub use matrix::DistanceMatrix;
pub use reach::reach_counts;
pub use rows::{ClampedBfs, ClampedDijkstra, RowWord};
pub use scc::{condensation, is_strongly_connected, strongly_connected_components, Condensation};

/// Sentinel distance for "no path exists".
///
/// Every shortest-path routine in this crate reports unreachable targets with
/// this value. Game-layer code replaces it with the instance's disconnection
/// penalty; it is deliberately `u64::MAX` so that accidental arithmetic on it
/// overflows loudly in debug builds instead of silently producing a
/// plausible-looking cost.
pub const UNREACHABLE: u64 = u64::MAX;

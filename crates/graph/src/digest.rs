//! A tiny shared FNV-1a digest for determinism contracts.
//!
//! Several layers pin "byte-identical state" claims with a rolling 64-bit
//! digest — the CSR arena layout, the engine's membership + strategy state,
//! churn trajectories. They must all fold with the *same* constants, or a
//! drifted copy would silently break one digest's cross-run comparability
//! while the others stay fine; this is the one implementation.

/// Incremental FNV-1a over little-endian `u64` words.
///
/// # Examples
///
/// ```
/// use bbc_graph::digest::Fnv1a;
///
/// let mut a = Fnv1a::new();
/// a.write_u64(7);
/// a.write_u64(9);
/// let mut b = Fnv1a::new();
/// b.write_u64(7);
/// assert_ne!(a.finish(), b.finish(), "prefixes digest differently");
/// b.write_u64(9);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a digest at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Folds one word (as 8 little-endian bytes) into the digest.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

//! Block-pair distance envelopes: coarse admissible lower bounds.
//!
//! ALT-style landmark pruning bounds `d(c, v)` per *pair* with
//! `(r_l[v] − r_l[c])⁺` over a handful of landmark rows `r_l = d(l, ·)`.
//! When the consumer only needs a bound over a *set* of sources at once
//! (e.g. "every remaining candidate in this id range"), those per-pair
//! bounds can be pre-coarsened: partition the node ids into `⌈√n⌉`-sized
//! consecutive blocks and store, per ordered block pair `(A, B)`,
//!
//! ```text
//! env[A][B] = max_l ( min_{v ∈ B} r_l[v] − max_{c ∈ A} r_l[c] )⁺
//! ```
//!
//! which lower-bounds `d(c, v)` for **every** `c ∈ A, v ∈ B`: for any
//! landmark, `r_l[v] − r_l[c] ≥ min_B r_l − max_A r_l`, and the per-pair
//! triangle-inequality bound is admissible even on clamped rows (a clamped
//! entry only lowers the difference). The envelope is `O(blocks²)` words —
//! one cache line's worth of work to rebuild per landmark row — and a
//! single array read to query, so it can run *before* the per-landmark
//! bound as the cheapest filter in a bound cascade.
//!
//! Rows are penalty-clamped at the engine's row width ([`RowWord`]), so the
//! envelope is too; an all-clamp row (dead landmark) contributes bound 0
//! everywhere and stays admissible.

use crate::rows::RowWord;

/// A partition of node ids `0..n` into consecutive blocks of `⌈√n⌉` ids
/// (the last block may be shorter). Block ids are dense: `0..block_count`.
#[derive(Clone, Debug, Default)]
pub struct BlockPartition {
    n: usize,
    size: usize,
    count: usize,
}

impl BlockPartition {
    /// Partition for `n` nodes. `n = 0` yields zero blocks.
    pub fn new(n: usize) -> Self {
        if n == 0 {
            return Self::default();
        }
        let size = isqrt_ceil(n).max(1);
        Self {
            n,
            size,
            count: n.div_ceil(size),
        }
    }

    /// Number of nodes partitioned.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of blocks.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.count
    }

    /// Block holding node id `v`.
    #[inline]
    pub fn block_of(&self, v: usize) -> usize {
        debug_assert!(v < self.n);
        v / self.size
    }

    /// Node-id range of block `b`.
    #[inline]
    pub fn range(&self, b: usize) -> std::ops::Range<usize> {
        debug_assert!(b < self.count);
        b * self.size..((b + 1) * self.size).min(self.n)
    }
}

/// Smallest `s` with `s·s ≥ n`.
fn isqrt_ceil(n: usize) -> usize {
    let mut s = (n as f64).sqrt() as usize;
    while s * s < n {
        s += 1;
    }
    while s > 1 && (s - 1) * (s - 1) >= n {
        s -= 1;
    }
    s
}

/// Per-block-pair min/max distance envelope over a set of clamped landmark
/// rows (see the module docs for the bound it stores). Rebuild it whenever
/// any contributing row changes; query with [`BlockEnvelope::bound`].
#[derive(Clone, Debug)]
pub struct BlockEnvelope<W> {
    blocks: usize,
    /// `env[a * blocks + b]`, row-major by source block.
    env: Vec<W>,
    min_scratch: Vec<W>,
    max_scratch: Vec<W>,
}

impl<W: RowWord> Default for BlockEnvelope<W> {
    fn default() -> Self {
        Self {
            blocks: 0,
            env: Vec::new(),
            min_scratch: Vec::new(),
            max_scratch: Vec::new(),
        }
    }
}

impl<W: RowWord> BlockEnvelope<W> {
    /// An empty envelope (every bound is 0 until the first rebuild).
    pub fn new() -> Self {
        Self::default()
    }

    /// Recomputes the envelope from scratch over `rows` (each a clamped
    /// distance row of length `part.node_count()`, entries `≤ clamp`).
    /// Zero rows yield the all-zero (vacuous but admissible) envelope.
    pub fn rebuild<'r, I>(&mut self, part: &BlockPartition, rows: I, clamp: W)
    where
        I: IntoIterator<Item = &'r [W]>,
        W: 'r,
    {
        let blocks = part.block_count();
        self.blocks = blocks;
        self.env.clear();
        self.env.resize(blocks * blocks, W::ZERO);
        for row in rows {
            debug_assert_eq!(row.len(), part.node_count());
            self.min_scratch.clear();
            self.min_scratch.resize(blocks, clamp);
            self.max_scratch.clear();
            self.max_scratch.resize(blocks, W::ZERO);
            for (v, &d) in row.iter().enumerate() {
                let b = part.block_of(v);
                self.min_scratch[b] = self.min_scratch[b].min(d);
                self.max_scratch[b] = self.max_scratch[b].max(d);
            }
            for a in 0..blocks {
                let from = self.max_scratch[a];
                let dst = &mut self.env[a * blocks..(a + 1) * blocks];
                for (e, &to) in dst.iter_mut().zip(&self.min_scratch) {
                    // (to − from)⁺, branchless; `to ≤ clamp` keeps it capped.
                    *e = (*e).max(to.max(from) - from);
                }
            }
        }
    }

    /// Number of blocks the envelope was last rebuilt for.
    #[inline]
    pub fn block_count(&self) -> usize {
        self.blocks
    }

    /// Lower bound on `d(c, v)` for every `c` in block `a` and `v` in block
    /// `b`, valid for the rows of the last rebuild.
    #[inline]
    pub fn bound(&self, a: usize, b: usize) -> W {
        self.env[a * self.blocks + b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_covers_every_node_consecutively() {
        for n in [1usize, 2, 3, 4, 10, 16, 17, 100, 101] {
            let part = BlockPartition::new(n);
            assert!(part.block_count() >= 1);
            let mut seen = 0usize;
            for b in 0..part.block_count() {
                let r = part.range(b);
                assert_eq!(r.start, seen, "n={n} block {b}");
                assert!(!r.is_empty(), "n={n} block {b} empty");
                for v in r.clone() {
                    assert_eq!(part.block_of(v), b);
                }
                seen = r.end;
            }
            assert_eq!(seen, n);
            // √n-sized blocks: count and size both within a constant of √n.
            assert!(part.block_count() * part.block_count() >= n / 4);
        }
    }

    #[test]
    fn zero_nodes_partition_is_empty() {
        let part = BlockPartition::new(0);
        assert_eq!(part.block_count(), 0);
        assert_eq!(part.node_count(), 0);
    }

    /// Deterministic pseudo-random rows; xorshift keeps the test dep-free.
    fn rows(n: usize, count: usize, clamp: u64, seed: u64) -> Vec<Vec<u64>> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        state % (clamp + 1)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn envelope_never_exceeds_any_pairwise_landmark_bound() {
        let n = 23;
        let clamp = 50u64;
        for seed in 1..6 {
            let rs = rows(n, 4, clamp, seed);
            let part = BlockPartition::new(n);
            let mut env = BlockEnvelope::new();
            env.rebuild(&part, rs.iter().map(Vec::as_slice), clamp);
            for c in 0..n {
                for v in 0..n {
                    let pairwise = rs.iter().map(|r| r[v].saturating_sub(r[c])).max().unwrap();
                    let coarse = env.bound(part.block_of(c), part.block_of(v));
                    assert!(
                        coarse <= pairwise,
                        "seed {seed}: env[{c},{v}] = {coarse} > pairwise {pairwise}"
                    );
                }
            }
        }
    }

    #[test]
    fn envelope_is_tight_for_singleton_blocks() {
        // n = 4 → block size 2; craft a row where one block pair separates.
        let part = BlockPartition::new(4);
        let row: Vec<u64> = vec![0, 1, 9, 9];
        let mut env = BlockEnvelope::new();
        env.rebuild(&part, std::iter::once(row.as_slice()), 100);
        // max over block 0 is 1, min over block 1 is 9 → bound 8.
        assert_eq!(env.bound(0, 1), 8);
        assert_eq!(env.bound(1, 0), 0);
        assert_eq!(env.bound(0, 0), 0);
    }

    #[test]
    fn empty_rebuild_is_vacuous() {
        let part = BlockPartition::new(9);
        let mut env = BlockEnvelope::<u32>::new();
        env.rebuild(&part, std::iter::empty(), 100);
        assert_eq!(env.block_count(), part.block_count());
        for a in 0..part.block_count() {
            for b in 0..part.block_count() {
                assert_eq!(env.bound(a, b), 0);
            }
        }
    }
}

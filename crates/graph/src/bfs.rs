//! Breadth-first shortest paths for unit-length graphs.
//!
//! The BBC best-response oracle runs one BFS per candidate link target, so a
//! single stability check over an `n`-node uniform game performs `Θ(n²)` BFS
//! traversals. [`BfsBuffer`] keeps the queue and distance array alive across
//! runs so each traversal is allocation-free.

use crate::{DiGraph, UNREACHABLE};

/// Reusable BFS state: distance array plus an intrusive queue.
///
/// # Examples
///
/// ```
/// use bbc_graph::{BfsBuffer, DiGraph};
///
/// let g = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (0, 3)]);
/// let mut bfs = BfsBuffer::new(g.node_count());
/// bfs.run(&g, 0);
/// assert_eq!(bfs.distances(), &[0, 1, 2, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct BfsBuffer {
    dist: Vec<u64>,
    queue: Vec<u32>,
}

impl BfsBuffer {
    /// Creates a buffer sized for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHABLE; n],
            queue: Vec::with_capacity(n),
        }
    }

    /// Runs BFS from `source`, overwriting the internal distance array.
    ///
    /// Arc lengths are ignored: every arc counts as one hop. Use
    /// [`crate::DijkstraBuffer`] for weighted graphs.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or the buffer was sized for a
    /// different node count.
    pub fn run(&mut self, g: &DiGraph, source: usize) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        assert!(source < self.dist.len(), "source {source} out of bounds");
        self.dist.fill(UNREACHABLE);
        self.queue.clear();
        self.dist[source] = 0;
        self.queue.push(source as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let du = self.dist[u];
            for a in g.out_arcs(u) {
                let v = a.to();
                if self.dist[v] == UNREACHABLE {
                    self.dist[v] = du + 1;
                    self.queue.push(a.to);
                }
            }
        }
    }

    /// Runs BFS from `source` but pretends `source` has the given out-arcs
    /// targets instead of its real ones (all at one hop).
    ///
    /// This is the hot path of uniform-game strategy evaluation: "what would
    /// my distances be if my links went to `targets`?" without mutating the
    /// graph. `g` must already have `source`'s real out-arcs removed (see
    /// [`DiGraph::take_out_arcs`]) or the result mixes old and new links.
    pub fn run_with_virtual_links(&mut self, g: &DiGraph, source: usize, targets: &[usize]) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        debug_assert_eq!(
            g.out_degree(source),
            0,
            "caller must strip source's real arcs"
        );
        self.dist.fill(UNREACHABLE);
        self.queue.clear();
        self.dist[source] = 0;
        for &t in targets {
            if t != source && self.dist[t] == UNREACHABLE {
                self.dist[t] = 1;
                self.queue.push(t as u32);
            }
        }
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let du = self.dist[u];
            for a in g.out_arcs(u) {
                let v = a.to();
                if self.dist[v] == UNREACHABLE {
                    self.dist[v] = du + 1;
                    self.queue.push(a.to);
                }
            }
        }
    }

    /// Distances produced by the last [`BfsBuffer::run`].
    ///
    /// Unreached nodes hold [`UNREACHABLE`].
    #[inline]
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }

    /// Number of nodes reached by the last run (including the source).
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// One-shot BFS convenience wrapper.
///
/// Allocates a fresh buffer; prefer holding a [`BfsBuffer`] in loops.
pub fn bfs_distances(g: &DiGraph, source: usize) -> Vec<u64> {
    let mut buf = BfsBuffer::new(g.node_count());
    buf.run(g, source);
    buf.dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::Arc;

    #[test]
    fn line_graph_distances() {
        let g = DiGraph::from_unit_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(
            bfs_distances(&g, 4),
            vec![UNREACHABLE; 4]
                .into_iter()
                .chain([0])
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn parallel_arcs_and_self_loops_are_harmless() {
        let mut g = DiGraph::new(3);
        g.add_arc(0, Arc::unit(1));
        g.add_arc(0, Arc::unit(1));
        g.add_arc(0, Arc::unit(0));
        g.add_arc(1, Arc::unit(2));
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn buffer_reuse_resets_state() {
        let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 2)]);
        let mut buf = BfsBuffer::new(3);
        buf.run(&g, 0);
        assert_eq!(buf.reached(), 3);
        buf.run(&g, 2);
        assert_eq!(buf.distances(), &[UNREACHABLE, UNREACHABLE, 0]);
        assert_eq!(buf.reached(), 1);
    }

    #[test]
    fn virtual_links_match_real_links() {
        // Graph where node 0's links are virtual: 0 -> {2, 3}.
        let mut g = DiGraph::from_unit_edges(5, [(2, 1), (3, 4), (1, 0)]);
        let mut virt = BfsBuffer::new(5);
        virt.run_with_virtual_links(&g, 0, &[2, 3]);

        g.add_arc(0, Arc::unit(2));
        g.add_arc(0, Arc::unit(3));
        let real = bfs_distances(&g, 0);
        assert_eq!(virt.distances(), &real[..]);
    }

    #[test]
    fn virtual_links_ignore_self_target() {
        let g = DiGraph::new(3);
        let mut buf = BfsBuffer::new(3);
        buf.run_with_virtual_links(&g, 0, &[0, 1]);
        assert_eq!(buf.distances(), &[0, 1, UNREACHABLE]);
    }

    #[test]
    #[should_panic(expected = "different graph")]
    fn wrong_size_buffer_panics() {
        let g = DiGraph::new(3);
        let mut buf = BfsBuffer::new(4);
        buf.run(&g, 0);
    }
}

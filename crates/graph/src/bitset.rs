//! A plain fixed-capacity bitset.
//!
//! Used by [`crate::reach`] to propagate reachable-sets through the
//! condensation DAG in words rather than node-at-a-time, and by the game
//! layer to fingerprint strategy sets.

use serde::{Deserialize, Serialize};

/// Fixed-capacity set of `usize` values below a bound given at construction.
///
/// # Examples
///
/// ```
/// use bbc_graph::BitSet;
///
/// let mut s = BitSet::new(70);
/// s.insert(3);
/// s.insert(69);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 69]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set that can hold values in `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        Self {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Builds a set of fixed capacity `n` from an index iterator — the
    /// membership-snapshot hook: a service restoring a game of `n` slots
    /// from a persisted live-id list needs the capacity pinned to the game
    /// size, not to the maximum surviving id (which
    /// [`BitSet::from_iter`] would use).
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= n`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(n: usize, indices: I) -> Self {
        let mut s = Self::new(n);
        for v in indices {
            s.insert(v);
        }
        s
    }

    /// Upper bound (exclusive) on storable values.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Grows the capacity to at least `new_capacity`, preserving every
    /// element (a no-op when the set is already that large). This is the
    /// node-lifecycle hook: scratch pools sized for `n` nodes widen in place
    /// when a graph gains nodes instead of being rebuilt.
    pub fn grow(&mut self, new_capacity: usize) {
        if new_capacity > self.capacity {
            self.capacity = new_capacity;
            self.words.resize(new_capacity.div_ceil(64), 0);
        }
    }

    /// Inserts `v`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `v >= capacity`.
    #[inline]
    pub fn insert(&mut self, v: usize) -> bool {
        assert!(
            v < self.capacity,
            "value {v} exceeds bitset capacity {}",
            self.capacity
        );
        let (w, b) = (v / 64, v % 64);
        let fresh = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        fresh
    }

    /// Removes `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: usize) -> bool {
        if v >= self.capacity {
            return false;
        }
        let (w, b) = (v / 64, v % 64);
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        present
    }

    /// `true` if `v` is in the set.
    #[inline]
    pub fn contains(&self, v: usize) -> bool {
        v < self.capacity && self.words[v / 64] & (1 << (v % 64)) != 0
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `true` if no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Overwrites `self` with `other`'s contents without reallocating.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn copy_from(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// In-place union; returns `true` if `self` changed.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let merged = *a | b;
            changed |= merged != *a;
            *a = merged;
        }
        changed
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| BitIter { word: w }.map(move |b| wi * 64 + b))
    }
}

impl FromIterator<usize> for BitSet {
    /// Collects values into a set sized to the maximum value seen.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let values: Vec<usize> = iter.into_iter().collect();
        let cap = values.iter().max().map_or(0, |m| m + 1);
        let mut s = BitSet::new(cap);
        for v in values {
            s.insert(v);
        }
        s
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

struct BitIter {
    word: u64,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let b = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(63), "double insert reports false");
        assert_eq!(s.len(), 4);
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_yields_sorted_elements() {
        let mut s = BitSet::new(200);
        for v in [150, 3, 64, 127, 128] {
            s.insert(v);
        }
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 64, 127, 128, 150]);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::new(70);
        a.insert(1);
        let mut b = BitSet::new(70);
        b.insert(1);
        assert!(!a.union_with(&b), "union with subset is a no-op");
        b.insert(69);
        assert!(a.union_with(&b));
        assert!(a.contains(69));
    }

    #[test]
    fn from_iterator_sizes_to_max() {
        let s: BitSet = [5usize, 2, 9].into_iter().collect();
        assert_eq!(s.capacity(), 10);
        assert_eq!(s.len(), 3);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn from_indices_pins_capacity_to_the_bound() {
        let s = BitSet::from_indices(16, [0usize, 3, 7]);
        assert_eq!(s.capacity(), 16, "capacity is the bound, not max+1");
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3, 7]);
        let empty = BitSet::from_indices(8, std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds bitset capacity")]
    fn from_indices_rejects_out_of_bound() {
        BitSet::from_indices(4, [4usize]);
    }

    #[test]
    fn clear_empties_the_set() {
        let mut s = BitSet::new(10);
        s.extend([1, 2, 3]);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds bitset capacity")]
    fn insert_beyond_capacity_panics() {
        BitSet::new(4).insert(4);
    }
}

//! Width-tiered, penalty-clamped distance-row buffers.
//!
//! The game layer's deviation oracle aggregates *clamped through-rows*:
//! `row[v] = ℓ + d(c, v)` for reachable `v`, and the disconnection penalty
//! `M` otherwise — always strictly below `M` for finite entries because the
//! spec enforces `M > n·max ℓ`. Whenever `n·M` fits in 32 bits every row
//! entry (and every plain row sum) does too, so the rows can be stored and
//! streamed at half the memory bandwidth. [`ClampedBfs`] and
//! [`ClampedDijkstra`] are the traversal kernels for that tier: generic over
//! the row word ([`RowWord`], `u32` or `u64`), pooled and growable like
//! [`crate::csr::CsrBfs`], and clamped *at fill time* — the buffer is
//! initialised to the clamp value, the source is seeded at `offset` (the
//! link length ℓ), and unreached entries simply keep the clamp. The caller
//! gets a finished through-row with no sentinel-substitution pass.
//!
//! Values are identical to running the `u64` traversal and clamping
//! afterwards: seeding at `offset` shifts every finite distance by the same
//! constant, which preserves BFS layer order and Dijkstra's heap order
//! (ties break by node id either way), so the `touched` sets match too.
//! The cross-width differential suite in `bbc-core` pins this.

use crate::{bitset::BitSet, csr::CsrGraph};

/// Integer width of a distance-row buffer.
///
/// Implemented for `u32` (the narrow tier: valid whenever `n·M ≤ u32::MAX`)
/// and `u64` (always valid). The trait carries just enough arithmetic for
/// the traversal kernels and the row-aggregation loops; everything wider
/// than a single row entry (weighted terms, running totals that may exceed
/// the clamp) goes through [`RowWord::widen`] into `u64`. `Sub` is only ever
/// used in the non-wrapping pattern `max(a, b) - b` (a branchless positive
/// difference), so unsigned words need no saturating variant.
pub trait RowWord:
    Copy
    + Ord
    + Eq
    + Send
    + Sync
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// One hop (the BFS arc length).
    const ONE: Self;
    /// Narrowing conversion; `None` when `v` does not fit the word.
    fn from_u64(v: u64) -> Option<Self>;
    /// Widening conversion (lossless).
    fn widen(self) -> u64;
}

impl RowWord for u32 {
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn from_u64(v: u64) -> Option<Self> {
        u32::try_from(v).ok()
    }

    #[inline(always)]
    fn widen(self) -> u64 {
        u64::from(self)
    }
}

impl RowWord for u64 {
    const ZERO: Self = 0;
    const ONE: Self = 1;

    #[inline(always)]
    fn from_u64(v: u64) -> Option<Self> {
        Some(v)
    }

    #[inline(always)]
    fn widen(self) -> u64 {
        self
    }
}

/// Pooled BFS over [`CsrGraph`]s producing a clamped through-row directly.
///
/// Mirrors [`crate::csr::CsrBfs`] (skip-node traversal, touched set, grow)
/// but fills `dist` with `clamp` up front, seeds the source at `offset`,
/// and treats `dist[v] == clamp` as "unvisited". The caller must guarantee
/// `offset + d < clamp` for every reachable node (the game spec's penalty
/// rule `M > n·max ℓ` does exactly that); the kernel checks it with debug
/// assertions and skips any write that would reach the clamp, so a violated
/// precondition degrades to a too-coarse row instead of wrapping.
///
/// # Examples
///
/// ```
/// use bbc_graph::csr::CsrGraph;
/// use bbc_graph::rows::ClampedBfs;
///
/// let mut g = CsrGraph::new(4);
/// g.set_out_links(0, &[(1, 1)]);
/// g.set_out_links(1, &[(2, 1)]);
/// let mut bfs = ClampedBfs::<u32>::new(4);
/// bfs.run(&g, 0, 5, 100); // offset 5, clamp 100
/// assert_eq!(bfs.distances(), &[5, 6, 7, 100]);
/// ```
#[derive(Clone, Debug)]
pub struct ClampedBfs<W> {
    dist: Vec<W>,
    queue: Vec<u32>,
    touched: BitSet,
}

impl<W: RowWord> ClampedBfs<W> {
    /// Creates a buffer sized for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![W::ZERO; n],
            queue: Vec::with_capacity(n),
            touched: BitSet::new(n),
        }
    }

    /// Grows the buffer to serve graphs of at least `n` nodes (no-op when
    /// already that large); distances from earlier runs are discarded.
    pub fn grow(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, W::ZERO);
            self.touched.grow(n);
        }
    }

    /// Runs BFS from `source`, seeding the source at `offset`; unreached
    /// nodes hold `clamp`.
    pub fn run(&mut self, g: &CsrGraph, source: usize, offset: W, clamp: W) {
        self.run_impl(g, source, usize::MAX, offset, clamp);
    }

    /// Runs BFS from `source` in `G∖skip` (see
    /// [`crate::csr::CsrBfs::run_skipping`]), seeded at `offset`.
    pub fn run_skipping(&mut self, g: &CsrGraph, source: usize, skip: usize, offset: W, clamp: W) {
        self.run_impl(g, source, skip, offset, clamp);
    }

    fn run_impl(&mut self, g: &CsrGraph, source: usize, skip: usize, offset: W, clamp: W) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        assert!(source < self.dist.len(), "source {source} out of bounds");
        debug_assert!(offset < clamp, "offset at or above the clamp");
        self.dist.fill(clamp);
        self.touched.clear();
        self.queue.clear();
        self.dist[source] = offset;
        // bbc-lint: allow(narrowing-cast, source < n <= u32::MAX per the CSR constructor assert)
        self.queue.push(source as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            if u == skip {
                continue;
            }
            self.touched.insert(u);
            let nd = self.dist[u] + W::ONE;
            debug_assert!(nd < clamp, "finite distance saturated the clamp");
            if nd >= clamp {
                continue;
            }
            for &t in g.out_targets(u) {
                let v = t as usize;
                if self.dist[v] == clamp {
                    self.dist[v] = nd;
                    self.queue.push(t);
                }
            }
        }
    }

    /// The clamped through-row from the last run.
    #[inline]
    pub fn distances(&self) -> &[W] {
        &self.dist
    }

    /// Nodes whose out-arcs the last run expanded.
    #[inline]
    pub fn touched(&self) -> &BitSet {
        &self.touched
    }
}

/// Pooled Dijkstra over [`CsrGraph`]s with the same clamp-at-fill contract
/// and skip-node/touched semantics as [`ClampedBfs`].
#[derive(Clone, Debug)]
pub struct ClampedDijkstra<W> {
    dist: Vec<W>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(W, u32)>>,
    touched: BitSet,
}

impl<W: RowWord> ClampedDijkstra<W> {
    /// Creates a buffer sized for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![W::ZERO; n],
            heap: std::collections::BinaryHeap::with_capacity(n),
            touched: BitSet::new(n),
        }
    }

    /// Grows the buffer to serve graphs of at least `n` nodes (no-op when
    /// already that large); distances from earlier runs are discarded.
    pub fn grow(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, W::ZERO);
            self.touched.grow(n);
        }
    }

    /// Runs Dijkstra from `source`, seeded at `offset`; unreached nodes
    /// hold `clamp`.
    pub fn run(&mut self, g: &CsrGraph, source: usize, offset: W, clamp: W) {
        self.run_impl(g, source, usize::MAX, offset, clamp);
    }

    /// Runs Dijkstra from `source` in `G∖skip`, seeded at `offset`.
    pub fn run_skipping(&mut self, g: &CsrGraph, source: usize, skip: usize, offset: W, clamp: W) {
        self.run_impl(g, source, skip, offset, clamp);
    }

    fn run_impl(&mut self, g: &CsrGraph, source: usize, skip: usize, offset: W, clamp: W) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        assert!(source < self.dist.len(), "source {source} out of bounds");
        debug_assert!(offset < clamp, "offset at or above the clamp");
        self.dist.fill(clamp);
        self.touched.clear();
        self.heap.clear();
        self.dist[source] = offset;
        // bbc-lint: allow(narrowing-cast, source < n <= u32::MAX per the CSR constructor assert)
        self.heap.push(std::cmp::Reverse((offset, source as u32)));
        while let Some(std::cmp::Reverse((d, u))) = self.heap.pop() {
            let u = u as usize;
            if d > self.dist[u] || u == skip {
                continue;
            }
            self.touched.insert(u);
            let (targets, lengths) = g.out(u);
            for (&t, &len) in targets.iter().zip(lengths) {
                let v = t as usize;
                // Relax in u64 so an arc longer than the clamp cannot wrap
                // the narrow word; the write only happens below the current
                // entry (≤ clamp), where the narrow conversion is exact.
                let nd = d.widen() + len;
                if nd < self.dist[v].widen() {
                    debug_assert!(nd < clamp.widen(), "finite distance saturated the clamp");
                    // bbc-lint: allow(panic, nd < dist[v] <= clamp, and the tier guarantees clamp fits W)
                    let nd = W::from_u64(nd).expect("relaxed distance below the clamp");
                    self.dist[v] = nd;
                    self.heap.push(std::cmp::Reverse((nd, t)));
                }
            }
        }
    }

    /// The clamped through-row from the last run.
    #[inline]
    pub fn distances(&self) -> &[W] {
        &self.dist
    }

    /// Nodes whose out-arcs the last run expanded.
    #[inline]
    pub fn touched(&self) -> &BitSet {
        &self.touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::{CsrBfs, CsrDijkstra};
    use crate::UNREACHABLE;

    /// A small deterministic pseudo-random graph on `n` nodes.
    fn scrambled_graph(n: usize, arcs_per_node: usize, weighted: bool, seed: u64) -> CsrGraph {
        let mut g = CsrGraph::new(n);
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut row: Vec<(u32, u64)> = Vec::new();
        for u in 0..n {
            row.clear();
            for _ in 0..arcs_per_node {
                let t = (next() % n as u64) as u32;
                if t as usize == u || row.iter().any(|&(x, _)| x == t) {
                    continue;
                }
                let len = if weighted { 1 + next() % 5 } else { 1 };
                row.push((t, len));
            }
            g.set_out_links(u, &row);
        }
        g
    }

    /// `clamp(offset + d)` of a raw `u64` distance row.
    fn clamp_row(dist: &[u64], offset: u64, clamp: u64) -> Vec<u64> {
        dist.iter()
            .map(|&d| if d == UNREACHABLE { clamp } else { offset + d })
            .collect()
    }

    #[test]
    fn clamped_bfs_matches_raw_bfs_both_widths() {
        for seed in 0..20 {
            let n = 3 + (seed as usize % 13);
            let g = scrambled_graph(n, 2, false, seed);
            let clamp = (n as u64) * 3 + 10;
            let offset = 1 + seed % 3;
            let mut raw = CsrBfs::new(n);
            let mut narrow = ClampedBfs::<u32>::new(n);
            let mut wide = ClampedBfs::<u64>::new(n);
            for source in 0..n {
                for skip in [usize::MAX, seed as usize % n] {
                    raw.run_skipping(&g, source, skip);
                    narrow.run_skipping(&g, source, skip, offset as u32, clamp as u32);
                    wide.run_skipping(&g, source, skip, offset, clamp);
                    let want = clamp_row(raw.distances(), offset, clamp);
                    let got32: Vec<u64> = narrow.distances().iter().map(|&d| d.widen()).collect();
                    assert_eq!(got32, want, "u32 seed {seed} source {source}");
                    assert_eq!(
                        wide.distances(),
                        &want[..],
                        "u64 seed {seed} source {source}"
                    );
                    assert_eq!(narrow.touched(), raw.touched(), "touched seed {seed}");
                    assert_eq!(wide.touched(), raw.touched(), "touched seed {seed}");
                }
            }
        }
    }

    #[test]
    fn clamped_dijkstra_matches_raw_dijkstra_both_widths() {
        for seed in 0..20 {
            let n = 3 + (seed as usize % 11);
            let g = scrambled_graph(n, 3, true, seed);
            let clamp = (n as u64) * 6 + 10;
            let offset = 2 + seed % 4;
            let mut raw = CsrDijkstra::new(n);
            let mut narrow = ClampedDijkstra::<u32>::new(n);
            let mut wide = ClampedDijkstra::<u64>::new(n);
            for source in 0..n {
                for skip in [usize::MAX, seed as usize % n] {
                    raw.run_skipping(&g, source, skip);
                    narrow.run_skipping(&g, source, skip, offset as u32, clamp as u32);
                    wide.run_skipping(&g, source, skip, offset, clamp);
                    let want = clamp_row(raw.distances(), offset, clamp);
                    let got32: Vec<u64> = narrow.distances().iter().map(|&d| d.widen()).collect();
                    assert_eq!(got32, want, "u32 seed {seed} source {source}");
                    assert_eq!(
                        wide.distances(),
                        &want[..],
                        "u64 seed {seed} source {source}"
                    );
                    assert_eq!(narrow.touched(), raw.touched(), "touched seed {seed}");
                    assert_eq!(wide.touched(), raw.touched(), "touched seed {seed}");
                }
            }
        }
    }

    #[test]
    fn grow_preserves_reuse_across_sizes() {
        let small = scrambled_graph(4, 2, false, 7);
        let big = scrambled_graph(9, 2, false, 8);
        let mut bfs = ClampedBfs::<u32>::new(4);
        bfs.run(&small, 0, 1, 50);
        bfs.grow(9);
        bfs.run(&big, 3, 1, 50);
        let mut fresh = ClampedBfs::<u32>::new(9);
        fresh.run(&big, 3, 1, 50);
        assert_eq!(bfs.distances(), fresh.distances());
        assert_eq!(bfs.touched(), fresh.touched());
    }

    #[test]
    fn dijkstra_arc_longer_than_clamp_does_not_wrap() {
        // One arc of length far beyond the u32 clamp: the relaxation happens
        // in u64 and is discarded, leaving the target at the clamp.
        let mut g = CsrGraph::new(3);
        g.set_out_links(0, &[(1, 1), (2, u64::from(u32::MAX) + 5)]);
        let mut dij = ClampedDijkstra::<u32>::new(3);
        dij.run(&g, 0, 0, 100);
        assert_eq!(dij.distances(), &[0, 1, 100]);
    }
}

//! Strongly connected components (Tarjan) and condensation DAGs.
//!
//! The convergence analysis of best-response walks (§4.3, Lemmas 9–10) argues
//! about sink components of the condensation: a node in a sink SCC can always
//! splice an out-of-component arc and grow its reach. This module provides
//! Tarjan's algorithm (iterative — configurations can be deep paths, so no
//! recursion) plus the component DAG.

use crate::DiGraph;

/// The strongly connected components of a graph, in reverse topological
/// order of the condensation (Tarjan's output order: every arc between
/// distinct components goes from a *later* component in this list to an
/// *earlier* one).
///
/// Returned by [`strongly_connected_components`].
pub fn strongly_connected_components(g: &DiGraph) -> Vec<Vec<usize>> {
    TarjanState::new(g.node_count()).run(g)
}

/// `true` iff `g` is strongly connected (has exactly one SCC).
///
/// An empty graph is vacuously strongly connected; a single node always is.
///
/// # Examples
///
/// ```
/// use bbc_graph::{scc::is_strongly_connected, DiGraph};
///
/// let ring = DiGraph::from_unit_edges(3, [(0, 1), (1, 2), (2, 0)]);
/// assert!(is_strongly_connected(&ring));
/// let path = DiGraph::from_unit_edges(3, [(0, 1), (1, 2)]);
/// assert!(!is_strongly_connected(&path));
/// ```
pub fn is_strongly_connected(g: &DiGraph) -> bool {
    if g.node_count() <= 1 {
        return true;
    }
    strongly_connected_components(g).len() == 1
}

/// The condensation of a graph: one vertex per SCC, one arc per pair of
/// adjacent components (deduplicated), plus the membership map.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `component[v]` is the index of `v`'s SCC in [`Condensation::members`].
    pub component: Vec<usize>,
    /// Nodes of each component, in Tarjan (reverse-topological) order.
    pub members: Vec<Vec<usize>>,
    /// Deduplicated arcs between distinct components, as `(from, to)` pairs
    /// of component indices.
    pub arcs: Vec<(usize, usize)>,
}

impl Condensation {
    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// Component indices with no outgoing condensation arc ("sink"
    /// components). Every graph has at least one unless it has no nodes.
    pub fn sink_components(&self) -> Vec<usize> {
        let mut has_out = vec![false; self.members.len()];
        for &(from, _) in &self.arcs {
            has_out[from] = true;
        }
        (0..self.members.len()).filter(|&c| !has_out[c]).collect()
    }
}

/// Computes the condensation DAG of `g`.
pub fn condensation(g: &DiGraph) -> Condensation {
    let members = strongly_connected_components(g);
    let mut component = vec![usize::MAX; g.node_count()];
    for (idx, comp) in members.iter().enumerate() {
        for &v in comp {
            component[v] = idx;
        }
    }
    let mut arcs: Vec<(usize, usize)> = g
        .iter_arcs()
        .map(|(u, a)| (component[u], component[a.to()]))
        .filter(|(cu, cv)| cu != cv)
        .collect();
    arcs.sort_unstable();
    arcs.dedup();
    Condensation {
        component,
        members,
        arcs,
    }
}

/// Iterative Tarjan SCC.
struct TarjanState {
    index: Vec<u32>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<u32>,
    next_index: u32,
    components: Vec<Vec<usize>>,
}

const UNVISITED: u32 = u32::MAX;

impl TarjanState {
    fn new(n: usize) -> Self {
        Self {
            index: vec![UNVISITED; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            components: Vec::new(),
        }
    }

    fn run(mut self, g: &DiGraph) -> Vec<Vec<usize>> {
        // Explicit call stack of (node, next-arc-offset) frames.
        let mut call: Vec<(u32, u32)> = Vec::new();
        for root in 0..g.node_count() {
            if self.index[root] != UNVISITED {
                continue;
            }
            call.push((root as u32, 0));
            self.open(root);
            while let Some(&mut (u, ref mut off)) = call.last_mut() {
                let u = u as usize;
                let arcs = g.out_arcs(u);
                if (*off as usize) < arcs.len() {
                    let v = arcs[*off as usize].to();
                    *off += 1;
                    if self.index[v] == UNVISITED {
                        self.open(v);
                        call.push((v as u32, 0));
                    } else if self.on_stack[v] {
                        self.lowlink[u] = self.lowlink[u].min(self.index[v]);
                    }
                } else {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        let p = parent as usize;
                        self.lowlink[p] = self.lowlink[p].min(self.lowlink[u]);
                    }
                    if self.lowlink[u] == self.index[u] {
                        self.close_component(u);
                    }
                }
            }
        }
        self.components
    }

    fn open(&mut self, v: usize) {
        self.index[v] = self.next_index;
        self.lowlink[v] = self.next_index;
        self.next_index += 1;
        self.stack.push(v as u32);
        self.on_stack[v] = true;
    }

    fn close_component(&mut self, root: usize) {
        let mut comp = Vec::new();
        loop {
            // bbc-lint: allow(panic, tarjan pushes root before recursing, so the stack holds the component)
            let w = self.stack.pop().expect("tarjan stack underflow") as usize;
            self.on_stack[w] = false;
            comp.push(w);
            if w == root {
                break;
            }
        }
        self.components.push(comp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut comps: Vec<Vec<usize>>) -> Vec<Vec<usize>> {
        for c in &mut comps {
            c.sort_unstable();
        }
        comps.sort();
        comps
    }

    #[test]
    fn singleton_components_in_a_dag() {
        let g = DiGraph::from_unit_edges(4, [(0, 1), (1, 2), (0, 3)]);
        let comps = sorted(strongly_connected_components(&g));
        assert_eq!(comps, vec![vec![0], vec![1], vec![2], vec![3]]);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn ring_is_one_component() {
        let g = DiGraph::from_unit_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert_eq!(strongly_connected_components(&g).len(), 1);
        assert!(is_strongly_connected(&g));
    }

    #[test]
    fn two_rings_joined_by_one_arc() {
        let g =
            DiGraph::from_unit_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        let comps = sorted(strongly_connected_components(&g));
        assert_eq!(comps, vec![vec![0, 1, 2], vec![3, 4, 5]]);

        let cond = condensation(&g);
        assert_eq!(cond.component_count(), 2);
        assert_eq!(cond.arcs.len(), 1);
        // The sink is the component containing nodes {3,4,5}.
        let sinks = cond.sink_components();
        assert_eq!(sinks.len(), 1);
        assert!(cond.members[sinks[0]].contains(&3));
    }

    #[test]
    fn tarjan_order_is_reverse_topological() {
        let g = DiGraph::from_unit_edges(3, [(0, 1), (1, 2)]);
        let cond = condensation(&g);
        // Every condensation arc must go from a higher member index to lower.
        for &(from, to) in &cond.arcs {
            assert!(
                from > to,
                "arc {from}->{to} violates reverse-topological order"
            );
        }
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let n = 200_000;
        let g = DiGraph::from_unit_edges(n, (0..n - 1).map(|i| (i, i + 1)));
        assert_eq!(strongly_connected_components(&g).len(), n);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        assert!(is_strongly_connected(&DiGraph::new(0)));
        assert!(is_strongly_connected(&DiGraph::new(1)));
        assert_eq!(strongly_connected_components(&DiGraph::new(0)).len(), 0);
    }

    #[test]
    fn self_loop_single_node() {
        let mut g = DiGraph::new(2);
        g.add_arc(0, crate::Arc::unit(0));
        let comps = sorted(strongly_connected_components(&g));
        assert_eq!(comps, vec![vec![0], vec![1]]);
    }
}

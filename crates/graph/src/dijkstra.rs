//! Dijkstra shortest paths for graphs with non-unit arc lengths.
//!
//! Non-uniform BBC games (§3 of the paper) put arbitrary positive lengths on
//! links; the matching-pennies gadget of Theorem 1, for instance, uses length
//! `L ≫ 1` for "omitted" links. [`DijkstraBuffer`] mirrors
//! [`crate::BfsBuffer`]: reusable state, [`crate::UNREACHABLE`] sentinel for
//! unreached nodes.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{DiGraph, UNREACHABLE};

/// Reusable Dijkstra state: distance array plus a binary heap.
///
/// # Examples
///
/// ```
/// use bbc_graph::{DiGraph, DijkstraBuffer};
///
/// let g = DiGraph::from_edges(3, [(0, 1, 4), (0, 2, 1), (2, 1, 2)]);
/// let mut dij = DijkstraBuffer::new(g.node_count());
/// dij.run(&g, 0);
/// assert_eq!(dij.distances(), &[0, 3, 1]);
/// ```
#[derive(Clone, Debug)]
pub struct DijkstraBuffer {
    dist: Vec<u64>,
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl DijkstraBuffer {
    /// Creates a buffer sized for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            dist: vec![UNREACHABLE; n],
            heap: BinaryHeap::with_capacity(n),
        }
    }

    /// Runs Dijkstra from `source`, overwriting the internal distance array.
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of bounds or the buffer was sized for a
    /// different node count.
    pub fn run(&mut self, g: &DiGraph, source: usize) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        assert!(source < self.dist.len(), "source {source} out of bounds");
        self.dist.fill(UNREACHABLE);
        self.heap.clear();
        self.dist[source] = 0;
        self.heap.push(Reverse((0, source as u32)));
        self.drain_heap(g);
    }

    /// Runs Dijkstra from `source` pretending `source`'s out-links go to
    /// `targets` with the given lengths, instead of its real arcs.
    ///
    /// `g` must have `source`'s real out-arcs stripped (see
    /// [`DiGraph::take_out_arcs`]). This mirrors
    /// [`crate::BfsBuffer::run_with_virtual_links`] for weighted games.
    pub fn run_with_virtual_links(&mut self, g: &DiGraph, source: usize, links: &[(usize, u64)]) {
        assert_eq!(
            g.node_count(),
            self.dist.len(),
            "buffer sized for a different graph"
        );
        debug_assert_eq!(
            g.out_degree(source),
            0,
            "caller must strip source's real arcs"
        );
        self.dist.fill(UNREACHABLE);
        self.heap.clear();
        self.dist[source] = 0;
        for &(t, len) in links {
            assert!(len > 0, "virtual link length must be positive");
            if t != source && len < self.dist[t] {
                self.dist[t] = len;
                self.heap.push(Reverse((len, t as u32)));
            }
        }
        self.drain_heap(g);
    }

    fn drain_heap(&mut self, g: &DiGraph) {
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let u = u as usize;
            if d > self.dist[u] {
                continue; // stale entry
            }
            for a in g.out_arcs(u) {
                let v = a.to();
                let nd = d + a.len;
                if nd < self.dist[v] {
                    self.dist[v] = nd;
                    self.heap.push(Reverse((nd, a.to)));
                }
            }
        }
    }

    /// Distances produced by the last run; unreached nodes hold
    /// [`UNREACHABLE`].
    #[inline]
    pub fn distances(&self) -> &[u64] {
        &self.dist
    }

    /// Number of nodes reached by the last run (including the source).
    pub fn reached(&self) -> usize {
        self.dist.iter().filter(|&&d| d != UNREACHABLE).count()
    }
}

/// One-shot Dijkstra convenience wrapper.
pub fn dijkstra_distances(g: &DiGraph, source: usize) -> Vec<u64> {
    let mut buf = DijkstraBuffer::new(g.node_count());
    buf.run(g, source);
    buf.dist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_cheaper_indirect_route() {
        let g = DiGraph::from_edges(4, [(0, 3, 100), (0, 1, 1), (1, 2, 1), (2, 3, 1)]);
        assert_eq!(dijkstra_distances(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_nodes_get_sentinel() {
        let g = DiGraph::from_edges(3, [(1, 2, 5)]);
        assert_eq!(dijkstra_distances(&g, 0), vec![0, UNREACHABLE, UNREACHABLE]);
    }

    #[test]
    fn agrees_with_bfs_on_unit_lengths() {
        let g = DiGraph::from_unit_edges(6, [(0, 1), (1, 2), (2, 3), (0, 4), (4, 3), (3, 5)]);
        assert_eq!(dijkstra_distances(&g, 0), crate::bfs::bfs_distances(&g, 0));
    }

    #[test]
    fn virtual_links_match_real_links() {
        let mut g = DiGraph::from_edges(5, [(2, 1, 3), (3, 4, 2), (1, 0, 1)]);
        let mut virt = DijkstraBuffer::new(5);
        virt.run_with_virtual_links(&g, 0, &[(2, 7), (3, 1)]);

        g.add_arc(0, crate::Arc::new(2, 7));
        g.add_arc(0, crate::Arc::new(3, 1));
        assert_eq!(virt.distances(), &dijkstra_distances(&g, 0)[..]);
    }

    #[test]
    fn virtual_links_keep_best_parallel_length() {
        let g = DiGraph::new(2);
        let mut buf = DijkstraBuffer::new(2);
        buf.run_with_virtual_links(&g, 0, &[(1, 9), (1, 2)]);
        assert_eq!(buf.distances(), &[0, 2]);
    }
}

//! Property-based tests for the graph substrate.

use bbc_graph::{
    bfs::bfs_distances,
    diameter::eccentricity,
    dijkstra::dijkstra_distances,
    reach::reach_counts,
    scc::{condensation, is_strongly_connected, strongly_connected_components},
    ConnectivityScratch, CsrBfs, CsrDijkstra, CsrGraph, DiGraph, DistanceMatrix, UNREACHABLE,
};
use proptest::prelude::*;

/// Arbitrary unit-length digraph: node count in 1..=24, arc density ~2 per
/// node.
fn arb_unit_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..=24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n)).prop_map(move |pairs| {
            DiGraph::from_unit_edges(n, pairs.into_iter().filter(|(u, v)| u != v))
        })
    })
}

/// Arbitrary weighted digraph with lengths in 1..=10.
fn arb_weighted_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..=20).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u64..=10), 0..(3 * n)).prop_map(move |tris| {
            DiGraph::from_edges(n, tris.into_iter().filter(|(u, v, _)| u != v))
        })
    })
}

/// Reference Bellman-Ford, deliberately naive.
fn bellman_ford(g: &DiGraph, source: usize) -> Vec<u64> {
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    dist[source] = 0;
    for _ in 0..n {
        let mut changed = false;
        for (u, a) in g.iter_arcs() {
            if dist[u] != UNREACHABLE && dist[u] + a.len < dist[a.to()] {
                dist[a.to()] = dist[u] + a.len;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #[test]
    fn bfs_matches_dijkstra_on_unit_graphs(g in arb_unit_graph(), src_sel in 0usize..1000) {
        let src = src_sel % g.node_count();
        prop_assert_eq!(bfs_distances(&g, src), dijkstra_distances(&g, src));
    }

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_weighted_graph(), src_sel in 0usize..1000) {
        let src = src_sel % g.node_count();
        prop_assert_eq!(dijkstra_distances(&g, src), bellman_ford(&g, src));
    }

    #[test]
    fn distance_zero_iff_self(g in arb_unit_graph(), src_sel in 0usize..1000) {
        let src = src_sel % g.node_count();
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[src], 0);
        for (v, &dv) in d.iter().enumerate() {
            if v != src {
                prop_assert!(dv >= 1);
            }
        }
    }

    #[test]
    fn arc_relaxation_holds(g in arb_weighted_graph(), src_sel in 0usize..1000) {
        // d(s, v) <= d(s, u) + len(u, v) for every arc: shortest paths are
        // consistent with one-step relaxation.
        let src = src_sel % g.node_count();
        let d = dijkstra_distances(&g, src);
        for (u, a) in g.iter_arcs() {
            if d[u] != UNREACHABLE {
                prop_assert!(d[a.to()] != UNREACHABLE);
                prop_assert!(d[a.to()] <= d[u] + a.len);
            }
        }
    }

    #[test]
    fn scc_members_are_mutually_reachable(g in arb_unit_graph()) {
        let comps = strongly_connected_components(&g);
        // Partition check.
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "node {} in two components", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Mutual reachability within a component.
        for comp in &comps {
            let d0 = bfs_distances(&g, comp[0]);
            for &v in comp {
                prop_assert!(d0[v] != UNREACHABLE);
                let dv = bfs_distances(&g, v);
                prop_assert!(dv[comp[0]] != UNREACHABLE);
            }
        }
    }

    #[test]
    fn condensation_is_acyclic(g in arb_unit_graph()) {
        let cond = condensation(&g);
        // Tarjan order makes every arc strictly decreasing, which is a
        // certificate of acyclicity.
        for &(from, to) in &cond.arcs {
            prop_assert!(from > to);
        }
        prop_assert!(!cond.members.is_empty() || g.node_count() == 0);
        prop_assert!(!cond.sink_components().is_empty());
    }

    #[test]
    fn reach_matches_per_node_bfs(g in arb_unit_graph()) {
        let fast = reach_counts(&g);
        for (v, &fast_v) in fast.iter().enumerate() {
            let d = bfs_distances(&g, v);
            let brute = d.iter().filter(|&&x| x != UNREACHABLE).count();
            prop_assert_eq!(fast_v, brute);
        }
    }

    #[test]
    fn distance_matrix_rows_match_single_source(g in arb_weighted_graph()) {
        let m = DistanceMatrix::all_pairs(&g);
        for u in 0..g.node_count() {
            prop_assert_eq!(m.row(u), &dijkstra_distances(&g, u)[..]);
        }
    }

    #[test]
    fn eccentricity_consistent_with_matrix(g in arb_unit_graph()) {
        let e = eccentricity(&g);
        let m = DistanceMatrix::all_pairs(&g);
        prop_assert_eq!(e.all_pairs_connected, m.all_pairs_connected());
        if e.all_pairs_connected {
            for u in 0..g.node_count() {
                let row_max = m.row(u).iter().copied().max().unwrap();
                prop_assert_eq!(e.ecc[u], row_max);
            }
        }
    }

    #[test]
    fn csr_bfs_and_dijkstra_match_adjacency_list(g in arb_weighted_graph()) {
        let csr = CsrGraph::from_digraph(&g);
        prop_assert_eq!(csr.arc_count(), g.arc_count());
        prop_assert_eq!(csr.is_unit_length(), g.is_unit_length());
        let n = g.node_count();
        let mut bfs = CsrBfs::new(n);
        let mut dij = CsrDijkstra::new(n);
        for s in 0..n {
            bfs.run(&csr, s);
            prop_assert_eq!(bfs.distances(), &bfs_distances(&g, s)[..]);
            dij.run(&csr, s);
            prop_assert_eq!(dij.distances(), &dijkstra_distances(&g, s)[..]);
        }
    }

    #[test]
    fn csr_skip_traversal_matches_stripped_graph(g in arb_weighted_graph(), skip_sel in 0usize..1000) {
        let skip = skip_sel % g.node_count();
        let csr = CsrGraph::from_digraph(&g);
        let mut stripped = g.clone();
        stripped.take_out_arcs(skip);
        let n = g.node_count();
        let mut dij = CsrDijkstra::new(n);
        for s in 0..n {
            dij.run_skipping(&csr, s, skip);
            prop_assert_eq!(dij.distances(), &dijkstra_distances(&stripped, s)[..]);
            prop_assert!(!dij.touched().contains(skip));
        }
    }

    #[test]
    fn csr_patching_matches_fresh_build(
        edits in proptest::collection::vec((0usize..8, proptest::collection::vec((0usize..8, 1u64..=5), 0..4)), 1..40)
    ) {
        // Replay an arbitrary rewiring script against an incrementally
        // patched CSR and compare with a CSR built from the final rows.
        let n = 8;
        let mut patched = CsrGraph::new(n);
        let mut rows: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for (u, row) in edits {
            // Dedup targets (parallel arcs are legal but make the row
            // comparison noisy) and drop self-loops.
            let mut clean: Vec<(u32, u64)> = Vec::new();
            for (v, len) in row {
                if v != u && !clean.iter().any(|&(t, _)| t == v as u32) {
                    clean.push((v as u32, len));
                }
            }
            patched.set_out_links(u, &clean);
            rows[u] = clean;
        }
        let mut fresh = CsrGraph::new(n);
        for (u, row) in rows.iter().enumerate() {
            fresh.set_out_links(u, row);
        }
        prop_assert_eq!(patched.arc_count(), fresh.arc_count());
        prop_assert_eq!(patched.is_unit_length(), fresh.is_unit_length());
        let mut a = CsrDijkstra::new(n);
        let mut b = CsrDijkstra::new(n);
        for s in 0..n {
            a.run(&patched, s);
            b.run(&fresh, s);
            prop_assert_eq!(a.distances(), b.distances());
        }
    }

    #[test]
    fn csr_connectivity_matches_tarjan(g in arb_unit_graph()) {
        let mut scratch = ConnectivityScratch::new();
        prop_assert_eq!(
            scratch.is_strongly_connected(&CsrGraph::from_digraph(&g)),
            is_strongly_connected(&g)
        );
    }

    #[test]
    fn csr_touched_set_certifies_row_stability(g in arb_unit_graph(), src_sel in 0usize..1000, m_sel in 0usize..1000) {
        // The cache-invalidation contract: if `m` was not touched by the
        // traversal from `src`, rewiring `m`'s out-links cannot change any
        // distance from `src`.
        let n = g.node_count();
        let src = src_sel % n;
        let m = m_sel % n;
        let csr = CsrGraph::from_digraph(&g);
        let mut bfs = CsrBfs::new(n);
        bfs.run(&csr, src);
        if !bfs.touched().contains(m) {
            let before = bfs.distances().to_vec();
            let mut rewired = csr.clone();
            rewired.set_out_links(m, &[(((m + 1) % n) as u32, 1)]);
            if m != (m + 1) % n {
                bfs.run(&rewired, src);
                prop_assert_eq!(bfs.distances(), &before[..]);
            }
        }
    }

    #[test]
    fn reversed_preserves_pairwise_distances_flipped(g in arb_weighted_graph()) {
        let m = DistanceMatrix::all_pairs(&g);
        let mr = DistanceMatrix::all_pairs(&g.reversed());
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                prop_assert_eq!(m.get(u, v), mr.get(v, u));
            }
        }
    }
}

//! Property-based tests for the graph substrate.

use bbc_graph::{
    bfs::bfs_distances,
    diameter::eccentricity,
    dijkstra::dijkstra_distances,
    reach::reach_counts,
    scc::{condensation, strongly_connected_components},
    DiGraph, DistanceMatrix, UNREACHABLE,
};
use proptest::prelude::*;

/// Arbitrary unit-length digraph: node count in 1..=24, arc density ~2 per
/// node.
fn arb_unit_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..=24).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..(3 * n)).prop_map(move |pairs| {
            DiGraph::from_unit_edges(n, pairs.into_iter().filter(|(u, v)| u != v))
        })
    })
}

/// Arbitrary weighted digraph with lengths in 1..=10.
fn arb_weighted_graph() -> impl Strategy<Value = DiGraph> {
    (1usize..=20).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n, 1u64..=10), 0..(3 * n)).prop_map(move |tris| {
            DiGraph::from_edges(n, tris.into_iter().filter(|(u, v, _)| u != v))
        })
    })
}

/// Reference Bellman-Ford, deliberately naive.
fn bellman_ford(g: &DiGraph, source: usize) -> Vec<u64> {
    let n = g.node_count();
    let mut dist = vec![UNREACHABLE; n];
    dist[source] = 0;
    for _ in 0..n {
        let mut changed = false;
        for (u, a) in g.iter_arcs() {
            if dist[u] != UNREACHABLE && dist[u] + a.len < dist[a.to()] {
                dist[a.to()] = dist[u] + a.len;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    dist
}

proptest! {
    #[test]
    fn bfs_matches_dijkstra_on_unit_graphs(g in arb_unit_graph(), src_sel in 0usize..1000) {
        let src = src_sel % g.node_count();
        prop_assert_eq!(bfs_distances(&g, src), dijkstra_distances(&g, src));
    }

    #[test]
    fn dijkstra_matches_bellman_ford(g in arb_weighted_graph(), src_sel in 0usize..1000) {
        let src = src_sel % g.node_count();
        prop_assert_eq!(dijkstra_distances(&g, src), bellman_ford(&g, src));
    }

    #[test]
    fn distance_zero_iff_self(g in arb_unit_graph(), src_sel in 0usize..1000) {
        let src = src_sel % g.node_count();
        let d = bfs_distances(&g, src);
        prop_assert_eq!(d[src], 0);
        for (v, &dv) in d.iter().enumerate() {
            if v != src {
                prop_assert!(dv >= 1);
            }
        }
    }

    #[test]
    fn arc_relaxation_holds(g in arb_weighted_graph(), src_sel in 0usize..1000) {
        // d(s, v) <= d(s, u) + len(u, v) for every arc: shortest paths are
        // consistent with one-step relaxation.
        let src = src_sel % g.node_count();
        let d = dijkstra_distances(&g, src);
        for (u, a) in g.iter_arcs() {
            if d[u] != UNREACHABLE {
                prop_assert!(d[a.to()] != UNREACHABLE);
                prop_assert!(d[a.to()] <= d[u] + a.len);
            }
        }
    }

    #[test]
    fn scc_members_are_mutually_reachable(g in arb_unit_graph()) {
        let comps = strongly_connected_components(&g);
        // Partition check.
        let mut seen = vec![false; g.node_count()];
        for comp in &comps {
            for &v in comp {
                prop_assert!(!seen[v], "node {} in two components", v);
                seen[v] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Mutual reachability within a component.
        for comp in &comps {
            let d0 = bfs_distances(&g, comp[0]);
            for &v in comp {
                prop_assert!(d0[v] != UNREACHABLE);
                let dv = bfs_distances(&g, v);
                prop_assert!(dv[comp[0]] != UNREACHABLE);
            }
        }
    }

    #[test]
    fn condensation_is_acyclic(g in arb_unit_graph()) {
        let cond = condensation(&g);
        // Tarjan order makes every arc strictly decreasing, which is a
        // certificate of acyclicity.
        for &(from, to) in &cond.arcs {
            prop_assert!(from > to);
        }
        prop_assert!(!cond.members.is_empty() || g.node_count() == 0);
        prop_assert!(!cond.sink_components().is_empty());
    }

    #[test]
    fn reach_matches_per_node_bfs(g in arb_unit_graph()) {
        let fast = reach_counts(&g);
        for (v, &fast_v) in fast.iter().enumerate() {
            let d = bfs_distances(&g, v);
            let brute = d.iter().filter(|&&x| x != UNREACHABLE).count();
            prop_assert_eq!(fast_v, brute);
        }
    }

    #[test]
    fn distance_matrix_rows_match_single_source(g in arb_weighted_graph()) {
        let m = DistanceMatrix::all_pairs(&g);
        for u in 0..g.node_count() {
            prop_assert_eq!(m.row(u), &dijkstra_distances(&g, u)[..]);
        }
    }

    #[test]
    fn eccentricity_consistent_with_matrix(g in arb_unit_graph()) {
        let e = eccentricity(&g);
        let m = DistanceMatrix::all_pairs(&g);
        prop_assert_eq!(e.all_pairs_connected, m.all_pairs_connected());
        if e.all_pairs_connected {
            for u in 0..g.node_count() {
                let row_max = m.row(u).iter().copied().max().unwrap();
                prop_assert_eq!(e.ecc[u], row_max);
            }
        }
    }

    #[test]
    fn reversed_preserves_pairwise_distances_flipped(g in arb_weighted_graph()) {
        let m = DistanceMatrix::all_pairs(&g);
        let mr = DistanceMatrix::all_pairs(&g.reversed());
        for u in 0..g.node_count() {
            for v in 0..g.node_count() {
                prop_assert_eq!(m.get(u, v), mr.get(v, u));
            }
        }
    }
}

//! Property-based tests for the flow substrate and the fractional game.

use bbc_core::{Configuration, Evaluator, GameSpec, NodeId};
use bbc_fractional::{br, FlowNetwork, FractionalBrOptions, FractionalConfig, FractionalGame};
use proptest::prelude::*;

/// `(from, to, capacity, cost)` quadruple.
type ArcSpec = (usize, usize, u64, u64);

/// Arbitrary small flow network plus a (source, sink, amount) query.
fn arb_network() -> impl Strategy<Value = (usize, Vec<ArcSpec>, u64)> {
    (2usize..=6).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 1u64..=3, 0u64..=5), 1..(2 * n)),
            1u64..=4,
        )
    })
}

/// Brute-force min-cost flow by enumerating per-unit path assignments:
/// repeatedly push single units along the cheapest *remaining* path found by
/// exhaustive path search. (Successive-shortest-paths on unit augmentations
/// is exact, so this is an independent reference as long as paths are found
/// exhaustively.)
fn reference_min_cost_flow(
    n: usize,
    arcs: &[ArcSpec],
    s: usize,
    t: usize,
    amount: u64,
) -> (u64, u64) {
    // Residual graph as capacity/cost maps over arc indices (with reverse).
    let mut cap: Vec<i64> = Vec::new();
    let mut cost: Vec<i64> = Vec::new();
    let mut ends: Vec<(usize, usize)> = Vec::new();
    for &(u, v, c, w) in arcs {
        if u == v {
            continue;
        }
        ends.push((u, v));
        cap.push(c as i64);
        cost.push(w as i64);
        ends.push((v, u));
        cap.push(0);
        cost.push(-(w as i64));
    }
    let mut sent = 0u64;
    let mut total = 0i64;
    while sent < amount {
        // Bellman-Ford for the cheapest augmenting path (handles negative
        // residual costs).
        let mut dist = vec![i64::MAX; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        dist[s] = 0;
        for _ in 0..n {
            let mut changed = false;
            for (i, &(u, v)) in ends.iter().enumerate() {
                if cap[i] > 0 && dist[u] != i64::MAX && dist[u] + cost[i] < dist[v] {
                    dist[v] = dist[u] + cost[i];
                    parent[v] = Some(i);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        if dist[t] == i64::MAX {
            break;
        }
        // Push one unit.
        let mut v = t;
        while let Some(i) = parent[v] {
            cap[i] -= 1;
            cap[i ^ 1] += 1;
            total += cost[i];
            v = ends[i].0;
        }
        sent += 1;
    }
    (sent, total as u64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flow_matches_unit_augmentation_reference((n, arcs, amount) in arb_network()) {
        let s = 0;
        let t = n - 1;
        let mut net = FlowNetwork::new(n);
        for &(u, v, c, w) in &arcs {
            if u != v {
                net.add_arc(u, v, c, w);
            }
        }
        let got = net.min_cost_flow(s, t, amount);
        let (ref_sent, ref_cost) = reference_min_cost_flow(n, &arcs, s, t, amount);
        prop_assert_eq!(got.sent, ref_sent);
        prop_assert_eq!(got.cost, ref_cost);
    }

    #[test]
    fn integral_lift_matches_evaluator(
        n in 3usize..=6,
        k in 1u64..=2,
        seed in any::<u64>(),
        d in 1u64..=4,
    ) {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, seed);
        let game = FractionalGame::new(&spec, d);
        let fcfg = FractionalConfig::from_integral(&game, &cfg);
        let mut eval = Evaluator::new(&spec);
        for u in NodeId::all(n) {
            prop_assert_eq!(game.node_cost_scaled(&fcfg, u), d * eval.node_cost(&cfg, u));
        }
    }

    #[test]
    fn fractional_best_response_never_hurts(
        n in 3usize..=5,
        seed in any::<u64>(),
        d in 1u64..=3,
    ) {
        let spec = GameSpec::uniform(n, 1);
        let game = FractionalGame::new(&spec, d);
        let fcfg = FractionalConfig::from_integral(&game, &Configuration::random(&spec, seed));
        let opts = FractionalBrOptions::default();
        for u in NodeId::all(n) {
            let out = br::best_response(&game, &fcfg, u, &opts).unwrap();
            prop_assert!(out.best_cost <= out.current_cost);
            // Applying the reported allocation reproduces the reported cost.
            let mut applied = fcfg.clone();
            applied.set_allocation(&game, u, out.best_allocation.clone()).unwrap();
            prop_assert_eq!(game.node_cost_scaled(&applied, u), out.best_cost);
        }
    }

    #[test]
    fn refining_the_lattice_never_increases_min_regret_at_equilibria(
        n in 3usize..=5,
        seed in any::<u64>(),
    ) {
        // A zero-regret D=1 profile stays zero-regret when lifted to D=2:
        // the D=1 strategy space embeds into the D=2 one.
        let spec = GameSpec::uniform(n, 1);
        let game1 = FractionalGame::new(&spec, 1);
        let opts = FractionalBrOptions::default();
        let (profile, regret) = br::iterate_best_responses(
            &game1,
            FractionalConfig::from_integral(&game1, &Configuration::random(&spec, seed)),
            60,
            &opts,
        ).unwrap();
        prop_assume!(regret == 0);
        // Re-express the D=1 equilibrium on the D=2 lattice.
        let game2 = FractionalGame::new(&spec, 2);
        let mut lifted = FractionalConfig::empty(n);
        for u in NodeId::all(n) {
            let doubled: Vec<_> =
                profile.allocation(u).iter().map(|&(v, units)| (v, 2 * units)).collect();
            lifted.set_allocation(&game2, u, doubled).unwrap();
        }
        // Its regret on the finer lattice may only shrink relative to scale:
        // a uniform-game integral equilibrium stays exactly stable.
        prop_assert_eq!(br::max_regret(&game2, &lifted, &opts).unwrap(), 0);
    }
}

//! Fractional BBC games (§3.2) on a scaled-integer lattice.
//!
//! A fractional strategy lets a node buy *fractions* of links subject to
//! `Σ_v a_u(v)·c(u,v) ≤ b(u)`; the cost to reach `v` becomes the value of a
//! minimum-cost unit flow in the network whose arc `(x, y)` has capacity
//! `a_x(y)` and length `ℓ(x,y)`, plus an always-available escape arc of
//! length `M` (the disconnection penalty) so a unit flow always exists.
//!
//! We discretize: a [`FractionalGame`] fixes a resolution `D` and every
//! allocation is an integer number of `1/D`-units. All flows are then
//! integral and every cost exact. Theorem 3 proves a pure Nash equilibrium
//! exists in the continuum; experiment E3 shows the discretized best
//! response's regret shrinking as `D` grows, including on the Theorem 1
//! gadget whose *integral* game provably has no equilibrium.

use serde::{Deserialize, Serialize};

use bbc_core::{Configuration, CostModel, GameSpec, NodeId};

use crate::flow::FlowNetwork;

/// A fractional BBC game: a base spec plus the lattice resolution `D`.
#[derive(Clone, Debug)]
pub struct FractionalGame<'a> {
    spec: &'a GameSpec,
    resolution: u64,
}

/// One node's allocation: units (of `1/D`) bought toward each target.
/// Canonically sorted by target; zero-unit entries are dropped.
pub type Allocation = Vec<(NodeId, u64)>;

/// A joint fractional profile.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FractionalConfig {
    allocations: Vec<Allocation>,
}

impl<'a> FractionalGame<'a> {
    /// Creates the discretized fractional game.
    ///
    /// # Panics
    ///
    /// Panics if `resolution == 0`.
    pub fn new(spec: &'a GameSpec, resolution: u64) -> Self {
        assert!(resolution > 0, "resolution must be positive");
        Self { spec, resolution }
    }

    /// The base specification.
    pub fn spec(&self) -> &GameSpec {
        self.spec
    }

    /// Units per whole link (`D`).
    pub fn resolution(&self) -> u64 {
        self.resolution
    }

    /// Budget of `u` in units: `b(u)·D`.
    pub fn budget_units(&self, u: NodeId) -> u64 {
        self.spec.budget(u) * self.resolution
    }

    /// Validates an allocation for `u`: distinct non-self targets, positive
    /// units, spend `Σ units·c(u,v) ≤ b(u)·D`.
    ///
    /// # Errors
    ///
    /// Mirrors [`GameSpec::validate_strategy`]'s error vocabulary.
    pub fn validate_allocation(&self, u: NodeId, alloc: &Allocation) -> bbc_core::Result<()> {
        let mut seen = vec![false; self.spec.node_count()];
        let mut spent = 0u64;
        for &(v, units) in alloc {
            if v.index() >= self.spec.node_count() {
                return Err(bbc_core::Error::NodeOutOfBounds {
                    node: v,
                    n: self.spec.node_count(),
                });
            }
            if v == u {
                return Err(bbc_core::Error::SelfLink { node: u });
            }
            if seen[v.index()] {
                return Err(bbc_core::Error::DuplicateTarget { node: u, target: v });
            }
            seen[v.index()] = true;
            assert!(units > 0, "zero-unit entries must be dropped");
            spent += units * self.spec.link_cost(u, v);
        }
        let budget = self.budget_units(u);
        if spent > budget {
            return Err(bbc_core::Error::BudgetExceeded {
                node: u,
                spent,
                budget,
            });
        }
        Ok(())
    }

    /// Scaled cost of node `u`: `Σ_v w(u,v)·mincostflow_D(u → v)` where each
    /// flow carries `D` units, so the value equals `D ×` the true fractional
    /// cost. (Max model: the maximum instead of the sum.)
    pub fn node_cost_scaled(&self, config: &FractionalConfig, u: NodeId) -> u64 {
        let n = self.spec.node_count();
        let mut total = 0u64;
        let mut worst = 0u64;
        for v in NodeId::all(n) {
            if v == u {
                continue;
            }
            let w = self.spec.weight(u, v);
            if w == 0 {
                continue;
            }
            let cost = self.flow_cost(config, u, v);
            total += w * cost;
            worst = worst.max(w * cost);
        }
        match self.spec.cost_model() {
            CostModel::SumDistance => total,
            CostModel::MaxDistance => worst,
        }
    }

    /// Scaled social cost: sum of scaled node costs.
    pub fn social_cost_scaled(&self, config: &FractionalConfig) -> u64 {
        NodeId::all(self.spec.node_count())
            .map(|u| self.node_cost_scaled(config, u))
            .sum()
    }

    /// Min-cost `D`-unit flow from `u` to `v` over the profile's capacities,
    /// with the escape arc of length `M`.
    fn flow_cost(&self, config: &FractionalConfig, u: NodeId, v: NodeId) -> u64 {
        let n = self.spec.node_count();
        let mut net = FlowNetwork::new(n);
        for (x, alloc) in config.allocations.iter().enumerate() {
            let xn = NodeId::new(x);
            for &(y, units) in alloc {
                net.add_arc(x, y.index(), units, self.spec.link_length(xn, y));
            }
        }
        // Escape arc: unlimited capacity at the penalty price.
        net.add_arc(u.index(), v.index(), self.resolution, self.spec.penalty());
        let r = net.min_cost_flow(u.index(), v.index(), self.resolution);
        debug_assert_eq!(r.sent, self.resolution, "escape arc guarantees feasibility");
        r.cost
    }
}

impl FractionalConfig {
    /// The all-zero profile (everything rides the escape arcs).
    pub fn empty(n: usize) -> Self {
        Self {
            allocations: vec![Vec::new(); n],
        }
    }

    /// Lifts an integral configuration: every bought link becomes a full
    /// `D`-unit allocation.
    pub fn from_integral(game: &FractionalGame<'_>, config: &Configuration) -> Self {
        let d = game.resolution();
        let allocations = (0..config.node_count())
            .map(|u| {
                config
                    .strategy(NodeId::new(u))
                    .iter()
                    .map(|&v| (v, d))
                    .collect()
            })
            .collect();
        Self { allocations }
    }

    /// Number of players.
    pub fn node_count(&self) -> usize {
        self.allocations.len()
    }

    /// `u`'s allocation.
    pub fn allocation(&self, u: NodeId) -> &Allocation {
        &self.allocations[u.index()]
    }

    /// Replaces `u`'s allocation after validation; sorts it canonically and
    /// drops zero-unit entries.
    ///
    /// # Errors
    ///
    /// See [`FractionalGame::validate_allocation`].
    pub fn set_allocation(
        &mut self,
        game: &FractionalGame<'_>,
        u: NodeId,
        mut alloc: Allocation,
    ) -> bbc_core::Result<()> {
        alloc.retain(|&(_, units)| units > 0);
        alloc.sort_unstable();
        game.validate_allocation(u, &alloc)?;
        self.allocations[u.index()] = alloc;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::Evaluator;

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn integral_lift_reproduces_integral_costs() {
        // With full-unit allocations, the D-unit flow rides the shortest
        // path: scaled cost = D × integral cost.
        let spec = GameSpec::uniform(5, 2);
        for seed in 0..5 {
            let cfg = Configuration::random(&spec, seed);
            let mut eval = Evaluator::new(&spec);
            for d in [1u64, 3] {
                let game = FractionalGame::new(&spec, d);
                let fcfg = FractionalConfig::from_integral(&game, &cfg);
                for u in NodeId::all(5) {
                    assert_eq!(
                        game.node_cost_scaled(&fcfg, u),
                        d * eval.node_cost(&cfg, u),
                        "seed {seed} D {d} node {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_profile_pays_full_penalty() {
        let spec = GameSpec::uniform(3, 1);
        let game = FractionalGame::new(&spec, 4);
        let cfg = FractionalConfig::empty(3);
        // Each of 2 targets: 4 units over the escape arc at M each.
        assert_eq!(game.node_cost_scaled(&cfg, v(0)), 2 * 4 * spec.penalty());
    }

    #[test]
    fn split_allocation_splits_flow() {
        // Node 0 halves its budget between 1 and 2; both relay to 3 fully.
        // Reaching 3 costs: half the units at distance 2, half at 2 → but
        // capacity at the relays is full (D units each), so all D units
        // travel length-2 paths: cost 2D.
        let spec = GameSpec::uniform(4, 1);
        let game = FractionalGame::new(&spec, 4);
        let mut cfg = FractionalConfig::empty(4);
        cfg.set_allocation(&game, v(0), vec![(v(1), 2), (v(2), 2)])
            .unwrap();
        cfg.set_allocation(&game, v(1), vec![(v(3), 4)]).unwrap();
        cfg.set_allocation(&game, v(2), vec![(v(3), 4)]).unwrap();
        // d(0,1): 2 units at length 1 + 2 units at M (escape).
        // d(0,3): 4 units at length 2.
        let m = spec.penalty();
        let expected_d1 = 2 + 2 * m;
        let expected_d2 = expected_d1; // symmetric
        let expected_d3 = 4 * 2;
        assert_eq!(
            game.node_cost_scaled(&cfg, v(0)),
            expected_d1 + expected_d2 + expected_d3
        );
    }

    #[test]
    fn validation_mirrors_integral_rules() {
        let spec = GameSpec::uniform(4, 1);
        let game = FractionalGame::new(&spec, 4);
        let mut cfg = FractionalConfig::empty(4);
        assert!(cfg
            .set_allocation(&game, v(0), vec![(v(1), 2), (v(2), 2)])
            .is_ok());
        assert!(matches!(
            cfg.set_allocation(&game, v(0), vec![(v(0), 1)]),
            Err(bbc_core::Error::SelfLink { .. })
        ));
        assert!(matches!(
            cfg.set_allocation(&game, v(0), vec![(v(1), 5)]),
            Err(bbc_core::Error::BudgetExceeded { .. })
        ));
        assert!(matches!(
            cfg.set_allocation(&game, v(0), vec![(v(1), 1), (v(1), 1)]),
            Err(bbc_core::Error::DuplicateTarget { .. })
        ));
    }

    #[test]
    fn fractional_budget_uses_link_costs() {
        let spec = GameSpec::builder(3)
            .default_budget(2)
            .link_cost(0, 1, 2)
            .build()
            .unwrap();
        let game = FractionalGame::new(&spec, 10);
        let mut cfg = FractionalConfig::empty(3);
        // 10 units of a cost-2 link spend 20 = full budget 2×10 units.
        assert!(cfg.set_allocation(&game, v(0), vec![(v(1), 10)]).is_ok());
        assert!(cfg
            .set_allocation(&game, v(0), vec![(v(1), 10), (v(2), 1)])
            .is_err());
    }
}

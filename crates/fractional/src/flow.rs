//! Exact min-cost flow (successive shortest paths with Johnson potentials).
//!
//! The fractional BBC game (§3.2) prices a strategy profile by, for every
//! ordered pair `(u, v)`, the cost of a minimum-cost *unit* flow from `u` to
//! `v` in a network whose capacities are the fractional link purchases.
//! Working in scaled integer units (see [`crate::game`]) keeps every flow
//! integral and every comparison exact — no epsilon reasoning anywhere.
//!
//! Costs are stored signed so residual arcs carry the negated forward cost;
//! potentials keep reduced costs non-negative, so Dijkstra drives every
//! augmentation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Arc identifier returned by [`FlowNetwork::add_arc`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ArcId(usize);

#[derive(Clone, Debug)]
struct FlowArc {
    to: u32,
    /// Remaining capacity.
    cap: u64,
    /// Signed cost per unit (negative on residual arcs).
    cost: i64,
    /// Index of the reverse arc.
    rev: usize,
}

/// Result of a flow computation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowResult {
    /// Units actually routed (may be less than requested if capacity ran
    /// out).
    pub sent: u64,
    /// Total cost of the routed units.
    pub cost: u64,
}

/// A directed flow network with per-arc capacities and non-negative costs.
///
/// # Examples
///
/// ```
/// use bbc_fractional::flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(3);
/// net.add_arc(0, 1, 2, 1);
/// net.add_arc(1, 2, 2, 1);
/// net.add_arc(0, 2, 1, 5);
/// let r = net.min_cost_flow(0, 2, 3);
/// assert_eq!(r.sent, 3);
/// assert_eq!(r.cost, 2 * 2 + 5); // two units via the path, one direct
/// ```
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    adj: Vec<Vec<usize>>,
    arcs: Vec<FlowArc>,
}

impl FlowNetwork {
    /// Creates an empty network on `n` nodes.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            arcs: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Adds an arc with the given capacity and per-unit cost (and its
    /// zero-capacity reverse arc).
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds endpoints, a self-loop, or a cost exceeding
    /// `i64::MAX / 2` (headroom for potential arithmetic).
    pub fn add_arc(&mut self, from: usize, to: usize, cap: u64, cost: u64) -> ArcId {
        assert!(
            from < self.adj.len() && to < self.adj.len(),
            "endpoint out of bounds"
        );
        assert_ne!(from, to, "self-loops carry no flow");
        assert!(cost <= (i64::MAX / 2) as u64, "arc cost too large");
        let id = self.arcs.len();
        self.arcs.push(FlowArc {
            to: to as u32,
            cap,
            cost: cost as i64,
            rev: id + 1,
        });
        self.arcs.push(FlowArc {
            to: from as u32,
            cap: 0,
            cost: -(cost as i64),
            rev: id,
        });
        self.adj[from].push(id);
        self.adj[to].push(id + 1);
        ArcId(id)
    }

    /// Flow currently on an arc (the capacity moved to its reverse).
    pub fn flow_on(&self, arc: ArcId) -> u64 {
        self.arcs[self.arcs[arc.0].rev].cap
    }

    /// Sends up to `amount` units from `s` to `t` at minimum cost, mutating
    /// the residual network. Returns what was actually sent and its cost.
    ///
    /// Calling repeatedly continues from the current residual state, so the
    /// results compose (total cost is the sum).
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or endpoints are out of bounds.
    pub fn min_cost_flow(&mut self, s: usize, t: usize, amount: u64) -> FlowResult {
        assert!(
            s < self.adj.len() && t < self.adj.len(),
            "endpoint out of bounds"
        );
        assert_ne!(s, t, "source equals sink");
        let n = self.adj.len();
        const INF: i64 = i64::MAX;
        // Bellman-Ford initialization makes repeated calls valid: the
        // residual network of a previous call contains negative (reverse)
        // arcs, so zero potentials would violate the reduced-cost invariant.
        let mut potential = vec![0i64; n];
        for _ in 0..n {
            let mut changed = false;
            for (u, arcs) in self.adj.iter().enumerate() {
                for &ai in arcs {
                    let arc = &self.arcs[ai];
                    if arc.cap > 0 {
                        let v = arc.to as usize;
                        let cand = potential[u].saturating_add(arc.cost);
                        if cand < potential[v] {
                            potential[v] = cand;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let mut sent = 0u64;
        let mut total_cost = 0i64;
        let mut dist = vec![INF; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut heap: BinaryHeap<Reverse<(i64, u32)>> = BinaryHeap::new();

        while sent < amount {
            dist.fill(INF);
            parent.fill(None);
            heap.clear();
            dist[s] = 0;
            heap.push(Reverse((0, s as u32)));
            while let Some(Reverse((d, u))) = heap.pop() {
                let u = u as usize;
                if d > dist[u] {
                    continue;
                }
                for &ai in &self.adj[u] {
                    let arc = &self.arcs[ai];
                    if arc.cap == 0 {
                        continue;
                    }
                    let v = arc.to as usize;
                    let reduced = arc.cost + potential[u] - potential[v];
                    debug_assert!(reduced >= 0, "potential invariant violated");
                    if dist[u] != INF && dist[u] + reduced < dist[v] {
                        dist[v] = dist[u] + reduced;
                        parent[v] = Some(ai);
                        heap.push(Reverse((dist[v], arc.to)));
                    }
                }
            }
            if dist[t] == INF {
                break; // no augmenting path left
            }
            for v in 0..n {
                if dist[v] != INF {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the augmenting path.
            let mut bottleneck = amount - sent;
            let mut v = t;
            while let Some(ai) = parent[v] {
                bottleneck = bottleneck.min(self.arcs[ai].cap);
                v = self.arcs[self.arcs[ai].rev].to as usize;
            }
            // Apply and accumulate the true (non-reduced) path cost.
            let mut v = t;
            let mut path_cost = 0i64;
            while let Some(ai) = parent[v] {
                self.arcs[ai].cap -= bottleneck;
                let rev = self.arcs[ai].rev;
                self.arcs[rev].cap += bottleneck;
                path_cost += self.arcs[ai].cost;
                v = self.arcs[rev].to as usize;
            }
            sent += bottleneck;
            total_cost += bottleneck as i64 * path_cost;
        }
        debug_assert!(
            total_cost >= 0,
            "non-negative costs yield non-negative flow cost"
        );
        FlowResult {
            sent,
            cost: total_cost as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 5, 2);
        net.add_arc(1, 2, 5, 3);
        let r = net.min_cost_flow(0, 2, 4);
        assert_eq!(r, FlowResult { sent: 4, cost: 20 });
    }

    #[test]
    fn chooses_cheaper_route_first() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 3, 1, 1);
        net.add_arc(0, 2, 10, 4);
        net.add_arc(2, 3, 10, 4);
        let r = net.min_cost_flow(0, 3, 3);
        assert_eq!(r.sent, 3);
        assert_eq!(r.cost, 2 + 2 * 8);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Classic cancellation case: the greedy first path must be partially
        // undone to achieve the optimum for 2 units.
        //   0->1 (cap 1, cost 1), 1->3 (cap 1, cost 1)  — cheap path
        //   0->2 (cap 1, cost 2), 2->3 (cap 1, cost 2)  — dear path
        //   1->2 (cap 1, cost 0)                        — tempting shortcut
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1, 1);
        net.add_arc(1, 3, 1, 1);
        net.add_arc(0, 2, 1, 2);
        net.add_arc(2, 3, 1, 2);
        net.add_arc(1, 2, 1, 0);
        let r = net.min_cost_flow(0, 3, 2);
        assert_eq!(r.sent, 2);
        // Optimum: 0->1->3 (2) and 0->2->3 (4) = 6.
        assert_eq!(r.cost, 6);
    }

    #[test]
    fn capacity_shortfall_reported() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 2, 7);
        let r = net.min_cost_flow(0, 1, 5);
        assert_eq!(r, FlowResult { sent: 2, cost: 14 });
    }

    #[test]
    fn disconnected_sends_nothing() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 1, 1);
        let r = net.min_cost_flow(0, 2, 1);
        assert_eq!(r, FlowResult { sent: 0, cost: 0 });
    }

    #[test]
    fn sequential_calls_compose() {
        let mut net = FlowNetwork::new(3);
        net.add_arc(0, 1, 3, 1);
        net.add_arc(1, 2, 3, 1);
        let a = net.min_cost_flow(0, 2, 1);
        let b = net.min_cost_flow(0, 2, 2);
        assert_eq!(a.cost + b.cost, 6);
    }

    #[test]
    fn flow_on_reports_per_arc_flow() {
        let mut net = FlowNetwork::new(2);
        let a = net.add_arc(0, 1, 3, 1);
        net.min_cost_flow(0, 1, 2);
        assert_eq!(net.flow_on(a), 2);
    }

    /// Brute-force reference: enumerate all ways to route `amount` units
    /// over simple paths (only valid for tiny acyclic networks).
    #[test]
    fn matches_brute_force_on_tiny_dags() {
        // Diamond with varied costs/capacities; check flows of 1..4 units
        // against hand-computed optima.
        let build = || {
            let mut net = FlowNetwork::new(4);
            net.add_arc(0, 1, 2, 1);
            net.add_arc(0, 2, 2, 3);
            net.add_arc(1, 3, 1, 1);
            net.add_arc(1, 2, 2, 1);
            net.add_arc(2, 3, 3, 1);
            net
        };
        // Unit costs of the 3 simple paths: 0-1-3: 2; 0-1-2-3: 3; 0-2-3: 4.
        let expect = [(1u64, 2u64), (2, 5), (3, 9), (4, 13)];
        for (amount, cost) in expect {
            let mut net = build();
            let r = net.min_cost_flow(0, 3, amount);
            assert_eq!(r.sent, amount);
            assert_eq!(r.cost, cost, "amount {amount}");
        }
    }
}

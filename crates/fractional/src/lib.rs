//! Fractional BBC games (§3.2 of the paper) on an exact min-cost-flow
//! substrate.
//!
//! Theorem 3 shows that allowing nodes to buy *fractions* of links restores
//! the existence of pure Nash equilibria that integral non-uniform games
//! lack: strategy spaces become convex polytopes and the min-cost-flow
//! pricing is quasi-convex. This crate discretizes the polytope to a `1/D`
//! lattice so every quantity stays an exact integer:
//!
//! * [`flow`] — successive-shortest-path min-cost flow with signed residual
//!   costs and Johnson potentials;
//! * [`game`] — the discretized fractional game and its flow-priced costs;
//! * [`br`] — exact lattice best response, regret, and iterated dynamics.
//!
//! # Examples
//!
//! ```
//! use bbc_core::GameSpec;
//! use bbc_fractional::{br, FractionalConfig, FractionalGame};
//!
//! let spec = GameSpec::uniform(4, 1);
//! let game = FractionalGame::new(&spec, 2); // half-link resolution
//! let start = FractionalConfig::empty(4);
//! let (profile, regret) =
//!     br::iterate_best_responses(&game, start, 50, &Default::default())?;
//! assert_eq!(regret, 0, "lattice equilibrium reached: {profile:?}");
//! # Ok::<(), bbc_core::Error>(())
//! ```

#![forbid(unsafe_code)]

pub mod br;
pub mod flow;
pub mod game;

pub use br::{best_response, max_regret, FractionalBrOptions, FractionalOutcome};
pub use flow::{FlowNetwork, FlowResult};
pub use game::{Allocation, FractionalConfig, FractionalGame};

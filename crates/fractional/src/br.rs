//! Discretized fractional best response and regret.
//!
//! Exact over the `1/D` lattice: enumerate every allocation of budget units
//! across affordable targets (a bounded-knapsack composition search), price
//! each through the flow oracle, and keep the cheapest. The *regret* of a
//! node is how much it could save; the maximum regret over nodes measures
//! how far a profile is from equilibrium. Theorem 3 predicts regret → 0 as
//! `D → ∞`; E3 plots exactly that.

use bbc_core::{Error, NodeId, Result};

use crate::game::{Allocation, FractionalConfig, FractionalGame};

/// Options for the lattice search.
#[derive(Clone, Copy, Debug)]
pub struct FractionalBrOptions {
    /// Abort after evaluating this many allocations.
    pub allocation_limit: u64,
}

impl Default for FractionalBrOptions {
    fn default() -> Self {
        Self {
            allocation_limit: 5_000_000,
        }
    }
}

/// Result of a fractional best-response search.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FractionalOutcome {
    /// The deviating node.
    pub node: NodeId,
    /// Scaled cost of the current allocation.
    pub current_cost: u64,
    /// Scaled cost of the best allocation found.
    pub best_cost: u64,
    /// The best allocation found.
    pub best_allocation: Allocation,
    /// Allocations priced.
    pub evaluated: u64,
}

impl FractionalOutcome {
    /// Scaled regret: how much the node could save by redeploying.
    pub fn regret(&self) -> u64 {
        self.current_cost.saturating_sub(self.best_cost)
    }
}

/// Exact best response of `u` over the `1/D` lattice.
///
/// # Errors
///
/// [`Error::SearchBudgetExceeded`] when the composition space outgrows
/// `options.allocation_limit`.
pub fn best_response(
    game: &FractionalGame<'_>,
    config: &FractionalConfig,
    u: NodeId,
    options: &FractionalBrOptions,
) -> Result<FractionalOutcome> {
    let current_cost = game.node_cost_scaled(config, u);
    let targets = game.spec().affordable_targets(u);
    let budget = game.budget_units(u);

    let mut best_cost = u64::MAX;
    let mut best_allocation = Vec::new();
    let mut evaluated = 0u64;
    let mut scratch = config.clone();
    let mut current: Allocation = Vec::new();

    // DFS over unit assignments target-by-target. Units are only meaningful
    // in multiples that the budget supports; we enumerate every split.
    #[allow(clippy::too_many_arguments)]
    fn rec(
        game: &FractionalGame<'_>,
        u: NodeId,
        targets: &[NodeId],
        idx: usize,
        remaining: u64,
        current: &mut Allocation,
        scratch: &mut FractionalConfig,
        best_cost: &mut u64,
        best_allocation: &mut Allocation,
        evaluated: &mut u64,
        limit: u64,
    ) -> Result<()> {
        if idx == targets.len() {
            *evaluated += 1;
            if *evaluated > limit {
                return Err(Error::SearchBudgetExceeded { limit });
            }
            scratch
                .set_allocation(game, u, current.clone())
                // bbc-lint: allow(panic, the enumerator only yields allocations on the budget simplex)
                .expect("enumerated allocation is valid");
            let cost = game.node_cost_scaled(scratch, u);
            if cost < *best_cost {
                *best_cost = cost;
                *best_allocation = current.clone();
            }
            return Ok(());
        }
        let t = targets[idx];
        let price = game.spec().link_cost(u, t).max(1);
        let max_units = (remaining / price).min(game.resolution());
        for units in 0..=max_units {
            if units > 0 {
                current.push((t, units));
            }
            rec(
                game,
                u,
                targets,
                idx + 1,
                remaining - units * price,
                current,
                scratch,
                best_cost,
                best_allocation,
                evaluated,
                limit,
            )?;
            if units > 0 {
                current.pop();
            }
        }
        Ok(())
    }

    rec(
        game,
        u,
        &targets,
        0,
        budget,
        &mut current,
        &mut scratch,
        &mut best_cost,
        &mut best_allocation,
        &mut evaluated,
        options.allocation_limit,
    )?;

    Ok(FractionalOutcome {
        node: u,
        current_cost,
        best_cost: best_cost.min(current_cost),
        best_allocation,
        evaluated,
    })
}

/// Maximum scaled regret over all nodes: `0` certifies an exact lattice
/// equilibrium.
///
/// # Errors
///
/// Propagates [`best_response`] failures.
pub fn max_regret(
    game: &FractionalGame<'_>,
    config: &FractionalConfig,
    options: &FractionalBrOptions,
) -> Result<u64> {
    let mut worst = 0u64;
    for u in NodeId::all(config.node_count()) {
        worst = worst.max(best_response(game, config, u, options)?.regret());
    }
    Ok(worst)
}

/// Iterates fractional best responses (round-robin) until a full quiet round
/// or `max_rounds`; returns the final profile and its max regret.
///
/// # Errors
///
/// Propagates [`best_response`] failures.
pub fn iterate_best_responses(
    game: &FractionalGame<'_>,
    mut config: FractionalConfig,
    max_rounds: usize,
    options: &FractionalBrOptions,
) -> Result<(FractionalConfig, u64)> {
    for _ in 0..max_rounds {
        let mut moved = false;
        for u in NodeId::all(config.node_count()) {
            let out = best_response(game, &config, u, options)?;
            if out.regret() > 0 {
                config
                    .set_allocation(game, u, out.best_allocation)
                    // bbc-lint: allow(panic, best_response returns allocations validated against the same game)
                    .expect("best response allocation is valid");
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    let regret = max_regret(game, &config, options)?;
    Ok((config, regret))
}

/// Runs round-robin fractional best responses from `config`, measuring the
/// max regret of every profile visited (including the start); returns the
/// smallest regret seen and the profile achieving it.
///
/// Best-response *dynamics* need not converge on matching-pennies-like
/// instances — play orbits the mixed equilibrium — so the right measure of
/// "the lattice admits an (approximate) equilibrium" is the minimum regret
/// along the orbit, not the final regret.
///
/// # Errors
///
/// Propagates [`best_response`] failures.
pub fn min_regret_along_dynamics(
    game: &FractionalGame<'_>,
    mut config: FractionalConfig,
    rounds: usize,
    options: &FractionalBrOptions,
) -> Result<(FractionalConfig, u64)> {
    let mut best_profile = config.clone();
    let mut best_regret = max_regret(game, &config, options)?;
    for _ in 0..rounds {
        if best_regret == 0 {
            break;
        }
        let mut moved = false;
        for u in NodeId::all(config.node_count()) {
            let out = best_response(game, &config, u, options)?;
            if out.regret() > 0 {
                config
                    .set_allocation(game, u, out.best_allocation)
                    // bbc-lint: allow(panic, best_response returns allocations validated against the same game)
                    .expect("best response allocation is valid");
                moved = true;
            }
        }
        let regret = max_regret(game, &config, options)?;
        if regret < best_regret {
            best_regret = regret;
            best_profile = config.clone();
        }
        if !moved {
            break;
        }
    }
    Ok((best_profile, best_regret))
}

/// Fictitious-play-style averaging: runs best-response dynamics and, after
/// each round, rounds the *time-average* allocation onto the lattice and
/// measures its regret; returns the lowest-regret averaged profile seen.
///
/// Rationale: the lattice best response is always "pure" (flow cost is
/// convex in a node's own capacities, so concentrating units on the cheapest
/// routes is optimal against fixed opponents), which means raw dynamics
/// never visits mixed profiles. On matching-pennies-like instances the
/// orbit's time-average approaches the mixed equilibrium instead — the
/// classical fictitious-play phenomenon — and its regret is the right
/// yardstick for Theorem 3's existence claim on the lattice.
///
/// # Errors
///
/// Propagates [`best_response`] failures.
pub fn averaged_play_regret(
    game: &FractionalGame<'_>,
    start: FractionalConfig,
    rounds: usize,
    options: &FractionalBrOptions,
) -> Result<(FractionalConfig, u64)> {
    let n = start.node_count();
    let total = game.spec().node_count();
    // Cumulative unit counts per (node, target).
    let mut sums: Vec<Vec<u64>> = vec![vec![0; total]; n];
    let mut config = start;
    let mut best: Option<(FractionalConfig, u64)> = None;

    for round in 1..=rounds {
        for u in NodeId::all(n) {
            let out = best_response(game, &config, u, options)?;
            if out.regret() > 0 {
                config
                    .set_allocation(game, u, out.best_allocation)
                    // bbc-lint: allow(panic, best_response returns allocations validated against the same game)
                    .expect("best response allocation is valid");
            }
        }
        for (u, sum_row) in sums.iter_mut().enumerate() {
            for &(v, units) in config.allocation(NodeId::new(u)) {
                sum_row[v.index()] += units;
            }
        }
        // Round the running average onto the lattice.
        let mut averaged = FractionalConfig::empty(n);
        for (u, sum_row) in sums.iter().enumerate() {
            let alloc = round_average_to_lattice(game, NodeId::new(u), sum_row, round as u64);
            averaged
                .set_allocation(game, NodeId::new(u), alloc)
                // bbc-lint: allow(panic, rounding preserves the row sum, which equals the budget)
                .expect("rounded average respects the budget");
        }
        let regret = max_regret(game, &averaged, options)?;
        if best.as_ref().is_none_or(|(_, b)| regret < *b) {
            best = Some((averaged, regret));
        }
        if matches!(best, Some((_, 0))) {
            break;
        }
    }
    // bbc-lint: allow(panic, the loop body runs at least once and always sets best)
    Ok(best.expect("at least one round ran"))
}

/// Rounds `sums/rounds` to a feasible lattice allocation: floor every entry,
/// then hand remaining affordable units to the largest remainders.
fn round_average_to_lattice(
    game: &FractionalGame<'_>,
    u: NodeId,
    sums: &[u64],
    rounds: u64,
) -> Allocation {
    let mut alloc: Vec<(NodeId, u64)> = Vec::new();
    let mut remainders: Vec<(u64, NodeId)> = Vec::new();
    let mut spent = 0u64;
    for (v, &s) in sums.iter().enumerate() {
        if v == u.index() || s == 0 {
            continue;
        }
        let vv = NodeId::new(v);
        let floor = s / rounds;
        let rem = s % rounds;
        if floor > 0 {
            spent += floor * game.spec().link_cost(u, vv);
            alloc.push((vv, floor));
        }
        if rem > 0 {
            remainders.push((rem, vv));
        }
    }
    remainders.sort_by(|a, b| b.cmp(a));
    let budget = game.budget_units(u);
    for (_, v) in remainders {
        let price = game.spec().link_cost(u, v);
        if spent + price <= budget {
            spent += price;
            match alloc.iter_mut().find(|(t, _)| *t == v) {
                Some((_, units)) => *units += 1,
                None => alloc.push((v, 1)),
            }
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::{Configuration, GameSpec};

    fn v(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn opts() -> FractionalBrOptions {
        FractionalBrOptions::default()
    }

    #[test]
    fn disconnected_node_buys_links() {
        let spec = GameSpec::uniform(3, 1);
        let game = FractionalGame::new(&spec, 2);
        let mut cfg = FractionalConfig::empty(3);
        cfg.set_allocation(&game, v(1), vec![(v(2), 2)]).unwrap();
        cfg.set_allocation(&game, v(2), vec![(v(0), 2)]).unwrap();
        let out = best_response(&game, &cfg, v(0), &opts()).unwrap();
        assert!(out.regret() > 0);
        assert!(!out.best_allocation.is_empty());
        // Best: all units toward 1 (reaching 1 at 1 and 2 at 2).
        assert_eq!(out.best_allocation, vec![(v(1), 2)]);
    }

    #[test]
    fn integral_equilibrium_has_zero_regret_on_lattice() {
        // A directed 3-cycle is a pure NE of the integral game; its lift
        // should have zero regret for D = 1 (same strategy space).
        let spec = GameSpec::uniform(3, 1);
        let cfg = Configuration::from_strategies(&spec, vec![vec![v(1)], vec![v(2)], vec![v(0)]])
            .unwrap();
        let game = FractionalGame::new(&spec, 1);
        let fcfg = FractionalConfig::from_integral(&game, &cfg);
        assert_eq!(max_regret(&game, &fcfg, &opts()).unwrap(), 0);
    }

    #[test]
    fn best_response_never_reports_negative_gain() {
        let spec = GameSpec::uniform(4, 1);
        let game = FractionalGame::new(&spec, 2);
        let cfg = FractionalConfig::from_integral(&game, &Configuration::random(&spec, 3));
        for u in NodeId::all(4) {
            let out = best_response(&game, &cfg, u, &opts()).unwrap();
            assert!(out.best_cost <= out.current_cost);
        }
    }

    #[test]
    fn iteration_reaches_zero_regret_on_uniform_games() {
        let spec = GameSpec::uniform(4, 1);
        let game = FractionalGame::new(&spec, 2);
        let (final_cfg, regret) =
            iterate_best_responses(&game, FractionalConfig::empty(4), 50, &opts()).unwrap();
        assert_eq!(regret, 0, "final profile: {final_cfg:?}");
    }

    #[test]
    fn allocation_limit_enforced() {
        let spec = GameSpec::uniform(12, 6);
        let game = FractionalGame::new(&spec, 8);
        let cfg = FractionalConfig::empty(12);
        let tight = FractionalBrOptions {
            allocation_limit: 50,
        };
        assert!(matches!(
            best_response(&game, &cfg, v(0), &tight),
            Err(Error::SearchBudgetExceeded { limit: 50 })
        ));
    }
}

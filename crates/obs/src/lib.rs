//! Observability substrate for the BBC workspace.
//!
//! Three pieces, all observational by construction:
//!
//! - [`Registry`] — a named counter/gauge/histogram store with
//!   **insertion-stable iteration**, so rendering the same sequence of
//!   publishes always produces byte-identical documents. Effort metrics
//!   (search counters, cache hit rates, queue depths) flow through here and
//!   never feed back into a decision, digest, or fingerprint.
//! - [`Histogram`] — log-bucketed (power-of-two, HDR-style) latency
//!   histogram with p50/p90/p99/max extraction and exact count/sum/max.
//! - [`Clock`] — the workspace's only sanctioned route to wall-clock time.
//!   Library code takes a `&dyn Clock`; [`WallClock`] is the single blessed
//!   `Instant::now` site (machine-enforced by bbc-lint's L1 contract), and
//!   [`ManualClock`] makes timing-dependent code deterministically testable.
//!
//! The crate renders two wire formats itself (it is dependency-free, so no
//! serde): a versioned single-line JSON document ([`Registry::to_json`],
//! schema version [`METRICS_SCHEMA_VERSION`]) and Prometheus text
//! exposition ([`Registry::to_prometheus`]).
//!
//! # The observational-only invariant
//!
//! Nothing in this crate may influence engine state: metrics are published
//! *from* snapshots of existing counters, never consulted by the code that
//! produces them. The serve/experiments differential suites pin that
//! invariant end to end — every state digest and stream fingerprint is
//! byte-identical with metrics on, off, or sampled.

#![forbid(unsafe_code)]

pub mod clock;
pub mod histogram;
pub mod registry;

pub use clock::{Clock, ManualClock, WallClock};
pub use histogram::Histogram;
pub use registry::Registry;

/// Version stamped into every JSON metrics document (`"version"` field).
/// Bump when the document's shape changes incompatibly.
pub const METRICS_SCHEMA_VERSION: u64 = 1;

/// Integer rate in parts per thousand: `1000 * num / den`, 0 when `den`
/// is 0. Hit-rate gauges use this so the registry stays float-free (floats
/// would make rendered documents platform-sensitive).
#[must_use]
pub fn permille(num: u64, den: u64) -> u64 {
    if den == 0 {
        return 0;
    }
    let scaled = u128::from(num).saturating_mul(1000) / u128::from(den);
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::permille;

    #[test]
    fn permille_handles_edges() {
        assert_eq!(permille(0, 0), 0);
        assert_eq!(permille(5, 0), 0);
        assert_eq!(permille(1, 2), 500);
        assert_eq!(permille(2, 3), 666);
        assert_eq!(permille(3, 3), 1000);
        assert_eq!(permille(u64::MAX, 1), u64::MAX);
    }
}

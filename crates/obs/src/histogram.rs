//! A log-bucketed latency histogram.
//!
//! HDR-style with power-of-two buckets: bucket 0 holds the value 0, bucket
//! `i ≥ 1` holds values in `[2^(i-1), 2^i)`, bucket 64 tops out at
//! `u64::MAX`. That gives a fixed 65-slot footprint, constant-time
//! recording, and quantiles with ≤ 2× relative error — plenty for the
//! latency telemetry this crate serves, where the interesting signal is
//! orders of magnitude, not nanoseconds. Count, sum, and max are exact.

/// Number of buckets: one for zero plus one per bit position.
pub const BUCKET_COUNT: usize = 65;

/// A fixed-footprint power-of-two-bucket histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `64 - leading_zeros`.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket: 0, 1, 3, 7, …, `u64::MAX`.
fn bucket_upper(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The quantile `num/den` (e.g. `quantile(99, 100)` for p99): the upper
    /// bound of the first bucket whose cumulative count reaches the target
    /// rank, clamped to the exact max. Returns 0 on an empty histogram;
    /// `den` of 0 is treated as 1 (total function, no panics).
    #[must_use]
    pub fn quantile(&self, num: u64, den: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let den = den.max(1);
        // Target rank, 1-based, ceiling division in u128 so count*num
        // cannot overflow.
        let target = (u128::from(self.count) * u128::from(num))
            .div_ceil(u128::from(den))
            .max(1);
        let mut seen: u128 = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += u128::from(n);
            if seen >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (p50).
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(50, 100)
    }

    /// 90th percentile.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(90, 100)
    }

    /// 99th percentile.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(99, 100)
    }

    /// The populated buckets, in ascending order, as
    /// `(inclusive_upper_bound, count)` pairs — the sparse form the JSON
    /// document renders.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper(i), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_geometry() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
        // Every value lands in a bucket whose bound admits it.
        for v in [0u64, 1, 2, 3, 4, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(v <= bucket_upper(bucket_index(v)), "{v}");
        }
    }

    #[test]
    fn exact_aggregates() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        for v in [3u64, 9, 1000, 0, 9] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1021);
        assert_eq!(h.max(), 1000);
        assert!(!h.is_empty());
    }

    #[test]
    fn quantiles_are_bucket_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        // 99 fast samples in [8,15], one slow outlier.
        for _ in 0..99 {
            h.record(10);
        }
        h.record(5000);
        assert_eq!(h.p50(), 15, "p50 reports the fast bucket's bound");
        assert_eq!(h.p90(), 15);
        assert_eq!(h.p99(), 15);
        assert_eq!(h.quantile(100, 100), 5000, "p100 is the exact max");
        assert_eq!(h.max(), 5000);
    }

    #[test]
    fn quantile_edge_cases_are_total() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0, "empty histogram");
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.quantile(1, 0), 7, "zero denominator is tolerated");
        assert_eq!(h.quantile(0, 100), 7, "p0 still needs rank ≥ 1");
    }

    #[test]
    fn merge_is_bucketwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(4);
        b.record(4);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 108);
        assert_eq!(a.max(), 100);
        let buckets: Vec<_> = a.nonzero_buckets().collect();
        assert_eq!(buckets, vec![(7, 2), (127, 1)]);
    }
}

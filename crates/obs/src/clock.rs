//! The blessed wall-clock boundary.
//!
//! The workspace's L1 determinism contract (see `LINTS.md`) forbids
//! `Instant::now`/`SystemTime` in library code: wall-clock readings must
//! never reach a decision, digest, or fingerprint. Timing-instrumented code
//! therefore accepts a [`Clock`] and lets the *caller* decide whether time
//! is real ([`WallClock`]) or scripted ([`ManualClock`]). This file is the
//! one place bbc-lint's `clock` rule blesses a raw `Instant::now` — every
//! other occurrence anywhere in the workspace is a diagnostic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond clock. Implementations must be monotone
/// non-decreasing; the epoch is implementation-defined (callers only ever
/// subtract two readings).
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's (arbitrary) epoch.
    fn now_ns(&self) -> u64;
}

/// Real wall-clock time, measured as elapsed nanoseconds since the clock
/// was constructed. The single sanctioned `Instant::now` site in the
/// workspace.
#[derive(Clone, Debug)]
pub struct WallClock {
    base: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is the moment of construction.
    #[must_use]
    pub fn new() -> Self {
        Self {
            base: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        // Instant is monotone; 2^64 ns is ~584 years of uptime, so the
        // saturation arm is unreachable in practice but keeps this total.
        u64::try_from(self.base.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A scripted clock for deterministic tests: time advances only when the
/// test says so. Interior-mutable so it can stand behind the same
/// `&dyn Clock` as [`WallClock`].
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_ns`.
    #[must_use]
    pub fn new(start_ns: u64) -> Self {
        Self {
            now: AtomicU64::new(start_ns),
        }
    }

    /// Moves time forward by `delta_ns` (saturating).
    pub fn advance(&self, delta_ns: u64) {
        // fetch_update with a saturating add; a plain fetch_add could wrap.
        let _ = self
            .now
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                Some(t.saturating_add(delta_ns))
            });
    }

    /// Sets the absolute reading. Monotonicity is the caller's obligation.
    pub fn set(&self, now_ns: u64) {
        self.now.store(now_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_nondecreasing() {
        let clock = WallClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_scripted() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_ns(), 100);
        clock.advance(42);
        assert_eq!(clock.now_ns(), 142);
        clock.set(7);
        assert_eq!(clock.now_ns(), 7);
        clock.advance(u64::MAX);
        assert_eq!(clock.now_ns(), u64::MAX, "advance saturates");
    }

    #[test]
    fn clocks_share_the_trait_object_surface() {
        let manual = ManualClock::new(5);
        let wall = WallClock::new();
        let clocks: Vec<&dyn Clock> = vec![&manual, &wall];
        assert_eq!(clocks[0].now_ns(), 5);
        let _ = clocks[1].now_ns();
    }
}

//! The deterministic metric registry.
//!
//! Named counters (monotone), gauges (point-in-time), and latency
//! [`Histogram`]s, iterated and rendered in **insertion order** — never
//! hash order — so the same publish sequence always renders the same bytes.
//! The name index is a `HashMap` with the workspace's version-pinned FNV-1a
//! hasher spelled out (this crate is rank 0 and cannot import
//! `bbc_core::det`, so it carries its own copy of the pinned constants);
//! the hash only accelerates lookup and never decides order.
//!
//! Kind mismatches (observing into a counter, adding to a histogram) are
//! silently ignored: an observability layer must never panic or steer the
//! code it watches, so misuse degrades to a missing metric, not a fault.

// bbc-lint: allow(determinism, the alias below pins the hasher; the raw name is needed to define it)
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::histogram::Histogram;
use crate::METRICS_SCHEMA_VERSION;

/// Version-pinned FNV-1a 64 (same constants as `bbc_core::det::Fnv1a` and
/// the L4 content hash): offset `0xcbf2_9ce4_8422_2325`, prime
/// `0x0000_0100_0000_01b3`.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// One registered metric.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Slot {
    Counter(u64),
    Gauge(u64),
    // Boxed: a histogram is ~550 bytes of buckets, the other variants one
    // word — an unboxed variant would balloon every entry to bucket size.
    Histogram(Box<Histogram>),
}

/// A metric's current value, as surfaced by [`Registry::iter`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Metric<'a> {
    /// A monotone counter.
    Counter(u64),
    /// A point-in-time gauge.
    Gauge(u64),
    /// A latency histogram.
    Histogram(&'a Histogram),
}

/// Insertion-ordered counter/gauge/histogram store.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    entries: Vec<(String, Slot)>,
    index: HashMap<String, usize, BuildHasherDefault<Fnv1a>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn slot_mut(&mut self, name: &str, make: impl FnOnce() -> Slot) -> &mut Slot {
        let at = match self.index.get(name) {
            Some(&at) => at,
            None => {
                let at = self.entries.len();
                self.entries.push((name.to_string(), make()));
                self.index.insert(name.to_string(), at);
                at
            }
        };
        // The index only ever stores offsets of entries it just pushed.
        &mut self.entries[at].1
    }

    /// Adds `delta` to a counter, creating it at 0 first.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        if let Slot::Counter(v) = self.slot_mut(name, || Slot::Counter(0)) {
            *v = v.saturating_add(delta);
        }
    }

    /// Stores an absolute counter reading (for publishing an existing
    /// monotone counter wholesale). Keeps the larger of old and new so a
    /// stale publisher cannot make a counter regress.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        if let Slot::Counter(v) = self.slot_mut(name, || Slot::Counter(0)) {
            *v = (*v).max(value);
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, name: &str, value: u64) {
        if let Slot::Gauge(v) = self.slot_mut(name, || Slot::Gauge(0)) {
            *v = value;
        }
    }

    /// Records one sample into a histogram, creating it empty first.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Slot::Histogram(h) = self.slot_mut(name, || Slot::Histogram(Box::default())) {
            h.record(value);
        }
    }

    /// Merges a whole histogram under `name`.
    pub fn merge_histogram(&mut self, name: &str, other: &Histogram) {
        if let Slot::Histogram(h) = self.slot_mut(name, || Slot::Histogram(Box::default())) {
            h.merge(other);
        }
    }

    /// A counter's value, if `name` is a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.lookup(name) {
            Some(Slot::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.lookup(name) {
            Some(Slot::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// A histogram, if `name` is one.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.lookup(name) {
            Some(Slot::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    fn lookup(&self, name: &str) -> Option<&Slot> {
        self.index
            .get(name)
            .and_then(|&at| self.entries.get(at))
            .map(|(_, s)| s)
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// All metrics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Metric<'_>)> {
        self.entries.iter().map(|(name, slot)| {
            let metric = match slot {
                Slot::Counter(v) => Metric::Counter(*v),
                Slot::Gauge(v) => Metric::Gauge(*v),
                Slot::Histogram(h) => Metric::Histogram(h),
            };
            (name.as_str(), metric)
        })
    }

    /// Renders the versioned single-line JSON metrics document:
    ///
    /// ```json
    /// {"version":1,"counters":{…},"gauges":{…},"histograms":{"name":
    ///  {"count":N,"sum":S,"max":M,"p50":…,"p90":…,"p99":…,
    ///   "buckets":[[le,count],…]}}}
    /// ```
    ///
    /// Keys appear in registry insertion order; the document is a pure
    /// function of the publish sequence.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, slot) in &self.entries {
            match slot {
                Slot::Counter(v) => append_kv(&mut counters, name, &v.to_string()),
                Slot::Gauge(v) => append_kv(&mut gauges, name, &v.to_string()),
                Slot::Histogram(h) => append_kv(&mut histograms, name, &histogram_json(h)),
            }
        }
        format!(
            "{{\"version\":{METRICS_SCHEMA_VERSION},\"counters\":{{{counters}}},\
             \"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}"
        )
    }

    /// Renders Prometheus text exposition (metric names sanitized to the
    /// Prometheus charset, histograms as cumulative `_bucket{le=…}` series
    /// plus `_sum`/`_count`).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, slot) in &self.entries {
            let name = sanitize(name);
            match slot {
                Slot::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                Slot::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                Slot::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    for (le, count) in h.nonzero_buckets() {
                        cumulative += count;
                        out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                        h.count(),
                        h.sum(),
                        h.count()
                    ));
                }
            }
        }
        out
    }
}

/// Appends `"key":value` (JSON-escaping the key) with a comma separator.
fn append_kv(out: &mut String, key: &str, value: &str) {
    if !out.is_empty() {
        out.push(',');
    }
    out.push('"');
    for c in key.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push_str("\":");
    out.push_str(value);
}

fn histogram_json(h: &Histogram) -> String {
    let buckets: Vec<String> = h
        .nonzero_buckets()
        .map(|(le, n)| format!("[{le},{n}]"))
        .collect();
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count(),
        h.sum(),
        h.max(),
        h.p50(),
        h.p90(),
        h.p99(),
        buckets.join(",")
    )
}

/// Maps a registry name onto the Prometheus charset `[a-zA-Z0-9_:]`,
/// prefixing names that would start with a digit.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_pinned_vectors() {
        let hash = |bytes: &[u8]| {
            let mut h = Fnv1a::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(hash(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn iteration_is_insertion_ordered_not_hash_ordered() {
        let mut reg = Registry::new();
        for name in ["zebra", "alpha", "middle", "aardvark"] {
            reg.add_counter(name, 1);
        }
        reg.set_gauge("gauge/later", 9);
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(
            names,
            ["zebra", "alpha", "middle", "aardvark", "gauge/later"]
        );
    }

    #[test]
    fn counters_accumulate_and_never_regress() {
        let mut reg = Registry::new();
        reg.add_counter("c", 2);
        reg.add_counter("c", 3);
        assert_eq!(reg.counter("c"), Some(5));
        reg.set_counter("c", 4);
        assert_eq!(reg.counter("c"), Some(5), "set_counter keeps the max");
        reg.set_counter("c", 50);
        assert_eq!(reg.counter("c"), Some(50));
        assert_eq!(reg.counter("missing"), None);
    }

    #[test]
    fn kind_mismatches_are_ignored_not_panics() {
        let mut reg = Registry::new();
        reg.add_counter("c", 1);
        reg.observe("c", 100); // wrong kind: dropped
        reg.set_gauge("c", 100); // wrong kind: dropped
        assert_eq!(reg.counter("c"), Some(1));
        assert_eq!(reg.histogram("c"), None);
        assert_eq!(reg.gauge("c"), None);
    }

    #[test]
    fn json_document_is_versioned_and_stable() {
        let mut reg = Registry::new();
        reg.add_counter("requests", 3);
        reg.set_gauge("queue_depth", 2);
        reg.observe("latency_ns", 10);
        reg.observe("latency_ns", 1000);
        let doc = reg.to_json();
        assert!(doc.starts_with("{\"version\":1,"), "{doc}");
        assert!(doc.contains("\"counters\":{\"requests\":3}"), "{doc}");
        assert!(doc.contains("\"gauges\":{\"queue_depth\":2}"), "{doc}");
        assert!(doc.contains("\"latency_ns\":{\"count\":2,"), "{doc}");
        assert!(doc.contains("\"buckets\":[[15,1],[1023,1]]"), "{doc}");
        assert_eq!(doc, reg.to_json(), "rendering is pure");
        assert!(!doc.contains('\n'), "single line, jsonl-embeddable");
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_sanitized() {
        let mut reg = Registry::new();
        reg.add_counter("serve/requests", 7);
        reg.observe("op latency", 3);
        reg.observe("op latency", 200);
        let text = reg.to_prometheus();
        assert!(
            text.contains("# TYPE serve_requests counter\nserve_requests 7\n"),
            "{text}"
        );
        assert!(text.contains("op_latency_bucket{le=\"3\"} 1\n"), "{text}");
        assert!(text.contains("op_latency_bucket{le=\"255\"} 2\n"), "{text}");
        assert!(
            text.contains("op_latency_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(text.contains("op_latency_sum 203\n"), "{text}");
        assert!(text.contains("op_latency_count 2\n"), "{text}");
    }
}

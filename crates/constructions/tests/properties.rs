//! Property-based tests for the paper's constructions.

use bbc_constructions::{CayleyGraph, ForestOfWillows, MaxPoaGraph, RingWithPath};
use bbc_core::{Evaluator, NodeId};
use bbc_graph::scc::is_strongly_connected;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn willow_structure_invariants(k in 2u64..=4, h in 1u32..=3, l in 0u32..=3) {
        prop_assume!(ForestOfWillows::new(k, h, l).is_some());
        let fow = ForestOfWillows::new(k, h, l).unwrap();
        let spec = fow.spec();
        let cfg = fow.configuration();
        // Counting formula: n = k·((k^{h+1}−1)/(k−1) + k^h·l).
        let kk = k as usize;
        let tree = (kk.pow(h + 1) - 1) / (kk - 1);
        prop_assert_eq!(fow.node_count(), kk * (tree + kk.pow(h) * l as usize));
        // Every node spends its whole budget; the graph is strongly
        // connected.
        for u in NodeId::all(fow.node_count()) {
            prop_assert_eq!(cfg.out_degree(u), kk);
            prop_assert!(spec.validate_strategy(u, cfg.strategy(u)).is_ok());
        }
        prop_assert!(is_strongly_connected(&cfg.to_graph(&spec)));
    }

    #[test]
    fn willow_sections_are_cost_isomorphic(k in 2u64..=3, h in 1u32..=3, l in 0u32..=2) {
        // Symmetry that E5's class-exact mode relies on: node costs repeat
        // across sections with period section_size.
        prop_assume!(ForestOfWillows::new(k, h, l).is_some());
        let fow = ForestOfWillows::new(k, h, l).unwrap();
        let spec = fow.spec();
        let cfg = fow.configuration();
        let costs = Evaluator::new(&spec).node_costs(&cfg);
        let section = fow.section_size();
        for u in 0..fow.node_count() {
            prop_assert_eq!(costs[u], costs[u % section], "node {} vs {}", u, u % section);
        }
    }

    #[test]
    fn cayley_graphs_are_vertex_transitive_in_cost(
        n in 5u64..=40,
        off1 in 1u64..=10,
        off2 in 1u64..=10,
    ) {
        prop_assume!(off1 % n != 0 && off2 % n != 0 && off1 % n != off2 % n);
        let c = CayleyGraph::circulant(n, &[off1, off2]).expect("valid circulant");
        let spec = c.spec();
        let cfg = c.configuration();
        let costs = Evaluator::new(&spec).node_costs(&cfg);
        // Every node sees an isomorphic view: all costs equal.
        for &cost in &costs {
            prop_assert_eq!(cost, costs[0]);
        }
    }

    #[test]
    fn cayley_group_addition_is_commutative_and_cyclic(
        m1 in 2u64..=5,
        m2 in 2u64..=5,
        a in 0usize..=24,
        b in 0usize..=24,
    ) {
        let g = bbc_constructions::AbelianGroup::new(vec![m1, m2]).unwrap();
        let a = a % g.order();
        let b = b % g.order();
        prop_assert_eq!(g.add(a, b), g.add(b, a));
        prop_assert_eq!(g.add(a, g.identity()), a);
        // Adding the generator `order` times cycles back.
        let mut x = g.identity();
        for _ in 0..g.order() {
            x = g.add(x, a);
        }
        // x = order·a; in a group of this order, order·a = identity only if
        // the element order divides the group order — which it always does.
        prop_assert_eq!(x, g.identity());
    }

    #[test]
    fn max_poa_graph_invariants(k in 3u64..=5, l in 2usize..=6) {
        prop_assume!(MaxPoaGraph::new(k, l).is_some());
        let g = MaxPoaGraph::new(k, l).unwrap();
        let spec = g.spec();
        let cfg = g.configuration();
        prop_assert_eq!(g.node_count(), (2 * k as usize - 1) * l + 1);
        for u in NodeId::all(g.node_count()) {
            prop_assert!(cfg.out_degree(u) <= k as usize);
            prop_assert!(spec.validate_strategy(u, cfg.strategy(u)).is_ok());
        }
        prop_assert!(is_strongly_connected(&cfg.to_graph(&spec)));
    }

    #[test]
    fn ring_with_path_reaches_connectivity_within_bound(ring in 3usize..=10, path in 1usize..=6) {
        prop_assume!(ring >= path);
        let inst = RingWithPath::new(ring, path).unwrap();
        let spec = inst.spec();
        let n = inst.node_count() as u64;
        let mut walk = bbc_core::Walk::new(&spec, inst.configuration())
            .with_scheduler(inst.round_order())
            .detect_cycles(false);
        let _ = walk.run(n * n + n).unwrap();
        let steps = walk.stats().steps_to_strong_connectivity;
        prop_assert!(steps.is_some(), "never connected");
        prop_assert!(steps.unwrap() <= n * n, "Theorem 6 bound violated");
    }
}

//! The high-cost BBC-max equilibrium of Theorem 8 (Figure 6).
//!
//! For `k ≥ 3`: `2k−1` tails of `l` nodes each and one root `r`. The root
//! links the first node of tails `1..k` (segment `S1`); each remaining tail
//! is its own segment. The last node of every tail links the head of every
//! segment; every other tail node spends its budget on its successor, the
//! root, and the last node of a tail. The sum of max-distances is
//! `Ω(n²/k)`, while the social optimum is `O(n log_k n)` — the price of
//! anarchy lower bound `Ω(n / (k log_k n))`.
//!
//! The paper sketches a `k = 2` adjustment (three paths plus one extra
//! node); this module implements `k ≥ 3` and exposes the parameters so the
//! experiment can sweep them. Stability is verified *computationally* in E10
//! rather than assumed.

use serde::{Deserialize, Serialize};

use bbc_core::{Configuration, GameSpec, NodeId};

/// Parameters of the Figure 6 construction.
///
/// # Examples
///
/// ```
/// use bbc_constructions::MaxPoaGraph;
///
/// let g = MaxPoaGraph::new(3, 4).expect("valid");
/// assert_eq!(g.node_count(), 1 + 5 * 4); // root + (2k−1)·l
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MaxPoaGraph {
    k: u64,
    l: usize,
}

impl MaxPoaGraph {
    /// Creates the construction with `2k−1` tails of length `l`. Requires
    /// `k ≥ 3` (the paper's main case) and `l ≥ 2`.
    pub fn new(k: u64, l: usize) -> Option<Self> {
        (k >= 3 && l >= 2 && (2 * k as usize - 1) * l < (1 << 18)).then_some(Self { k, l })
    }

    /// Budget per node.
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Tail length.
    pub fn l(&self) -> usize {
        self.l
    }

    /// Number of tails, `2k−1`.
    pub fn tail_count(&self) -> usize {
        2 * self.k as usize - 1
    }

    /// Total node count `n = (2k−1)·l + 1`.
    pub fn node_count(&self) -> usize {
        self.tail_count() * self.l + 1
    }

    /// The root node `r`.
    pub fn root(&self) -> NodeId {
        NodeId::new(0)
    }

    /// The `p`-th node of tail `t` (both 0-based; `p = 0` is the head).
    pub fn tail_node(&self, t: usize, p: usize) -> NodeId {
        assert!(
            t < self.tail_count() && p < self.l,
            "tail index out of range"
        );
        NodeId::new(1 + t * self.l + p)
    }

    /// Heads of the `k` segments: `S1`'s head is the root; segment `j ≥ 2`
    /// is the single tail `k−1+j−1` and its head is that tail's first node.
    pub fn segment_heads(&self) -> Vec<NodeId> {
        let k = self.k as usize;
        let mut heads = vec![self.root()];
        for t in k..self.tail_count() {
            heads.push(self.tail_node(t, 0));
        }
        heads
    }

    /// The `(n,k)`-uniform BBC-max game this graph lives in.
    pub fn spec(&self) -> GameSpec {
        GameSpec::uniform(self.node_count(), self.k)
            .with_cost_model(bbc_core::CostModel::MaxDistance)
    }

    /// Builds the equilibrium configuration.
    pub fn configuration(&self) -> Configuration {
        let spec = self.spec();
        let k = self.k as usize;
        let heads = self.segment_heads();
        let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); self.node_count()];

        // Root links the first node of tails 0..k (its own segment's tails).
        lists[self.root().index()] = (0..k).map(|t| self.tail_node(t, 0)).collect();

        for t in 0..self.tail_count() {
            for p in 0..self.l {
                let node = self.tail_node(t, p);
                let mut targets = Vec::with_capacity(k);
                if p == self.l - 1 {
                    // Last node: the head of every segment.
                    targets.extend(heads.iter().copied());
                } else {
                    // Mid node: successor, root, and the last node of the
                    // next tail (deterministic choice of the paper's
                    // "a tail"); remaining budget filled with further
                    // last-nodes, whose placement "doesn't matter".
                    targets.push(self.tail_node(t, p + 1));
                    if !targets.contains(&self.root()) {
                        targets.push(self.root());
                    }
                    let mut fill = 0usize;
                    while targets.len() < k {
                        let other = (t + 1 + fill) % self.tail_count();
                        let last = self.tail_node(other, self.l - 1);
                        if !targets.contains(&last) && last != node {
                            targets.push(last);
                        }
                        fill += 1;
                    }
                }
                targets.sort_unstable();
                targets.dedup();
                lists[node.index()] = targets;
            }
        }
        // bbc-lint: allow(panic, the construction spends exactly the per-node budget by design)
        Configuration::from_strategies(&spec, lists).expect("construction is within budget")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::Evaluator;
    use bbc_graph::scc::is_strongly_connected;

    #[test]
    fn parameters_validated() {
        assert!(
            MaxPoaGraph::new(2, 4).is_none(),
            "k=2 is the paper's separate case"
        );
        assert!(MaxPoaGraph::new(3, 1).is_none());
        assert!(MaxPoaGraph::new(3, 2).is_some());
    }

    #[test]
    fn counts_match_formula() {
        let g = MaxPoaGraph::new(4, 5).unwrap();
        assert_eq!(g.tail_count(), 7);
        assert_eq!(g.node_count(), 36);
        assert_eq!(g.segment_heads().len(), 4);
    }

    #[test]
    fn all_degrees_within_budget_and_graph_connected() {
        for (k, l) in [(3u64, 3usize), (3, 5), (4, 3)] {
            let g = MaxPoaGraph::new(k, l).unwrap();
            let spec = g.spec();
            let cfg = g.configuration();
            for u in NodeId::all(g.node_count()) {
                assert!(cfg.out_degree(u) <= k as usize, "(k={k},l={l}) node {u}");
            }
            assert!(
                is_strongly_connected(&cfg.to_graph(&spec)),
                "(k={k},l={l}) must be strongly connected"
            );
        }
    }

    #[test]
    fn last_tail_nodes_link_every_segment_head() {
        let g = MaxPoaGraph::new(3, 3).unwrap();
        let cfg = g.configuration();
        let mut heads = g.segment_heads();
        heads.sort_unstable();
        for t in 0..g.tail_count() {
            assert_eq!(cfg.strategy(g.tail_node(t, 2)), &heads[..]);
        }
    }

    #[test]
    fn total_max_cost_scales_like_n_squared_over_k() {
        // The sum of max distances should be Θ(n·l) = Θ(n²/k).
        let g = MaxPoaGraph::new(3, 8).unwrap();
        let spec = g.spec();
        let mut eval = Evaluator::new(&spec);
        let total = eval.social_cost(&g.configuration());
        let n = g.node_count() as u64;
        assert!(total >= n * (g.l() as u64) / 2, "total {total} too small");
        assert!(total <= n * 3 * (g.l() as u64), "total {total} too large");
    }
}

//! The matching-pennies gadgets behind the no-equilibrium theorems.
//!
//! Theorem 1 builds an 11-node non-uniform BBC game with no pure Nash
//! equilibrium by wiring two five-node sub-gadgets into a matching-pennies
//! payoff structure, plus an anchor node `X`. Figure 1's exact edge set is
//! not recoverable from the paper's text, so this module reconstructs it
//! from the proof's case analysis (every sentence of which pins down an
//! edge — see the comments on [`SHOWN_LINKS`]), and exposes three variants:
//!
//! * [`GadgetVariant::Restricted`] — "omitted" links are unaffordable
//!   (non-uniform link *costs*). This makes the paper's implicit restriction
//!   to drawn links exact, and the no-equilibrium scan over the full joint
//!   strategy space is unconditionally exhaustive.
//! * [`GadgetVariant::UniformLengths`] — Theorem 1's actual statement
//!   (uniform costs, lengths, budgets; non-uniform preferences), with the
//!   `α/β/γ/ζ/ξ` preference construction of the proof.
//! * [`GadgetVariant::NonuniformLengths`] — the proof's warm-up instance
//!   with omitted links of length `L`.
//!
//! The experiments (E1) enumerate candidate profiles for each variant and
//! check every candidate against the full deviation space; discrepancies
//! between variants are reported rather than hidden (see EXPERIMENTS.md).

use bbc_core::{
    enumerate::{all_strategies, ProfileSpace},
    Configuration, CostModel, GameSpec, NodeId, Result,
};

/// Node indices of the Theorem 1 gadget.
///
/// `0C/1C` are the sub-gadget centers, `*LT/*RT` the tops, `*LB/*RB` the
/// bottoms, `X` the anchor the bottoms fall back to.
pub mod node {
    use bbc_core::NodeId;

    /// Center of sub-gadget 0.
    pub const C0: NodeId = NodeId::from_const(0);
    /// Left top of sub-gadget 0.
    pub const LT0: NodeId = NodeId::from_const(1);
    /// Right top of sub-gadget 0.
    pub const RT0: NodeId = NodeId::from_const(2);
    /// Left bottom of sub-gadget 0.
    pub const LB0: NodeId = NodeId::from_const(3);
    /// Right bottom of sub-gadget 0.
    pub const RB0: NodeId = NodeId::from_const(4);
    /// Center of sub-gadget 1.
    pub const C1: NodeId = NodeId::from_const(5);
    /// Left top of sub-gadget 1.
    pub const LT1: NodeId = NodeId::from_const(6);
    /// Right top of sub-gadget 1.
    pub const RT1: NodeId = NodeId::from_const(7);
    /// Left bottom of sub-gadget 1.
    pub const LB1: NodeId = NodeId::from_const(8);
    /// Right bottom of sub-gadget 1.
    pub const RB1: NodeId = NodeId::from_const(9);
    /// The anchor node.
    pub const X: NodeId = NodeId::from_const(10);
}

/// Human-readable node names, indexed by node id.
pub const NODE_NAMES: [&str; 11] = [
    "0C", "0LT", "0RT", "0LB", "0RB", "1C", "1LT", "1RT", "1LB", "1RB", "X",
];

/// The drawn ("shown") links of Figure 1, as reconstructed from the proof of
/// Theorem 1. Each group is forced by a sentence of the case analysis:
///
/// * centers offer both tops (`0C→0LT`, `0C→0RT`, …) — the "switch";
/// * tops couple the gadgets: *"0C does not have a path to 1C"* after
///   `0C→0LT, 1RB→X` forces `0LT→1RB`; *"1C sets its link to 1RT"* (to reach
///   `0C` through `0RB`) forces `1RT→0RB`, and symmetrically `0RT→1LB`,
///   `1LT→0LB`. Note the deliberate asymmetry — gadget 0's tops cross
///   left-to-right, gadget 1's straight — which encodes one player matching
///   and the other mismatching (the pennies);
/// * bottoms can reach their center (*"0RB sets its link to 0C"*) and the
///   anchor (`w(u, X) = 1` plus the length-1 links `(·B, X)` the proof sets
///   explicitly).
pub const SHOWN_LINKS: [(usize, usize); 16] = [
    // Center switches.
    (0, 1),
    (0, 2),
    (5, 6),
    (5, 7),
    // Cross-gadget coupling via the tops.
    (1, 9), // 0LT -> 1RB
    (2, 8), // 0RT -> 1LB
    (6, 3), // 1LT -> 0LB
    (7, 4), // 1RT -> 0RB
    // Bottoms to their centers.
    (3, 0),
    (4, 0),
    (8, 5),
    (9, 5),
    // Bottoms to the anchor.
    (3, 10),
    (4, 10),
    (8, 10),
    (9, 10),
];

/// Which flavour of the Theorem 1 instance to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GadgetVariant {
    /// Omitted links cost more than the budget: the strategy space is
    /// exactly the drawn links. Non-uniform link costs; `X` cannot buy
    /// (pure sink). The headline no-equilibrium certificate.
    Restricted,
    /// Theorem 1's statement: uniform link costs, lengths and budgets;
    /// non-uniform preferences only (`α=8, β=6, γ=4, ζ=10, ξ=1`, satisfying
    /// the proof's inequalities for any `M ≥ 4`).
    UniformLengths,
    /// The proof's warm-up: omitted links exist but have length `L`.
    NonuniformLengths {
        /// Length of every omitted link (the proof's `L`).
        omitted_length: u64,
    },
}

/// Builder for Theorem 1 gadget instances.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Gadget {
    variant: GadgetVariant,
}

impl Gadget {
    /// Number of nodes (11).
    pub const NODE_COUNT: usize = 11;

    /// Creates a gadget of the given variant.
    pub fn new(variant: GadgetVariant) -> Self {
        Self { variant }
    }

    /// The variant.
    pub fn variant(&self) -> GadgetVariant {
        self.variant
    }

    /// Builds the game specification.
    pub fn spec(&self) -> GameSpec {
        let n = Self::NODE_COUNT;
        let shown = |u: usize, v: usize| SHOWN_LINKS.contains(&(u, v));
        let mut b = GameSpec::builder(n).default_weight(0).default_budget(1);

        match self.variant {
            GadgetVariant::Restricted => {
                // Drawn links cost 1, everything else is unaffordable. X is a
                // pure sink: all its links are priced out.
                for u in 0..n {
                    for v in 0..n {
                        if u == v {
                            continue;
                        }
                        let affordable = shown(u, v) && u != node::X.index();
                        b = b.link_cost(u, v, if affordable { 1 } else { 2 });
                    }
                }
            }
            GadgetVariant::UniformLengths => {
                // Everything uniform except preferences.
            }
            GadgetVariant::NonuniformLengths { omitted_length } => {
                assert!(
                    omitted_length >= 2,
                    "omitted links must be longer than drawn ones"
                );
                for u in 0..n {
                    for v in 0..n {
                        if u != v && !shown(u, v) {
                            b = b.link_length(u, v, omitted_length);
                        }
                    }
                }
            }
        }

        // Preferences. Tops want their cross-coupled bottom (the drawn
        // solid edge), weight 1.
        b = b
            .weight(node::LT0.index(), node::RB1.index(), 1)
            .weight(node::RT0.index(), node::LB1.index(), 1)
            .weight(node::LT1.index(), node::LB0.index(), 1)
            .weight(node::RT1.index(), node::RB0.index(), 1);

        match self.variant {
            GadgetVariant::UniformLengths => {
                // The proof's switch weights: ζ on own tops, ξ < ζ on the
                // other center; bottoms use α > β, γ with
                // α(M−1) < β(M−1) + γ(M−2).
                let (zeta, xi) = (10, 1);
                let (alpha, beta, gamma) = (8, 6, 4);
                for (c, lt, rt) in [
                    (node::C0, node::LT0, node::RT0),
                    (node::C1, node::LT1, node::RT1),
                ] {
                    b = b
                        .weight(c.index(), lt.index(), zeta)
                        .weight(c.index(), rt.index(), zeta);
                }
                b = b.weight(node::C0.index(), node::C1.index(), xi).weight(
                    node::C1.index(),
                    node::C0.index(),
                    xi,
                );
                for (bot, center, cross) in [
                    (node::LB0, node::C0, node::RT0),
                    (node::RB0, node::C0, node::LT0),
                    (node::LB1, node::C1, node::RT1),
                    (node::RB1, node::C1, node::LT1),
                ] {
                    b = b
                        .weight(bot.index(), node::X.index(), alpha)
                        .weight(bot.index(), center.index(), beta)
                        .weight(bot.index(), cross.index(), gamma);
                }
            }
            GadgetVariant::Restricted | GadgetVariant::NonuniformLengths { .. } => {
                // Theorem 1's original weights: solid center→top edges carry
                // weight 1, the centers want each other, bottoms weight their
                // crossover top 2 and X 1.
                for (c, lt, rt) in [
                    (node::C0, node::LT0, node::RT0),
                    (node::C1, node::LT1, node::RT1),
                ] {
                    b = b
                        .weight(c.index(), lt.index(), 1)
                        .weight(c.index(), rt.index(), 1);
                }
                b = b.weight(node::C0.index(), node::C1.index(), 1).weight(
                    node::C1.index(),
                    node::C0.index(),
                    1,
                );
                for (bot, cross) in [
                    (node::LB0, node::RT0),
                    (node::RB0, node::LT0),
                    (node::LB1, node::RT1),
                    (node::RB1, node::LT1),
                ] {
                    b = b.weight(bot.index(), cross.index(), 2).weight(
                        bot.index(),
                        node::X.index(),
                        1,
                    );
                }
            }
        }

        // bbc-lint: allow(panic, the Theorem 1 gadget parameters are fixed constants validated by the crate's tests)
        b.build().expect("gadget spec is valid")
    }

    /// The candidate profile space for the no-equilibrium scan.
    ///
    /// For [`GadgetVariant::Restricted`] this is the *full* joint strategy
    /// space (affordability already restricts it), so the scan is
    /// unconditionally exhaustive. For the other variants, the four top
    /// nodes are pinned to their unique positive-weight target — provably
    /// their strictly dominant strategy, since a direct drawn link achieves
    /// the minimum possible distance 1 while any other strategy leaves the
    /// target at distance ≥ 2 or unreachable — and every remaining node
    /// ranges over its full strategy space.
    ///
    /// # Errors
    ///
    /// Propagates strategy-enumeration failures (cannot happen for the
    /// gadget's budget of 1).
    pub fn candidate_space(&self, spec: &GameSpec) -> Result<ProfileSpace> {
        match self.variant {
            GadgetVariant::Restricted => ProfileSpace::full(spec, 1 << 12),
            _ => {
                let pinned: [(NodeId, NodeId); 4] = [
                    (node::LT0, node::RB1),
                    (node::RT0, node::LB1),
                    (node::LT1, node::LB0),
                    (node::RT1, node::RB0),
                ];
                let mut per_node = Vec::with_capacity(Self::NODE_COUNT);
                for u in NodeId::all(Self::NODE_COUNT) {
                    if let Some((_, target)) = pinned.iter().find(|(top, _)| *top == u) {
                        per_node.push(vec![vec![*target]]);
                    } else {
                        per_node.push(all_strategies(spec, u, 1 << 12)?);
                    }
                }
                ProfileSpace::from_candidates(spec, per_node)
            }
        }
    }

    /// The two "matching pennies" states of the proof's case analysis
    /// (everyone best-responding to `0C→0LT` and `0C→0RT` respectively),
    /// with `X` buying nothing. Useful as dynamics starting points.
    pub fn pennies_states(&self, spec: &GameSpec) -> (Configuration, Configuration) {
        let mk = |links: &[(NodeId, NodeId)]| {
            let mut lists = vec![Vec::new(); Self::NODE_COUNT];
            for &(u, v) in links {
                lists[u.index()].push(v);
            }
            // bbc-lint: allow(panic, pennies states buy one affordable link per center by construction)
            Configuration::from_strategies(spec, lists).expect("pennies state is valid")
        };
        let tops = [
            (node::LT0, node::RB1),
            (node::RT0, node::LB1),
            (node::LT1, node::LB0),
            (node::RT1, node::RB0),
        ];
        // State A: 0C→0LT; 0RB→0C, 0LB→X; 1C→1RT, 1RB→X, 1LB→1C.
        let mut a = tops.to_vec();
        a.extend([
            (node::C0, node::LT0),
            (node::RB0, node::C0),
            (node::LB0, node::X),
            (node::C1, node::RT1),
            (node::RB1, node::X),
            (node::LB1, node::C1),
        ]);
        // State B: 0C→0RT; 0LB→0C, 0RB→X; 1C→1LT, 1LB→X, 1RB→1C.
        let mut bstate = tops.to_vec();
        bstate.extend([
            (node::C0, node::RT0),
            (node::LB0, node::C0),
            (node::RB0, node::X),
            (node::C1, node::LT1),
            (node::LB1, node::X),
            (node::RB1, node::C1),
        ]);
        (mk(&a), mk(&bstate))
    }
}

/// A *minimal* no-equilibrium BBC game: 5 nodes, budget 1, uniform link
/// costs and lengths, non-uniform preferences only — found by exhaustive
/// seeded search and frozen here. Strengthens Theorem 1's `n ≥ 11`
/// construction: non-uniform preferences already break equilibrium existence
/// at `n = 5`. Verified no-NE over all `5⁵ = 3125` profiles in tests and E1.
pub fn minimal_no_ne_witness() -> GameSpec {
    // Row u = weights w(u, ·); discovered at search seed 26245.
    const W: [[u64; 5]; 5] = [
        [0, 2, 2, 0, 0],
        [2, 0, 0, 0, 1],
        [0, 2, 0, 1, 0],
        [0, 3, 1, 0, 3],
        [0, 1, 2, 3, 0],
    ];
    let mut b = GameSpec::builder(5).default_budget(1);
    for (u, row) in W.iter().enumerate() {
        for (v, &w) in row.iter().enumerate() {
            if u != v {
                b = b.weight(u, v, w);
            }
        }
    }
    // bbc-lint: allow(panic, the witness spec parameters are fixed constants validated by the crate's tests)
    b.build().expect("witness spec is valid")
}

/// The Theorem 1 restricted gadget re-read as a BBC-**max** game — the most
/// direct adaptation of Figure 1 toward Theorem 7's claim.
///
/// **Finding (E12):** this instance *does* admit pure Nash equilibria — 225
/// of them — all of the "mutual surrender" shape: once a sub-gadget's
/// crossover links die, every remaining option of the starved nodes costs
/// the full penalty `M`, and under max-cost a node indifferent at `M` is
/// stable. The matching-pennies engine that powers Theorem 1 therefore
/// stalls under the max model; Figure 5's sink chains are the paper's
/// countermeasure, but its 16-node wiring is not recoverable from the text
/// (see DESIGN.md) and every reconstruction we tried admits surrender
/// equilibria as well. E12 reports this as a reproduction discrepancy and
/// quantifies it.
pub fn max_gadget_spec() -> GameSpec {
    // Reuse the restricted Theorem-1 topology under the max-distance model,
    // with bottom weights per Theorem 7's switch: each bottom weighs its
    // crossover top and X equally (the proof's `a`), so its *max* distance
    // flips between "crossover reachable via center" and "anchor direct".
    let sum_spec = Gadget::new(GadgetVariant::Restricted).spec();
    let n = sum_spec.node_count();
    let mut b = GameSpec::builder(n).default_weight(0).default_budget(1);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b = b.link_cost(u, v, sum_spec.link_cost(NodeId::new(u), NodeId::new(v)));
                b = b.weight(u, v, sum_spec.weight(NodeId::new(u), NodeId::new(v)));
            }
        }
    }
    b.cost_model(CostModel::MaxDistance)
        .build()
        // bbc-lint: allow(panic, the max-gadget parameters are fixed constants validated by the crate's tests)
        .expect("max gadget spec is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::StabilityChecker;

    #[test]
    fn shown_links_have_expected_counts() {
        // 16 drawn links; every node except X and the tops has out-degree 2
        // available, tops 1, X 0.
        let mut out = [0usize; 11];
        for &(u, _) in &SHOWN_LINKS {
            out[u] += 1;
        }
        assert_eq!(out[node::C0.index()], 2);
        assert_eq!(out[node::LT0.index()], 1);
        assert_eq!(out[node::RB0.index()], 2);
        assert_eq!(out[node::X.index()], 0);
    }

    #[test]
    fn restricted_spec_prices_out_omitted_links() {
        let spec = Gadget::new(GadgetVariant::Restricted).spec();
        assert_eq!(spec.link_cost(node::C0, node::LT0), 1);
        assert_eq!(
            spec.link_cost(node::C0, node::C1),
            2,
            "omitted link unaffordable"
        );
        assert!(spec.affordable_targets(node::X).is_empty(), "X is a sink");
        assert_eq!(
            spec.affordable_targets(node::C0),
            vec![node::LT0, node::RT0]
        );
    }

    #[test]
    fn uniform_variant_is_actually_uniform_in_costs_and_lengths() {
        let spec = Gadget::new(GadgetVariant::UniformLengths).spec();
        for u in NodeId::all(11) {
            assert_eq!(spec.budget(u), 1);
            for v in NodeId::all(11) {
                if u != v {
                    assert_eq!(spec.link_cost(u, v), 1);
                    assert_eq!(spec.link_length(u, v), 1);
                }
            }
        }
        // Proof inequalities: α > γ, α > β, α(M−1) < β(M−1) + γ(M−2).
        let (alpha, beta, gamma) = (8u64, 6u64, 4u64);
        let m = spec.penalty();
        assert!(alpha > gamma && alpha > beta);
        assert!(alpha * (m - 1) < beta * (m - 1) + gamma * (m - 2));
    }

    #[test]
    fn nonuniform_lengths_variant_sets_omitted_length() {
        let spec = Gadget::new(GadgetVariant::NonuniformLengths { omitted_length: 50 }).spec();
        assert_eq!(spec.link_length(node::C0, node::LT0), 1);
        assert_eq!(spec.link_length(node::C0, node::C1), 50);
        assert!(spec.penalty() > 11 * 50, "M ≫ n·L");
    }

    #[test]
    fn restricted_candidate_space_is_small_and_full() {
        let g = Gadget::new(GadgetVariant::Restricted);
        let spec = g.spec();
        let space = g.candidate_space(&spec).unwrap();
        // Centers/bottoms: {}, two singletons = 3 each; tops: 2; X: 1.
        // 3^2 · 2^4 · 3^4 · 1 = 11664.
        assert_eq!(space.profile_count(), 11_664);
    }

    #[test]
    fn restricted_gadget_has_no_pure_nash_equilibrium() {
        // The headline Theorem 1 certificate, exhaustively.
        let g = Gadget::new(GadgetVariant::Restricted);
        let spec = g.spec();
        let space = g.candidate_space(&spec).unwrap();
        let result = bbc_core::enumerate::find_equilibria(&spec, &space, 100_000).unwrap();
        assert_eq!(result.profiles_checked, 11_664);
        assert!(
            result.equilibria.is_empty(),
            "found unexpected equilibria: {:?}",
            result.equilibria
        );
    }

    #[test]
    fn pennies_states_are_mutually_escaping() {
        // In state A the center 0C must want to deviate (the proof's "will
        // switch its link to 0RT"), and symmetrically in state B.
        let g = Gadget::new(GadgetVariant::Restricted);
        let spec = g.spec();
        let (a, bstate) = g.pennies_states(&spec);
        let checker = StabilityChecker::new(&spec).collect_all_deviations(true);
        let report_a = checker.check(&a).unwrap();
        assert!(!report_a.stable);
        assert!(
            report_a.deviations.iter().any(|d| d.node == node::C0),
            "0C deviates in state A: {:?}",
            report_a.deviations
        );
        let report_b = checker.check(&bstate).unwrap();
        assert!(!report_b.stable);
        assert!(report_b.deviations.iter().any(|d| d.node == node::C0));
    }

    #[test]
    fn max_gadget_spec_uses_max_model() {
        let spec = max_gadget_spec();
        assert_eq!(spec.cost_model(), CostModel::MaxDistance);
        assert_eq!(spec.node_count(), 11);
    }

    #[test]
    fn minimal_witness_has_no_equilibrium_over_full_space() {
        let spec = minimal_no_ne_witness();
        let space = bbc_core::enumerate::ProfileSpace::full(&spec, 1 << 14).unwrap();
        assert_eq!(
            space.profile_count(),
            3125,
            "5 strategies per node, 5 nodes"
        );
        let result = bbc_core::enumerate::find_equilibria(&spec, &space, 10_000).unwrap();
        assert!(result.equilibria.is_empty());
    }

    #[test]
    fn minimal_witness_is_uniform_except_preferences() {
        let spec = minimal_no_ne_witness();
        for u in NodeId::all(5) {
            assert_eq!(spec.budget(u), 1);
            for v in NodeId::all(5) {
                if u != v {
                    assert_eq!(spec.link_cost(u, v), 1);
                    assert_eq!(spec.link_length(u, v), 1);
                }
            }
        }
    }
}

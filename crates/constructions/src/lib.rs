//! Explicit instance families from the BBC games paper.
//!
//! Every graph or game instance the paper constructs in a proof is built
//! here, exactly parameterized and unit-tested against the paper's counting
//! formulas:
//!
//! * [`ForestOfWillows`] — the stable-graph family of Definition 1/Figure 3
//!   whose tail parameter sweeps social cost across the whole PoA spectrum;
//! * [`cayley`] — circulants, hypercubes and general Abelian Cayley graphs
//!   (§4.2), including Theorem 5's generator-doubling deviation;
//! * [`gadget`] — the Theorem 1 matching-pennies gadget in three variants,
//!   plus the BBC-max no-equilibrium instance for Theorem 7;
//! * [`SatReduction`] — the Theorem 2 reduction from 3SAT;
//! * [`MaxPoaGraph`] — the Theorem 8/Figure 6 high-cost BBC-max equilibrium;
//! * [`RingWithPath`] — the Ω(n²) best-response convergence instance (§4.3);
//! * [`basic`] — directed cycles, stars and near-optimal trees used as
//!   baselines.

#![forbid(unsafe_code)]

pub mod basic;
pub mod cayley;
pub mod dynamics_lower_bound;
pub mod forest_of_willows;
pub mod gadget;
pub mod max_poa;
pub mod sat_reduction;

pub use cayley::{AbelianGroup, CayleyGraph};
pub use dynamics_lower_bound::RingWithPath;
pub use forest_of_willows::{ForestOfWillows, WillowRole};
pub use gadget::{max_gadget_spec, minimal_no_ne_witness, Gadget, GadgetVariant};
pub use max_poa::MaxPoaGraph;
pub use sat_reduction::SatReduction;

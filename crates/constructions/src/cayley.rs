//! Abelian Cayley graphs: circulants, hypercubes, and general products of
//! cyclic groups (§4.2).
//!
//! A Cayley graph `G(H, S)` over an Abelian group `H` with generator set `S`
//! links every element `x` to `x·a` for each `a ∈ S`. These are exactly the
//! "regular" overlay topologies a P2P designer would deploy: every node
//! imitates the same buying pattern. Theorem 5 shows that for `k ≥ 2` and
//! `n ≥ c·2^k` no such graph is a pure Nash equilibrium of the
//! `(n,k)`-uniform game, and the proof exhibits the concrete deviation of
//! replacing the edge `(r, r·a_i)` by `(r, r·a_i·a_i)`
//! ([`CayleyGraph::paper_deviation`]). Lemma 8 counters that for
//! `k > (n−2)/2` every Abelian Cayley graph *is* stable.

use serde::{Deserialize, Serialize};

use bbc_core::{Configuration, GameSpec, NodeId};

/// A finite Abelian group presented as `Z_{m1} × Z_{m2} × … × Z_{mr}`.
///
/// Elements are mixed-radix vectors, addressed densely by index.
///
/// # Examples
///
/// ```
/// use bbc_constructions::cayley::AbelianGroup;
///
/// let g = AbelianGroup::new(vec![2, 3]).expect("Z2 × Z3");
/// assert_eq!(g.order(), 6);
/// let a = g.element_index(&[1, 2]);
/// let b = g.element_index(&[1, 1]);
/// assert_eq!(g.add(a, b), g.element_index(&[0, 0]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AbelianGroup {
    moduli: Vec<u64>,
}

impl AbelianGroup {
    /// Creates the product group; every modulus must be at least 1 and the
    /// order must stay below `2²⁰`.
    pub fn new(moduli: Vec<u64>) -> Option<Self> {
        if moduli.is_empty() || moduli.contains(&0) {
            return None;
        }
        let mut order: u64 = 1;
        for &m in &moduli {
            order = order.checked_mul(m)?;
            if order > 1 << 20 {
                return None;
            }
        }
        Some(Self { moduli })
    }

    /// The cyclic group `Z_n`.
    pub fn cyclic(n: u64) -> Option<Self> {
        Self::new(vec![n])
    }

    /// The Boolean cube group `Z_2^d`.
    pub fn boolean_cube(d: u32) -> Option<Self> {
        Self::new(vec![2; d as usize])
    }

    /// Number of elements.
    pub fn order(&self) -> usize {
        self.moduli.iter().product::<u64>() as usize
    }

    /// The moduli of the factors.
    pub fn moduli(&self) -> &[u64] {
        &self.moduli
    }

    /// Dense index of a coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if the vector has the wrong arity or a coordinate exceeds its
    /// modulus.
    pub fn element_index(&self, coords: &[u64]) -> usize {
        assert_eq!(coords.len(), self.moduli.len(), "arity mismatch");
        let mut idx = 0u64;
        for (c, &m) in coords.iter().zip(&self.moduli) {
            assert!(*c < m, "coordinate {c} out of range for modulus {m}");
            idx = idx * m + c;
        }
        idx as usize
    }

    /// Coordinate vector of a dense index.
    pub fn element_coords(&self, mut idx: usize) -> Vec<u64> {
        let mut coords = vec![0u64; self.moduli.len()];
        for (c, &m) in coords.iter_mut().zip(&self.moduli).rev() {
            *c = (idx as u64) % m;
            idx /= m as usize;
        }
        coords
    }

    /// Group addition on dense indices.
    pub fn add(&self, a: usize, b: usize) -> usize {
        let ca = self.element_coords(a);
        let cb = self.element_coords(b);
        let sum: Vec<u64> = ca
            .iter()
            .zip(&cb)
            .zip(&self.moduli)
            .map(|((&x, &y), &m)| (x + y) % m)
            .collect();
        self.element_index(&sum)
    }

    /// The identity element's index (always 0).
    pub fn identity(&self) -> usize {
        0
    }
}

/// An Abelian Cayley graph: a group plus a set of non-identity, distinct
/// generators. Realizes the configuration in which every node `x` buys the
/// links `x → x·a_i`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CayleyGraph {
    group: AbelianGroup,
    /// Generator element indices.
    generators: Vec<usize>,
}

impl CayleyGraph {
    /// Creates the graph. Generators must be distinct and none may be the
    /// identity (self-loops buy nothing in a BBC game).
    pub fn new(group: AbelianGroup, generators: Vec<usize>) -> Option<Self> {
        let mut sorted = generators.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != generators.len() || generators.iter().any(|&g| g == group.identity()) {
            return None;
        }
        if generators.is_empty() || generators.iter().any(|&g| g >= group.order()) {
            return None;
        }
        Some(Self { group, generators })
    }

    /// The circulant ("regular") graph on `Z_n` with the given offsets —
    /// the paper's §4.2 motivating family: the `i`-th edge from node `x`
    /// goes to `x + a_i (mod n)`.
    pub fn circulant(n: u64, offsets: &[u64]) -> Option<Self> {
        let group = AbelianGroup::cyclic(n)?;
        let gens = offsets.iter().map(|&o| (o % n) as usize).collect();
        Self::new(group, gens)
    }

    /// The directed `2^d`-node hypercube: `Z_2^d` with the unit generators
    /// (Corollary 1's instance, with `k = d`).
    pub fn hypercube(d: u32) -> Option<Self> {
        let group = AbelianGroup::boolean_cube(d)?;
        let gens = (0..d)
            .map(|i| {
                let mut coords = vec![0u64; d as usize];
                coords[i as usize] = 1;
                group.element_index(&coords)
            })
            .collect();
        Self::new(group, gens)
    }

    /// The underlying group.
    pub fn group(&self) -> &AbelianGroup {
        &self.group
    }

    /// The generator indices.
    pub fn generators(&self) -> &[usize] {
        &self.generators
    }

    /// Degree `k` (number of generators).
    pub fn degree(&self) -> usize {
        self.generators.len()
    }

    /// The `(n, k)`-uniform game this graph lives in.
    pub fn spec(&self) -> GameSpec {
        GameSpec::uniform(self.group.order(), self.degree() as u64)
    }

    /// The configuration in which every node buys its Cayley links.
    pub fn configuration(&self) -> Configuration {
        let n = self.group.order();
        let strategies = (0..n)
            .map(|x| {
                let mut targets: Vec<NodeId> = self
                    .generators
                    .iter()
                    .map(|&a| NodeId::new(self.group.add(x, a)))
                    .collect();
                targets.sort_unstable();
                targets
            })
            .collect();
        Configuration::from_strategies(&self.spec(), strategies)
            // bbc-lint: allow(panic, each node buys exactly the generator set, which the budget equals by construction)
            .expect("cayley construction is within budget")
    }

    /// The deviation Theorem 5's proof analyzes: at the root `r = identity`,
    /// replace the `i`-th link `r → a_i` by `r → a_i·a_i`. Returns the new
    /// strategy for node 0, or `None` when `a_i·a_i` collides with the
    /// identity or another link (the move is undefined there).
    pub fn paper_deviation(&self, i: usize) -> Option<Vec<NodeId>> {
        let ai = self.generators[i];
        let doubled = self.group.add(ai, ai);
        if doubled == self.group.identity() {
            return None;
        }
        let mut targets: Vec<usize> = self
            .generators
            .iter()
            .enumerate()
            .map(|(j, &a)| if j == i { doubled } else { a })
            .collect();
        targets.sort_unstable();
        targets.dedup();
        if targets.len() != self.generators.len() {
            return None;
        }
        Some(targets.into_iter().map(NodeId::new).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::{Evaluator, StabilityChecker};
    use bbc_graph::scc::is_strongly_connected;

    #[test]
    fn group_arithmetic_round_trips() {
        let g = AbelianGroup::new(vec![3, 4]).unwrap();
        assert_eq!(g.order(), 12);
        for idx in 0..12 {
            assert_eq!(g.element_index(&g.element_coords(idx)), idx);
        }
        assert_eq!(g.add(g.element_index(&[2, 3]), g.element_index(&[1, 1])), 0);
    }

    #[test]
    fn invalid_groups_and_generators_rejected() {
        assert!(AbelianGroup::new(vec![]).is_none());
        assert!(AbelianGroup::new(vec![0]).is_none());
        let g = AbelianGroup::cyclic(5).unwrap();
        assert!(
            CayleyGraph::new(g.clone(), vec![0]).is_none(),
            "identity generator"
        );
        assert!(
            CayleyGraph::new(g.clone(), vec![1, 1]).is_none(),
            "duplicate generator"
        );
        assert!(CayleyGraph::new(g, vec![]).is_none(), "no generators");
    }

    #[test]
    fn circulant_structure() {
        let c = CayleyGraph::circulant(7, &[1, 2]).unwrap();
        let cfg = c.configuration();
        assert_eq!(
            cfg.strategy(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(
            cfg.strategy(NodeId::new(6)),
            &[NodeId::new(0), NodeId::new(1)]
        );
        assert!(is_strongly_connected(&cfg.to_graph(&c.spec())));
    }

    #[test]
    fn hypercube_has_expected_shape() {
        let h = CayleyGraph::hypercube(3).unwrap();
        assert_eq!(h.group().order(), 8);
        assert_eq!(h.degree(), 3);
        let cfg = h.configuration();
        // Node 000 links 100, 010, 001 = indices 4, 2, 1.
        assert_eq!(
            cfg.strategy(NodeId::new(0)),
            &[NodeId::new(1), NodeId::new(2), NodeId::new(4)]
        );
        assert!(is_strongly_connected(&cfg.to_graph(&h.spec())));
    }

    #[test]
    fn directed_cycle_is_the_k1_cayley_graph_and_stable() {
        // §4.2: "for k = 1 ... the simple directed cycle is an Abelian
        // Cayley graph and is stable."
        let c = CayleyGraph::circulant(6, &[1]).unwrap();
        let spec = c.spec();
        assert!(StabilityChecker::new(&spec)
            .is_stable(&c.configuration())
            .unwrap());
    }

    #[test]
    fn lemma8_large_degree_cayley_graphs_are_stable() {
        // Lemma 8: for k > (n−2)/2 every Abelian Cayley graph is stable.
        // n=6, k=3 > 2: offsets {1,2,3}.
        let c = CayleyGraph::circulant(6, &[1, 2, 3]).unwrap();
        let spec = c.spec();
        assert!(StabilityChecker::new(&spec)
            .is_stable(&c.configuration())
            .unwrap());
    }

    #[test]
    fn paper_deviation_doubles_one_generator() {
        let c = CayleyGraph::circulant(9, &[1, 3]).unwrap();
        let dev = c.paper_deviation(0).unwrap();
        assert_eq!(dev, vec![NodeId::new(2), NodeId::new(3)]);
        // Doubling offset 3 gives 6.
        let dev = c.paper_deviation(1).unwrap();
        assert_eq!(dev, vec![NodeId::new(1), NodeId::new(6)]);
    }

    #[test]
    fn paper_deviation_collisions_return_none() {
        // Z_4 with offset 2: doubling gives identity.
        let c = CayleyGraph::circulant(4, &[2]).unwrap();
        assert!(c.paper_deviation(0).is_none());
        // Z_8 with offsets {2, 4}: doubling 2 collides with generator 4.
        let c = CayleyGraph::circulant(8, &[2, 4]).unwrap();
        assert!(c.paper_deviation(0).is_none());
    }

    #[test]
    fn paper_deviation_improves_on_a_long_circulant() {
        // Theorem 5's move should strictly help on a sparse circulant where
        // many nodes have label coordinate ≥ 2 in some generator.
        let c = CayleyGraph::circulant(64, &[1, 8]).unwrap();
        let spec = c.spec();
        let cfg = c.configuration();
        let mut eval = Evaluator::new(&spec);
        let before = eval.node_cost(&cfg, NodeId::new(0));
        let mut improved = false;
        for i in 0..c.degree() {
            if let Some(strategy) = c.paper_deviation(i) {
                let mut moved = cfg.clone();
                moved.set_strategy(&spec, NodeId::new(0), strategy).unwrap();
                if eval.node_cost(&moved, NodeId::new(0)) < before {
                    improved = true;
                }
            }
        }
        assert!(improved, "doubling some generator should pay off");
    }
}

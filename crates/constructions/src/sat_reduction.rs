//! The Theorem 2 reduction: SAT → "does this BBC game have a pure NE?".
//!
//! For a CNF φ with `nv` variables and `m` clauses (1–3 literals each) the
//! reduction builds:
//!
//! * a variable node `Xi` per variable with truth nodes `XiT`, `XiF`;
//!   `Xi`'s single link *is* the truth assignment;
//! * an intermediate node `Ijk` per literal, relaying its variable;
//! * a clause node `Kj` linking one of its intermediates — profitable only
//!   when that literal is satisfied — or falling back to the hub `S`;
//! * a hub `S` (budget `m`) linking every clause node, and a sink `T`;
//! * a copy of the Theorem 1 gadget whose centers may escape to `S`. The
//!   escape beats chasing the other center exactly when every clause node
//!   relays a satisfied literal; otherwise the gadget's matching-pennies
//!   instability kills every profile.
//!
//! Following the workspace's restricted-topology convention (see
//! [`crate::gadget`]), links not drawn in Figure 2 are priced above budget,
//! making the implicit restriction to drawn links exact and the equilibrium
//! scan exhaustive over pinned-free nodes.
//!
//! ## Documented deviations from the paper's text
//!
//! Two places where the paper's description, taken literally, makes the
//! *satisfiable* direction fail (the canonical profile is unstable); both
//! are repaired minimally and verified by the E2 experiment:
//!
//! 1. **Truth nodes anchor back to `S`** (budget 1, link `XiT → S`) instead
//!    of budget 0. Otherwise a clause node that relays a satisfied literal
//!    strands `S` at distance `M`, and deviating to `S` always recoups that
//!    penalty — the paper's optimality accounting for clause nodes only
//!    balances if `S` stays reachable through the relay path.
//! 2. **Gadget bottoms get a drawn link to `S`**, mirroring the `X`-anchor
//!    of Theorem 1. With only `{center, T}` available a bottom never
//!    abandons its center (T is a worthless sink while `S` is reachable
//!    *through* the center), and the matching-pennies cycle the UNSAT
//!    direction relies on never fires.
//! 3. **Center weights are re-derived.** With the hub reachable from both
//!    sub-gadgets, a "surrendered" profile (both centers escape to `S`, all
//!    bottoms flee, the pennies never fires) is self-consistently stable
//!    under the paper's literal weights even for unsatisfiable formulas.
//!    The repair keeps the paper's threshold constant `2m−1` but attaches
//!    it to each center's *own tops*, amplifies intermediate weights to
//!    `M−1`, and raises the cross-center weight — see the derivation at the
//!    weight assignments in [`SatReduction::spec`]. E2 verifies SAT ⇔ NE
//!    exhaustively on small formulas.

use bbc_core::{enumerate::ProfileSpace, Configuration, GameSpec, NodeId, Result};
use bbc_sat::Cnf;

/// The instance produced by the reduction, with named node accessors.
#[derive(Clone, Debug)]
pub struct SatReduction {
    cnf: Cnf,
    /// Start of clause `j`'s block (`Kj` followed by its intermediates).
    clause_offsets: Vec<usize>,
    /// First index after the clause blocks.
    after_clauses: usize,
}

impl SatReduction {
    /// Builds the reduction for `cnf`.
    ///
    /// # Panics
    ///
    /// Panics if the formula has no clauses or a clause with more than three
    /// literals.
    pub fn new(cnf: Cnf) -> Self {
        assert!(cnf.num_clauses() > 0, "reduction needs at least one clause");
        let mut clause_offsets = Vec::with_capacity(cnf.num_clauses());
        let mut cursor = 3 * cnf.num_vars();
        for clause in cnf.clauses() {
            assert!(
                clause.len() <= 3,
                "reduction handles at most 3 literals per clause"
            );
            clause_offsets.push(cursor);
            cursor += 1 + clause.len();
        }
        Self {
            cnf,
            clause_offsets,
            after_clauses: cursor,
        }
    }

    /// The formula being reduced.
    pub fn cnf(&self) -> &Cnf {
        &self.cnf
    }

    /// Total node count: `3·nv + m + Σ|clause| + 2 + 10`.
    pub fn node_count(&self) -> usize {
        self.after_clauses + 2 + 10
    }

    /// Variable node of variable `i`.
    pub fn var_node(&self, i: usize) -> NodeId {
        NodeId::new(3 * i)
    }

    /// Truth node `XiT`.
    pub fn true_node(&self, i: usize) -> NodeId {
        NodeId::new(3 * i + 1)
    }

    /// Truth node `XiF`.
    pub fn false_node(&self, i: usize) -> NodeId {
        NodeId::new(3 * i + 2)
    }

    /// Clause node `Kj`.
    pub fn clause_node(&self, j: usize) -> NodeId {
        NodeId::new(self.clause_offsets[j])
    }

    /// Intermediate node for the `k`-th literal of clause `j`.
    pub fn intermediate_node(&self, j: usize, k: usize) -> NodeId {
        assert!(
            k < self.cnf.clauses()[j].len(),
            "clause {j} has no literal {k}"
        );
        NodeId::new(self.clause_offsets[j] + 1 + k)
    }

    /// The hub node `S`.
    pub fn s_node(&self) -> NodeId {
        NodeId::new(self.after_clauses)
    }

    /// The sink node `T`.
    pub fn t_node(&self) -> NodeId {
        NodeId::new(self.after_clauses + 1)
    }

    /// Gadget node by local index `0..10` in the order
    /// `0C,0LT,0RT,0LB,0RB,1C,1LT,1RT,1LB,1RB`.
    pub fn gadget_node(&self, local: usize) -> NodeId {
        assert!(local < 10, "gadget has 10 nodes here (no X)");
        NodeId::new(self.after_clauses + 2 + local)
    }

    /// The truth node a literal points at.
    fn literal_truth_node(&self, j: usize, k: usize) -> NodeId {
        let lit = self.cnf.clauses()[j][k];
        if lit.positive {
            self.true_node(lit.var.index())
        } else {
            self.false_node(lit.var.index())
        }
    }

    /// The drawn links of Figure 2 (reconstructed; see the module docs for
    /// the two documented repairs).
    pub fn shown_links(&self) -> Vec<(NodeId, NodeId)> {
        let mut links = Vec::new();
        let nv = self.cnf.num_vars();
        for i in 0..nv {
            links.push((self.var_node(i), self.true_node(i)));
            links.push((self.var_node(i), self.false_node(i)));
            // Repair 1: truth nodes anchor back to the hub.
            links.push((self.true_node(i), self.s_node()));
            links.push((self.false_node(i), self.s_node()));
        }
        for (j, clause) in self.cnf.clauses().iter().enumerate() {
            for (k, lit) in clause.iter().enumerate() {
                links.push((self.clause_node(j), self.intermediate_node(j, k)));
                links.push((self.intermediate_node(j, k), self.var_node(lit.var.index())));
            }
            links.push((self.clause_node(j), self.s_node()));
            links.push((self.s_node(), self.clause_node(j)));
        }
        // Gadget wiring (same shape as crate::gadget::SHOWN_LINKS with the
        // anchor replaced by S and a T-sink available to the bottoms).
        let g = |l: usize| self.gadget_node(l);
        let (c0, lt0, rt0, lb0, rb0) = (g(0), g(1), g(2), g(3), g(4));
        let (c1, lt1, rt1, lb1, rb1) = (g(5), g(6), g(7), g(8), g(9));
        links.extend([
            (c0, lt0),
            (c0, rt0),
            (c1, lt1),
            (c1, rt1),
            (lt0, rb1),
            (rt0, lb1),
            (lt1, lb0),
            (rt1, rb0),
            (lb0, c0),
            (rb0, c0),
            (lb1, c1),
            (rb1, c1),
            // Centers may escape to the hub.
            (c0, self.s_node()),
            (c1, self.s_node()),
        ]);
        for bot in [lb0, rb0, lb1, rb1] {
            // Repair 2: bottoms anchor directly at S (Theorem 1's X role)
            // and keep the paper's T-sink link.
            links.push((bot, self.s_node()));
            links.push((bot, self.t_node()));
        }
        links
    }

    /// Builds the game specification.
    pub fn spec(&self) -> GameSpec {
        let n = self.node_count();
        let nv = self.cnf.num_vars();
        let m = self.cnf.num_clauses() as u64;
        let shown: bbc_core::det::DetHashSet<(usize, usize)> = self
            .shown_links()
            .iter()
            .map(|&(u, v)| (u.index(), v.index()))
            .collect();

        let mut b = GameSpec::builder(n).default_weight(0).default_budget(1);
        b = b.budget(self.s_node().index(), m);
        b = b.budget(self.t_node().index(), 0);
        // Restricted topology: drawn links cost 1, others are unaffordable
        // even for S.
        for u in 0..n {
            for v in 0..n {
                if u == v {
                    continue;
                }
                b = b.link_cost(u, v, if shown.contains(&(u, v)) { 1 } else { m + 1 });
            }
        }

        // Preferences.
        for i in 0..nv {
            b = b
                .weight(self.var_node(i).index(), self.true_node(i).index(), 1)
                .weight(self.var_node(i).index(), self.false_node(i).index(), 1)
                .weight(self.true_node(i).index(), self.s_node().index(), 1)
                .weight(self.false_node(i).index(), self.s_node().index(), 1);
        }
        for (j, clause) in self.cnf.clauses().iter().enumerate() {
            for (k, lit) in clause.iter().enumerate() {
                let i = lit.var.index();
                b = b
                    .weight(
                        self.intermediate_node(j, k).index(),
                        self.var_node(i).index(),
                        1,
                    )
                    .weight(
                        self.intermediate_node(j, k).index(),
                        self.literal_truth_node(j, k).index(),
                        1,
                    );
                b = b.weight(
                    self.clause_node(j).index(),
                    self.literal_truth_node(j, k).index(),
                    2,
                );
            }
            b = b.weight(self.clause_node(j).index(), self.s_node().index(), 1);
            b = b.weight(self.s_node().index(), self.clause_node(j).index(), 1);
        }
        // Gadget preferences (repair 3, see module docs). The centers'
        // accounting must satisfy, with r = number of clause nodes currently
        // relaying a satisfied literal:
        //
        //   cost(S-escape) − cost(top-link) = (M−1)·(ζ − 2r) + chase terms,
        //
        // where ζ is the weight a center puts on each of its *own tops* and
        // the intermediates carry weight M−1. Escaping to S must win exactly
        // when every clause relays (r = m) and lose whenever some clause
        // fell back (r < m), i.e. 2(m−1) < ζ < 2m — so ζ = 2m−1, the paper's
        // constant (the paper attaches it to the cross-center weight; in the
        // reconstructed geometry it must sit on the own-top weights, because
        // the cross-center terms cancel whenever the other center is
        // unreachable either way). The cross-center weight 4m(M−1) makes the
        // matching-pennies chase dominate every intermediate consideration
        // when the other center *is* reachable.
        let g = |l: usize| self.gadget_node(l).index();
        let (c0, lt0, rt0, lb0, rb0, c1, lt1, rt1, lb1, rb1) =
            (g(0), g(1), g(2), g(3), g(4), g(5), g(6), g(7), g(8), g(9));
        let big_m = (self.node_count() as u64) + 1;
        let zeta = 2 * m - 1;
        let w_cross_center = 4 * m * (big_m - 1);
        let w_intermediate = big_m - 1;
        b = b
            .weight(c0, c1, w_cross_center)
            .weight(c1, c0, w_cross_center);
        for (c, lt, rt) in [(c0, lt0, rt0), (c1, lt1, rt1)] {
            b = b.weight(c, lt, zeta).weight(c, rt, zeta);
        }
        for (j, clause) in self.cnf.clauses().iter().enumerate() {
            for k in 0..clause.len() {
                let i = self.intermediate_node(j, k).index();
                b = b
                    .weight(c0, i, w_intermediate)
                    .weight(c1, i, w_intermediate);
            }
        }
        b = b
            .weight(lt0, rb1, 1)
            .weight(rt0, lb1, 1)
            .weight(lt1, lb0, 1)
            .weight(rt1, rb0, 1);
        for (bot, cross) in [(lb0, rt0), (rb0, lt0), (lb1, rt1), (rb1, lt1)] {
            b = b
                .weight(bot, cross, 3)
                .weight(bot, self.s_node().index(), 2)
                .weight(bot, self.t_node().index(), 1);
        }
        // bbc-lint: allow(panic, the Theorem 2 reduction emits fixed per-gadget weights validated by the crate's tests)
        b.build().expect("reduction spec is valid")
    }

    /// The canonical stable profile for a satisfying assignment
    /// (the construction in the proof's forward direction).
    ///
    /// # Panics
    ///
    /// Panics if `assignment` does not satisfy the formula.
    pub fn canonical_equilibrium(&self, spec: &GameSpec, assignment: &[bool]) -> Configuration {
        assert!(
            self.cnf.is_satisfied_by(assignment),
            "assignment must satisfy the formula"
        );
        let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); self.node_count()];
        for (i, &value) in assignment.iter().enumerate() {
            lists[self.var_node(i).index()] = vec![if value {
                self.true_node(i)
            } else {
                self.false_node(i)
            }];
            lists[self.true_node(i).index()] = vec![self.s_node()];
            lists[self.false_node(i).index()] = vec![self.s_node()];
        }
        for (j, clause) in self.cnf.clauses().iter().enumerate() {
            for (k, lit) in clause.iter().enumerate() {
                lists[self.intermediate_node(j, k).index()] = vec![self.var_node(lit.var.index())];
            }
            let sat_k = clause
                .iter()
                .position(|lit| lit.satisfied_by(assignment[lit.var.index()]))
                // bbc-lint: allow(panic, the caller passes a satisfying assignment, so every clause has a true literal)
                .expect("satisfying assignment satisfies every clause");
            lists[self.clause_node(j).index()] = vec![self.intermediate_node(j, sat_k)];
        }
        lists[self.s_node().index()] = (0..self.cnf.num_clauses())
            .map(|j| self.clause_node(j))
            .collect();
        // Gadget: tops pinned, centers escape to S, bottoms anchor at S
        // (their crossover tops are dead once the centers escape).
        let g = |l: usize| self.gadget_node(l);
        lists[g(1).index()] = vec![g(9)];
        lists[g(2).index()] = vec![g(8)];
        lists[g(6).index()] = vec![g(3)];
        lists[g(7).index()] = vec![g(4)];
        lists[g(0).index()] = vec![self.s_node()];
        lists[g(5).index()] = vec![self.s_node()];
        for bot in [3usize, 4, 8, 9] {
            lists[g(bot).index()] = vec![self.s_node()];
        }
        // bbc-lint: allow(panic, the canonical profile buys exactly the per-node budget by construction)
        Configuration::from_strategies(spec, lists).expect("canonical profile is within budget")
    }

    /// The candidate profile space for the equilibrium scan.
    ///
    /// Strictly-dominant singleton strategies are pinned (each pinning is a
    /// one-line argument: the node has positive weight on a drawn target at
    /// distance 1, every alternative leaves it at distance ≥ 2 or `M`):
    /// tops → their cross bottom; intermediates → their variable; truth
    /// nodes → `S`; `S` → all clause nodes; `T` → nothing. Free nodes range
    /// over all remaining strategies: variables over `{XiT}, {XiF}` (the
    /// empty strategy is strictly dominated), clause nodes over their
    /// intermediates and `S`, centers over `{∅, 0LT, 0RT, S}` (the empty
    /// strategy is *not* dominated for a center — its weighted targets may
    /// be unreachable anyway — so it stays in), bottoms over
    /// `{center, S, T}`.
    ///
    /// # Errors
    ///
    /// Propagates candidate-validation failures (none for well-formed
    /// formulas).
    pub fn profile_space(&self, spec: &GameSpec) -> Result<ProfileSpace> {
        let n = self.node_count();
        let mut per_node: Vec<Vec<Vec<NodeId>>> = vec![Vec::new(); n];
        let nv = self.cnf.num_vars();
        for i in 0..nv {
            per_node[self.var_node(i).index()] =
                vec![vec![self.true_node(i)], vec![self.false_node(i)]];
            per_node[self.true_node(i).index()] = vec![vec![self.s_node()]];
            per_node[self.false_node(i).index()] = vec![vec![self.s_node()]];
        }
        for (j, clause) in self.cnf.clauses().iter().enumerate() {
            let mut options: Vec<Vec<NodeId>> = (0..clause.len())
                .map(|k| vec![self.intermediate_node(j, k)])
                .collect();
            options.push(vec![self.s_node()]);
            per_node[self.clause_node(j).index()] = options;
            for k in 0..clause.len() {
                per_node[self.intermediate_node(j, k).index()] =
                    vec![vec![self.var_node(self.cnf.clauses()[j][k].var.index())]];
            }
        }
        per_node[self.s_node().index()] = vec![(0..self.cnf.num_clauses())
            .map(|j| self.clause_node(j))
            .collect()];
        per_node[self.t_node().index()] = vec![vec![]];
        let g = |l: usize| self.gadget_node(l);
        per_node[g(1).index()] = vec![vec![g(9)]];
        per_node[g(2).index()] = vec![vec![g(8)]];
        per_node[g(6).index()] = vec![vec![g(3)]];
        per_node[g(7).index()] = vec![vec![g(4)]];
        for (c, lt, rt) in [(g(0), g(1), g(2)), (g(5), g(6), g(7))] {
            per_node[c.index()] = vec![vec![], vec![lt], vec![rt], vec![self.s_node()]];
        }
        for (bot, center) in [(g(3), g(0)), (g(4), g(0)), (g(8), g(5)), (g(9), g(5))] {
            per_node[bot.index()] = vec![vec![center], vec![self.s_node()], vec![self.t_node()]];
        }
        ProfileSpace::from_candidates(spec, per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::{enumerate, StabilityChecker};
    use bbc_sat::{dpll, gen, Cnf, Lit};

    #[test]
    fn layout_indices_are_disjoint_and_dense() {
        let (sat, _) = gen::fixtures();
        let r = SatReduction::new(sat);
        let mut seen = vec![false; r.node_count()];
        let mut mark = |v: NodeId| {
            assert!(!seen[v.index()], "node {v} assigned twice");
            seen[v.index()] = true;
        };
        for i in 0..r.cnf().num_vars() {
            mark(r.var_node(i));
            mark(r.true_node(i));
            mark(r.false_node(i));
        }
        for j in 0..r.cnf().num_clauses() {
            mark(r.clause_node(j));
            for k in 0..r.cnf().clauses()[j].len() {
                mark(r.intermediate_node(j, k));
            }
        }
        mark(r.s_node());
        mark(r.t_node());
        for l in 0..10 {
            mark(r.gadget_node(l));
        }
        assert!(
            seen.into_iter().all(|s| s),
            "layout covers every node exactly once"
        );
    }

    #[test]
    fn spec_budgets_match_construction() {
        let (sat, _) = gen::fixtures();
        let r = SatReduction::new(sat);
        let spec = r.spec();
        assert_eq!(spec.budget(r.s_node()), r.cnf().num_clauses() as u64);
        assert_eq!(spec.budget(r.t_node()), 0);
        assert_eq!(
            spec.budget(r.true_node(0)),
            1,
            "truth nodes anchor to S (repair 1)"
        );
        assert_eq!(spec.budget(r.var_node(0)), 1);
    }

    #[test]
    fn affordable_targets_are_exactly_the_drawn_links() {
        let (sat, _) = gen::fixtures();
        let r = SatReduction::new(sat);
        let spec = r.spec();
        assert_eq!(
            spec.affordable_targets(r.var_node(0)),
            vec![r.true_node(0), r.false_node(0)]
        );
        let k0 = spec.affordable_targets(r.clause_node(0));
        assert_eq!(k0.len(), 4, "three intermediates plus S");
        assert!(spec.affordable_targets(r.t_node()).is_empty());
        // Bottoms: center, S, T (repair 2).
        assert_eq!(spec.affordable_targets(r.gadget_node(3)).len(), 3);
    }

    #[test]
    fn canonical_profile_of_satisfiable_formula_is_stable() {
        let (sat, _) = gen::fixtures();
        let assignment = dpll::solve(&sat).expect("fixture is satisfiable");
        let r = SatReduction::new(sat);
        let spec = r.spec();
        let cfg = r.canonical_equilibrium(&spec, &assignment);
        let report = StabilityChecker::new(&spec)
            .collect_all_deviations(true)
            .check(&cfg)
            .unwrap();
        assert!(
            report.stable,
            "canonical profile unstable: {:?}",
            report.deviations
        );
    }

    #[test]
    fn minimal_unsat_formula_has_no_equilibrium() {
        // (x) ∧ (¬x): the smallest unsatisfiable CNF.
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]);
        assert!(dpll::solve(&cnf).is_none());
        let r = SatReduction::new(cnf);
        let spec = r.spec();
        let space = r.profile_space(&spec).unwrap();
        let result = enumerate::find_equilibria(&spec, &space, 10_000_000).unwrap();
        assert!(
            result.equilibria.is_empty(),
            "unsat formula produced equilibria: {:?}",
            result.equilibria
        );
    }

    #[test]
    fn minimal_sat_formula_has_equilibria_in_candidate_space() {
        // (x): trivially satisfiable.
        let cnf = Cnf::new(1, vec![vec![Lit::pos(0)]]);
        let r = SatReduction::new(cnf);
        let spec = r.spec();
        let space = r.profile_space(&spec).unwrap();
        let result = enumerate::find_equilibria(&spec, &space, 10_000_000).unwrap();
        assert!(
            !result.equilibria.is_empty(),
            "satisfiable formula must have an equilibrium"
        );
    }

    #[test]
    #[should_panic(expected = "must satisfy")]
    fn canonical_profile_rejects_bad_assignment() {
        let (sat, _) = gen::fixtures();
        let r = SatReduction::new(sat.clone());
        let spec = r.spec();
        let _ = r.canonical_equilibrium(&spec, &vec![false; sat.num_vars()]);
    }
}

//! The "Forest of Willows" stable graphs (Definition 1, Figure 3).
//!
//! `k` directed complete `k`-ary trees of height `h`, rooted at
//! `r_1 … r_k`. Beneath each leaf hangs a tail of `l` nodes. The last node
//! of each tail links to all `k` roots; the second-to-last links to every
//! root but its own; above that, nodes alternate between "own root plus any
//! `k−2` others" and "all roots except their own". Lemma 6 proves every such
//! graph is a pure Nash equilibrium of the `(n,k)`-uniform game; sweeping
//! the tail length `l` from `0` to `Θ(√(n/k))` sweeps the social cost from
//! `O(n² log_k n)` to `Ω(n²·√(n/k))`, which is what drives the paper's price
//! of anarchy lower bound (Theorem 4).

use serde::{Deserialize, Serialize};

use bbc_core::{Configuration, GameSpec, NodeId};

/// Parameters of a Forest of Willows graph.
///
/// # Examples
///
/// ```
/// use bbc_constructions::ForestOfWillows;
///
/// let fow = ForestOfWillows::new(2, 3, 1).expect("valid parameters");
/// assert_eq!(fow.node_count(), 2 * (15 + 8)); // 2·((2⁴−1)/(2−1) + 2³·1)
/// let spec = fow.spec();
/// let config = fow.configuration();
/// assert_eq!(config.node_count(), fow.node_count());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ForestOfWillows {
    k: u64,
    h: u32,
    l: u32,
}

/// Which structural role a node plays; used to pick symmetry-class
/// representatives for stability checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WillowRole {
    /// Tree node at the given depth (`0` = root, `h` = leaf).
    Tree {
        /// Depth below the root.
        depth: u32,
    },
    /// Tail node at the given position below its leaf (`0` = just below the
    /// leaf, `l−1` = last node of the tail).
    Tail {
        /// Position within the tail.
        position: u32,
    },
}

impl ForestOfWillows {
    /// Creates the parameter set. Requires `k ≥ 2` (for `k = 1` the paper's
    /// stable graph is the directed cycle — see
    /// [`crate::basic::directed_cycle`]) and `h ≥ 1`.
    ///
    /// Returns `None` when `k < 2`, `h < 1`, or the node count overflows
    /// practical sizes (`> 2²⁰` nodes).
    pub fn new(k: u64, h: u32, l: u32) -> Option<Self> {
        if k < 2 || h < 1 {
            return None;
        }
        let fow = Self { k, h, l };
        (fow.checked_node_count()? <= 1 << 20).then_some(fow)
    }

    fn checked_node_count(&self) -> Option<u64> {
        // Per section: tree of (k^{h+1}−1)/(k−1) nodes + k^h tails of l.
        let k = self.k;
        let mut pow = 1u64; // k^h
        for _ in 0..self.h {
            pow = pow.checked_mul(k)?;
        }
        let tree = (pow.checked_mul(k)? - 1) / (k - 1);
        let per_section = tree.checked_add(pow.checked_mul(self.l as u64)?)?;
        per_section.checked_mul(k)
    }

    /// Budget per node (`k`).
    pub fn k(&self) -> u64 {
        self.k
    }

    /// Tree height.
    pub fn h(&self) -> u32 {
        self.h
    }

    /// Tail length.
    pub fn l(&self) -> u32 {
        self.l
    }

    /// Number of nodes in one section (tree plus its tails).
    pub fn section_size(&self) -> usize {
        self.tree_size() + self.leaves() * self.l as usize
    }

    /// Total node count `n = k · section_size`.
    pub fn node_count(&self) -> usize {
        self.section_size() * self.k as usize
    }

    fn tree_size(&self) -> usize {
        let k = self.k as usize;
        (k.pow(self.h + 1) - 1) / (k - 1)
    }

    fn leaves(&self) -> usize {
        (self.k as usize).pow(self.h)
    }

    fn internal(&self) -> usize {
        self.tree_size() - self.leaves()
    }

    /// The paper's parameter restriction `(h+l)²/4 + h + 2l + 1 < n/k`
    /// (checked exactly, scaling by 4 to stay in integers).
    pub fn satisfies_paper_constraint(&self) -> bool {
        let (h, l) = (self.h as u64, self.l as u64);
        let n_over_k = self.section_size() as u64;
        (h + l) * (h + l) + 4 * h + 8 * l + 4 < 4 * n_over_k
    }

    /// The `(n, k)`-uniform game this graph lives in.
    pub fn spec(&self) -> GameSpec {
        GameSpec::uniform(self.node_count(), self.k)
    }

    /// Builds the initial configuration of Definition 1.
    ///
    /// Node layout: sections `0..k` in order; within a section, tree nodes in
    /// BFS order (`0` = root), then the tails leaf-by-leaf.
    pub fn configuration(&self) -> Configuration {
        let k = self.k as usize;
        let n = self.node_count();
        let section = self.section_size();
        let tree = self.tree_size();
        let internal = self.internal();
        let leaves = self.leaves();
        let l = self.l as usize;

        let roots: Vec<NodeId> = (0..k).map(|s| NodeId::new(s * section)).collect();
        let mut strategies: Vec<Vec<NodeId>> = vec![Vec::new(); n];

        for s in 0..k {
            let base = s * section;
            // Internal tree nodes (BFS indexing): children of j are
            // j·k + 1 ... j·k + k.
            for j in 0..internal {
                strategies[base + j] = (1..=k).map(|c| NodeId::new(base + j * k + c)).collect();
            }
            // Leaves and tails.
            for b in 0..leaves {
                let leaf = base + internal + b;
                let tail_base = base + tree + b * l;
                if l == 0 {
                    // Leaves are the "last nodes": link to every root.
                    strategies[leaf] = roots.clone();
                    continue;
                }
                // Leaf: down-edge plus the root set dictated by alternation
                // relative to tail position 0.
                strategies[leaf] = self.spine_strategy(s, &roots, NodeId::new(tail_base), -1);
                for p in 0..l {
                    let node = tail_base + p;
                    if p == l - 1 {
                        strategies[node] = roots.clone();
                    } else {
                        strategies[node] =
                            self.spine_strategy(s, &roots, NodeId::new(node + 1), p as i64);
                    }
                }
            }
        }
        Configuration::from_strategies(&self.spec(), strategies)
            // bbc-lint: allow(panic, every willow node buys at most its budget in unit links by construction)
            .expect("forest of willows construction is within budget")
    }

    /// Strategy of a spine node (leaf or mid-tail): one down edge plus `k−1`
    /// root edges chosen by the alternation rule.
    ///
    /// `position` is the tail position (−1 for the leaf itself). Counting up
    /// from the bottom: the last node (position `l−1`) has its own root, and
    /// ownership alternates each step up.
    fn spine_strategy(
        &self,
        s: usize,
        roots: &[NodeId],
        down: NodeId,
        position: i64,
    ) -> Vec<NodeId> {
        let k = self.k as usize;
        let l = self.l as i64;
        let steps_from_bottom = (l - 1) - position;
        let has_own_root = steps_from_bottom % 2 == 0;
        let mut targets = vec![down];
        if has_own_root {
            // Own root plus any k−2 others; deterministically omit the next
            // root cyclically (the paper allows an arbitrary choice).
            let omit = (s + 1) % k;
            targets.extend((0..k).filter(|&j| j != omit || j == s).map(|j| roots[j]));
        } else {
            targets.extend((0..k).filter(|&j| j != s).map(|j| roots[j]));
        }
        targets
    }

    /// One representative node per symmetry class: the root, one internal
    /// node per depth, one leaf, and every position along one tail. Checking
    /// these suffices for stability of the whole graph because all sections
    /// and all subtrees at equal depth are isomorphic (including the
    /// deterministic root-omission pattern).
    pub fn representative_nodes(&self) -> Vec<(WillowRole, NodeId)> {
        let mut reps = Vec::new();
        // Leftmost path of the first section's tree: depth d node has BFS
        // index (k^d − 1)/(k − 1) ... take the first node at each depth.
        let k = self.k as usize;
        let mut first_at_depth = 0usize;
        for d in 0..=self.h {
            reps.push((WillowRole::Tree { depth: d }, NodeId::new(first_at_depth)));
            first_at_depth = first_at_depth * k + 1;
        }
        let tree = self.tree_size();
        for p in 0..self.l {
            reps.push((
                WillowRole::Tail { position: p },
                NodeId::new(tree + p as usize),
            ));
        }
        reps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::StabilityChecker;
    use bbc_graph::scc::is_strongly_connected;

    #[test]
    fn node_count_matches_formula() {
        // k=2, h=2, l=0: 2·(7) = 14. l=3: 2·(7+12) = 38.
        assert_eq!(ForestOfWillows::new(2, 2, 0).unwrap().node_count(), 14);
        assert_eq!(ForestOfWillows::new(2, 2, 3).unwrap().node_count(), 38);
        // k=3, h=1, l=2: 3·(4 + 3·2) = 30.
        assert_eq!(ForestOfWillows::new(3, 1, 2).unwrap().node_count(), 30);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(
            ForestOfWillows::new(1, 3, 0).is_none(),
            "k=1 is the cycle, not a willow"
        );
        assert!(ForestOfWillows::new(2, 0, 0).is_none());
        assert!(ForestOfWillows::new(2, 25, 1).is_none(), "overflow guard");
    }

    #[test]
    fn every_node_spends_exactly_k() {
        for (k, h, l) in [
            (2u64, 2u32, 0u32),
            (2, 2, 3),
            (3, 1, 2),
            (2, 3, 1),
            (4, 1, 1),
        ] {
            let fow = ForestOfWillows::new(k, h, l).unwrap();
            let cfg = fow.configuration();
            for u in NodeId::all(fow.node_count()) {
                assert_eq!(
                    cfg.out_degree(u),
                    k as usize,
                    "(k={k},h={h},l={l}) node {u} has wrong degree"
                );
            }
        }
    }

    #[test]
    fn graph_is_strongly_connected() {
        for (k, h, l) in [(2u64, 2u32, 0u32), (2, 3, 2), (3, 1, 1), (3, 2, 1)] {
            let fow = ForestOfWillows::new(k, h, l).unwrap();
            let g = fow.configuration().to_graph(&fow.spec());
            assert!(is_strongly_connected(&g), "(k={k},h={h},l={l})");
        }
    }

    #[test]
    fn paper_constraint_evaluates() {
        assert!(ForestOfWillows::new(2, 2, 0)
            .unwrap()
            .satisfies_paper_constraint());
        // Enormous tails relative to n/k violate it.
        let fow = ForestOfWillows::new(2, 1, 20).unwrap();
        assert!(!fow.satisfies_paper_constraint());
    }

    #[test]
    fn last_tail_nodes_link_all_roots() {
        let fow = ForestOfWillows::new(3, 1, 2).unwrap();
        let cfg = fow.configuration();
        let section = fow.section_size();
        let roots: Vec<NodeId> = (0..3).map(|s| NodeId::new(s * section)).collect();
        // First section: tree nodes 0..4 (root 0, leaves 1..3), tails at 4..10.
        // Leaf 1's tail occupies nodes 4,5; node 5 is the last.
        let last = NodeId::new(5);
        assert_eq!(cfg.strategy(last), &roots[..]);
    }

    #[test]
    fn second_to_last_omits_own_root() {
        let fow = ForestOfWillows::new(3, 1, 2).unwrap();
        let cfg = fow.configuration();
        let section = fow.section_size();
        // Node 4 = first tail node of section 0 = second-to-last (l=2).
        let s = cfg.strategy(NodeId::new(4));
        assert!(s.contains(&NodeId::new(5)), "down edge");
        assert!(!s.contains(&NodeId::new(0)), "own root omitted");
        assert!(s.contains(&NodeId::new(section)), "other roots present");
        assert!(s.contains(&NodeId::new(2 * section)));
    }

    #[test]
    fn small_willows_are_stable() {
        // Lemma 6 smoke check (full exact verification lives in E5 and the
        // integration suite). Lemma 2's proof needs h ≥ 3 when k = 2, so use
        // the smallest parameters the paper's argument covers.
        let fow = ForestOfWillows::new(2, 3, 0).unwrap();
        assert!(fow.satisfies_paper_constraint());
        let spec = fow.spec();
        assert!(StabilityChecker::new(&spec)
            .is_stable(&fow.configuration())
            .unwrap());
    }

    #[test]
    fn representatives_cover_each_depth_and_tail_position() {
        let fow = ForestOfWillows::new(2, 3, 2).unwrap();
        let reps = fow.representative_nodes();
        assert_eq!(reps.len(), (3 + 1) + 2);
        assert_eq!(reps[0], (WillowRole::Tree { depth: 0 }, NodeId::new(0)));
        // Depth-1 representative is the root's first child (BFS index 1).
        assert_eq!(reps[1], (WillowRole::Tree { depth: 1 }, NodeId::new(1)));
        // Tail representatives immediately follow the tree block.
        assert_eq!(
            reps[4],
            (
                WillowRole::Tail { position: 0 },
                NodeId::new(fow.tree_size())
            )
        );
    }
}

//! The Ω(n²) convergence lower bound instance (§4.3, after Theorem 6).
//!
//! A `(n,1)`-uniform game whose initial configuration is a directed ring
//! over `r ≥ n/2` nodes with a directed path of `p = n − r` nodes feeding
//! into it. With the round order the paper prescribes — start at the tail of
//! the path, proceed along the path, then around the ring in ring direction
//! — each round extends the ring by exactly one node, so reaching strong
//! connectivity takes Ω(n²) best-response steps.

use bbc_core::{Configuration, GameSpec, NodeId, Scheduler};

/// The ring-plus-path instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RingWithPath {
    ring: usize,
    path: usize,
}

impl RingWithPath {
    /// Creates the instance with `ring` nodes on the cycle and `path` nodes
    /// on the feeding path. The paper requires `ring ≥ path` (i.e.
    /// `r ≥ n/2`); we enforce `ring ≥ 2` and `path ≥ 1`.
    pub fn new(ring: usize, path: usize) -> Option<Self> {
        (ring >= 2 && path >= 1 && ring >= path).then_some(Self { ring, path })
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        self.ring + self.path
    }

    /// The `(n,1)`-uniform game.
    pub fn spec(&self) -> GameSpec {
        GameSpec::uniform(self.node_count(), 1)
    }

    /// Initial configuration: nodes `0..ring` form the cycle
    /// (`i → (i+1) mod ring`); path nodes `ring..n` chain toward the cycle
    /// (`ring+j → ring+j−1`, with `ring` linking node 0).
    ///
    /// Node `ring + path − 1` is the tail `T` that every node can reach from.
    pub fn configuration(&self) -> Configuration {
        let spec = self.spec();
        let n = self.node_count();
        let mut lists: Vec<Vec<NodeId>> = Vec::with_capacity(n);
        for i in 0..self.ring {
            lists.push(vec![NodeId::new((i + 1) % self.ring)]);
        }
        for j in 0..self.path {
            let node = self.ring + j;
            let target = if j == 0 { 0 } else { node - 1 };
            lists.push(vec![NodeId::new(target)]);
        }
        // bbc-lint: allow(panic, the construction buys one unit link per node, within the unit budget by design)
        Configuration::from_strategies(&spec, lists).expect("within budget")
    }

    /// The paper's round order: the tail of the path first, then along the
    /// path toward the ring, then around the ring in ring direction.
    pub fn round_order(&self) -> Scheduler {
        let mut order: Vec<NodeId> = Vec::with_capacity(self.node_count());
        // Path from tail inward: n−1, n−2, …, ring.
        for j in (0..self.path).rev() {
            order.push(NodeId::new(self.ring + j));
        }
        // Ring in ring direction starting at the junction node 0.
        for i in 0..self.ring {
            order.push(NodeId::new(i));
        }
        Scheduler::RoundRobinOrder(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::{Walk, WalkOutcome};
    use bbc_graph::scc::is_strongly_connected;

    #[test]
    fn initial_configuration_shape() {
        let inst = RingWithPath::new(4, 3).unwrap();
        let cfg = inst.configuration();
        assert_eq!(
            cfg.strategy(NodeId::new(3)),
            &[NodeId::new(0)],
            "ring closes"
        );
        assert_eq!(
            cfg.strategy(NodeId::new(4)),
            &[NodeId::new(0)],
            "path head joins ring"
        );
        assert_eq!(
            cfg.strategy(NodeId::new(6)),
            &[NodeId::new(5)],
            "tail chains inward"
        );
        assert!(!is_strongly_connected(&cfg.to_graph(&inst.spec())));
    }

    #[test]
    fn parameters_validated() {
        assert!(RingWithPath::new(1, 1).is_none());
        assert!(RingWithPath::new(3, 4).is_none(), "ring must dominate");
        assert!(RingWithPath::new(4, 4).is_some());
    }

    #[test]
    fn convergence_takes_quadratically_many_steps() {
        // The heart of the Ω(n²) claim: each round absorbs one ring node.
        let inst = RingWithPath::new(8, 4).unwrap();
        let spec = inst.spec();
        let mut walk = Walk::new(&spec, inst.configuration())
            .with_scheduler(inst.round_order())
            .detect_cycles(false);
        let outcome = walk.run(100_000).unwrap();
        assert!(!matches!(outcome, WalkOutcome::StepLimit { .. }));
        let steps = walk
            .stats()
            .steps_to_strong_connectivity
            .expect("must connect");
        let n = inst.node_count() as u64;
        // Ω(n²/c): with p = n/3 path nodes and ~p rounds of n steps each.
        assert!(steps >= n * n / 8, "steps {steps} not quadratic for n {n}");
        assert!(
            steps <= n * n,
            "Theorem 6's n² upper bound violated: {steps}"
        );
    }
}

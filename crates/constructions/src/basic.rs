//! Elementary named configurations for uniform games.

use bbc_core::{Configuration, GameSpec, NodeId};

/// The directed cycle `0 → 1 → … → n−1 → 0` — the canonical stable graph of
/// the `(n,1)`-uniform game (§4.2).
///
/// # Panics
///
/// Panics if `n < 2` or the spec has fewer nodes than `n`.
pub fn directed_cycle(spec: &GameSpec, n: usize) -> Configuration {
    assert!(n >= 2, "cycle needs at least two nodes");
    assert!(spec.node_count() >= n);
    let mut cfg = Configuration::empty(spec.node_count());
    for i in 0..n {
        cfg.set_strategy(spec, NodeId::new(i), vec![NodeId::new((i + 1) % n)])
            // bbc-lint: allow(panic, the cycle buys one unit link per node, affordable by the min-budget assert above)
            .expect("cycle strategy is within budget");
    }
    cfg
}

/// A bidirectional star centred on node 0: the hub buys links to its first
/// `k` neighbours, every other node links the hub. A cheap "good" network
/// for social-cost comparisons.
pub fn star(spec: &GameSpec) -> Configuration {
    let n = spec.node_count();
    let k = spec.budget(NodeId::new(0)) as usize;
    let mut cfg = Configuration::empty(n);
    let hub_targets: Vec<NodeId> = (1..n).take(k).map(NodeId::new).collect();
    cfg.set_strategy(spec, NodeId::new(0), hub_targets)
        // bbc-lint: allow(panic, the hub takes at most k = budget targets)
        .expect("hub strategy within budget");
    for i in 1..n {
        cfg.set_strategy(spec, NodeId::new(i), vec![NodeId::new(0)])
            // bbc-lint: allow(panic, each leaf buys a single unit link, affordable by construction)
            .expect("leaf strategy within budget");
    }
    cfg
}

/// A "greedy BFS tree" configuration rooted at node 0 plus back-links: node
/// 0 links `1..=k`, node `i` links its `k` children `i·k+1 …` where they
/// exist, and every leaf links back to the root. Approximates the
/// social-optimum shape (`Θ(n log_k n)` per-node cost) used as the
/// denominator in price-of-anarchy estimates.
pub fn balanced_tree_with_backlinks(spec: &GameSpec) -> Configuration {
    let n = spec.node_count();
    let k = spec.budget(NodeId::new(0)).max(1) as usize;
    let mut cfg = Configuration::empty(n);
    for i in 0..n {
        let mut targets: Vec<NodeId> = (1..=k)
            .map(|c| i * k + c)
            .filter(|&c| c < n)
            .map(NodeId::new)
            .collect();
        if targets.is_empty() && i != 0 {
            targets.push(NodeId::new(0));
        }
        cfg.set_strategy(spec, NodeId::new(i), targets)
            // bbc-lint: allow(panic, the tree gives each node at most its budget in unit links)
            .expect("tree strategy within budget");
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use bbc_core::Evaluator;
    use bbc_graph::scc::is_strongly_connected;

    #[test]
    fn cycle_is_strongly_connected() {
        let spec = GameSpec::uniform(6, 1);
        let cfg = directed_cycle(&spec, 6);
        assert!(is_strongly_connected(&cfg.to_graph(&spec)));
        assert_eq!(cfg.link_count(), 6);
    }

    #[test]
    fn star_reaches_everyone_when_k_covers_leaves() {
        let spec = GameSpec::uniform(5, 4);
        let cfg = star(&spec);
        assert!(is_strongly_connected(&cfg.to_graph(&spec)));
        let mut eval = Evaluator::new(&spec);
        // Hub at distance 1 from all; leaves at ≤ 2.
        assert_eq!(eval.node_cost(&cfg, NodeId::new(0)), 4);
        assert_eq!(eval.node_cost(&cfg, NodeId::new(1)), 1 + 3 * 2);
    }

    #[test]
    fn tree_with_backlinks_is_strongly_connected() {
        for (n, k) in [(10usize, 2u64), (30, 3), (7, 1)] {
            let spec = GameSpec::uniform(n, k);
            let cfg = balanced_tree_with_backlinks(&spec);
            assert!(is_strongly_connected(&cfg.to_graph(&spec)), "n={n} k={k}");
            for u in NodeId::all(n) {
                assert!(cfg.out_degree(u) <= k as usize);
            }
        }
    }
}

//! E3 — Theorem 3: fractional BBC games admit pure Nash equilibria.
//!
//! The theorem is an existence result in the continuum; the experiment
//! discretizes strategies to a `1/D` lattice and measures the *max regret*
//! of the profile reached by iterated fractional best response, for growing
//! `D`, on instances whose **integral** versions provably have no
//! equilibrium. Regret is reported relative to scale (`regret / D`), so a
//! decreasing column is exactly "the fractional relaxation restores
//! (approximate) stability".

use bbc_analysis::{ExperimentReport, Table};
use bbc_constructions::gadget;
use bbc_core::GameSpec;
use bbc_fractional::{br, FractionalBrOptions, FractionalConfig, FractionalGame};

use crate::{finish, Outcome, RunOptions};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E3",
        "Theorem 3",
        "every fractional BBC game has a pure Nash equilibrium (regret → 0 on the lattice)",
    );
    let mut table = Table::new(&[
        "instance",
        "n",
        "D",
        "rounds",
        "max-regret(scaled)",
        "regret/D",
    ]);

    let witness = gadget::minimal_no_ne_witness();
    let mut instances: Vec<(&str, &GameSpec)> = vec![("minimal-witness", &witness)];
    let gadget_spec;
    if opts.full {
        gadget_spec = gadget::Gadget::new(gadget::GadgetVariant::Restricted).spec();
        instances.push(("gadget/restricted", &gadget_spec));
    }

    let mut shrinks = true;
    for (name, spec) in instances {
        let resolutions: &[u64] = if opts.full { &[1, 2, 4, 6] } else { &[1, 2, 4] };
        let mut first_rel: f64 = f64::NAN;
        let mut last_rel: f64 = f64::NAN;
        for &d in resolutions {
            let game = FractionalGame::new(spec, d);
            let options = FractionalBrOptions::default();
            let rounds = 30;
            let (_, regret) = br::averaged_play_regret(
                &game,
                FractionalConfig::empty(spec.node_count()),
                rounds,
                &options,
            )
            .expect("lattice search fits budget");
            let rel = regret as f64 / d as f64;
            if first_rel.is_nan() {
                first_rel = rel;
            }
            last_rel = rel;
            table.row(&[
                name.to_string(),
                spec.node_count().to_string(),
                d.to_string(),
                rounds.to_string(),
                regret.to_string(),
                format!("{rel:.3}"),
            ]);
        }
        // The refined lattice must come strictly closer to equilibrium than
        // the integral game (which provably has none, so first_rel > 0).
        shrinks &= last_rel < first_rel;
    }

    let measured = format!(
        "regret of fictitious-play averages; relative regret shrinks from the \
         integral game to the finest lattice ({})",
        if shrinks { "confirmed" } else { "violated" }
    );
    let mut outcome = finish(report, table, measured, shrinks);
    outcome.report.notes.push(
        "regret is measured on fictitious-play averages (lattice best responses are always \
         pure, so raw orbits never visit mixed profiles); the integral game (D=1) provably \
         has no equilibrium, while the D≥2 lattices reach exact zero-regret equilibria — \
         the fractional relaxation restores stability exactly as Theorem 3 predicts"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! E3 — Theorem 3: fractional BBC games admit pure Nash equilibria.
//!
//! The theorem is an existence result in the continuum; the experiment
//! discretizes strategies to a `1/D` lattice and measures the *max regret*
//! of the profile reached by iterated fractional best response, for growing
//! `D`, on instances whose **integral** versions provably have no
//! equilibrium. Regret is reported relative to scale (`regret / D`), so a
//! decreasing column is exactly "the fractional relaxation restores
//! (approximate) stability".
//!
//! Each `(instance, D)` lattice run is one resumable sweep point in
//! `target/experiments/E3.jsonl`.

use bbc_analysis::ExperimentReport;
use bbc_constructions::gadget;
use bbc_core::GameSpec;
use bbc_fractional::{br, FractionalBrOptions, FractionalConfig, FractionalGame};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E3",
        "Theorem 3",
        "every fractional BBC game has a pure Nash equilibrium (regret → 0 on the lattice)",
    );
    let resolutions: &[u64] = if opts.full { &[1, 2, 4, 6] } else { &[1, 2, 4] };
    let fingerprint = Fingerprint::new("E3")
        .param("full", opts.full)
        .param(
            "instances",
            if opts.full {
                "minimal-witness, gadget/restricted"
            } else {
                "minimal-witness"
            },
        )
        .param("resolutions", format!("{resolutions:?}"))
        .param("rounds", 30);
    let mut table = StreamingTable::open(
        "E3",
        &[
            "instance",
            "n",
            "D",
            "rounds",
            "max-regret(scaled)",
            "regret/D",
        ],
        &fingerprint,
        opts.resume,
    );

    let witness = gadget::minimal_no_ne_witness();
    let mut instances: Vec<(&str, &GameSpec)> = vec![("minimal-witness", &witness)];
    let gadget_spec;
    if opts.full {
        gadget_spec = gadget::Gadget::new(gadget::GadgetVariant::Restricted).spec();
        instances.push(("gadget/restricted", &gadget_spec));
    }

    let mut shrinks = true;
    for (name, spec) in instances {
        let mut first_rel: f64 = f64::NAN;
        let mut last_rel: f64 = f64::NAN;
        for &d in resolutions {
            let rel = if let Some(rows) = table.begin_point() {
                // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
                rows.first().expect("lattice row recorded").raw_f64(0)
            } else {
                let game = FractionalGame::new(spec, d);
                let options = FractionalBrOptions::default();
                let rounds = 30;
                let (_, regret) = br::averaged_play_regret(
                    &game,
                    FractionalConfig::empty(spec.node_count()),
                    rounds,
                    &options,
                )
                // bbc-lint: allow(panic, run() has no error channel; the lattice budget is sized above the pinned resolutions)
                .expect("lattice search fits budget");
                let rel = regret as f64 / d as f64;
                table.row_raw(
                    &[
                        name.to_string(),
                        spec.node_count().to_string(),
                        d.to_string(),
                        rounds.to_string(),
                        regret.to_string(),
                        format!("{rel:.3}"),
                    ],
                    &[rel.to_string()],
                );
                rel
            };
            if first_rel.is_nan() {
                first_rel = rel;
            }
            last_rel = rel;
        }
        // The refined lattice must come strictly closer to equilibrium than
        // the integral game (which provably has none, so first_rel > 0).
        shrinks &= last_rel < first_rel;
    }

    let measured = format!(
        "regret of fictitious-play averages; relative regret shrinks from the \
         integral game to the finest lattice ({})",
        if shrinks { "confirmed" } else { "violated" }
    );
    let mut outcome = finish_streamed(report, table, measured, shrinks);
    outcome.report.notes.push(
        "regret is measured on fictitious-play averages (lattice best responses are always \
         pure, so raw orbits never visit mixed profiles); the integral game (D=1) provably \
         has no equilibrium, while the D≥2 lattices reach exact zero-regret equilibria — \
         the fractional relaxation restores stability exactly as Theorem 3 predicts"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

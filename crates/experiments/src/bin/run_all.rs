//! Runs every experiment (E1–E13) in order. Flags: --full for heavy
//! sweeps, --resume to skip sweep points already recorded in the per-
//! experiment JSONL streams, --fresh (default) to truncate and restart.
//!
//! Exits non-zero when any experiment disagrees with the paper outside the
//! documented discrepancy allowlist
//! ([`bbc_experiments::DISCREPANCY_ALLOWLIST`]), so CI and scripted sweeps
//! catch reproduction regressions instead of scrolling past them.
use bbc_experiments::{run_all, unexpected_disagreements, RunOptions, DISCREPANCY_ALLOWLIST};

fn main() {
    let outcomes = run_all(&RunOptions::from_env());
    let agreeing = outcomes.iter().filter(|o| o.report.agrees).count();
    println!(
        "==> {agreeing}/{} experiments agree with the paper",
        outcomes.len()
    );
    let unexpected = unexpected_disagreements(&outcomes);
    if !unexpected.is_empty() {
        eprintln!(
            "==> FAIL: {} disagree(s) outside the documented allowlist {:?}",
            unexpected.join(", "),
            DISCREPANCY_ALLOWLIST
        );
        std::process::exit(1);
    }
}

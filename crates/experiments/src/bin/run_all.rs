//! Runs every experiment (E1–E12) in order. Pass --full for heavy sweeps.
use bbc_experiments::{run_all, RunOptions};

fn main() {
    let outcomes = run_all(&RunOptions::from_env());
    let agreeing = outcomes.iter().filter(|o| o.report.agrees).count();
    println!(
        "==> {agreeing}/{} experiments agree with the paper",
        outcomes.len()
    );
}

//! Binary wrapper for experiment E2. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e02::cli();
}

//! Binary wrapper for experiment E11. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e11::cli();
}

//! Binary wrapper for experiment E10. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e10::cli();
}

//! Binary wrapper for experiment E14. Flags: --full (heavy sweeps),
//! --resume (skip sweep points already recorded in the JSONL stream),
//! --fresh (truncate and restart the stream; the default).
fn main() {
    bbc_experiments::e14::cli();
}

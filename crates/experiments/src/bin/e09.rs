//! Binary wrapper for experiment E9. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e09::cli();
}

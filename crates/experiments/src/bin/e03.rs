//! Binary wrapper for experiment E3. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e03::cli();
}

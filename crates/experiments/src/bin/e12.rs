//! Binary wrapper for experiment E12. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e12::cli();
}

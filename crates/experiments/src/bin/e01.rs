//! Binary wrapper for experiment E1. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e01::cli();
}

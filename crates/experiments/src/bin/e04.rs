//! Binary wrapper for experiment E4. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e04::cli();
}

//! Binary wrapper for experiment E8. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e08::cli();
}

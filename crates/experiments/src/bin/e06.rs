//! Binary wrapper for experiment E6. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e06::cli();
}

//! Binary wrapper for experiment E7. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e07::cli();
}

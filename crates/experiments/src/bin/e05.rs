//! Binary wrapper for experiment E5. Pass --full for the heavy sweeps.
fn main() {
    bbc_experiments::e05::cli();
}

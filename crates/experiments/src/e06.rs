//! E6 — Theorem 4: the price of stability is Θ(1) and the price of anarchy
//! grows like √(n/k)/log_k n.
//!
//! For each `(k, h)` the experiment prices two stable graphs against the
//! structural lower bound `n · mincost(n, k)`:
//!
//! * Forest of Willows with `l = 0` — the best equilibrium (PoS witness):
//!   its ratio should stay Θ(1) as `n` grows;
//! * Forest of Willows with the largest `l` the paper's constraint admits —
//!   the worst known equilibrium (PoA witness): its ratio should track the
//!   `√(n/k)/log_k n` curve.
//!
//! Each `(k, h)` pricing is one resumable sweep point: a `--resume` run
//! replays recorded points from `target/experiments/E6.jsonl` (the `raw`
//! state carries the exact PoS ratio, normalized PoA and Lemma-7 verdict)
//! and prices only the missing parameters.

use bbc_analysis::{social, ExperimentReport};
use bbc_constructions::ForestOfWillows;

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Largest tail length within the paper's constraint for the given tree.
fn max_constrained_tail(k: u64, h: u32) -> Option<u32> {
    let mut best = None;
    for l in 0..4096 {
        match ForestOfWillows::new(k, h, l) {
            Some(fow) if fow.satisfies_paper_constraint() => best = Some(l),
            Some(_) => break,
            None => break,
        }
    }
    best
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E6",
        "Theorem 4",
        "price of stability is Θ(1); price of anarchy is Ω(√(n/k)/log_k n); \
         stable diameters are O(√(n·log_k n)) (Lemma 7)",
    );

    let params: &[(u64, u32)] = if opts.full {
        &[
            (2, 3),
            (2, 4),
            (2, 5),
            (2, 6),
            (2, 7),
            (3, 2),
            (3, 3),
            (3, 4),
            (4, 2),
            (4, 3),
        ]
    } else {
        &[(2, 3), (2, 4), (2, 5), (3, 2), (3, 3)]
    };

    let fingerprint = Fingerprint::new("E6")
        .param("full", opts.full)
        .param("grid", format!("{params:?}"))
        .param("family", "forest-of-willows l=0 vs max-constrained-tail");
    // Each (k, h) sweep point streams to target/experiments/E6.jsonl as it
    // is priced, so a long --full sweep is inspectable before it finishes
    // and restartable afterwards.
    let mut table = StreamingTable::open(
        "E6",
        &[
            "k",
            "h",
            "n(best)",
            "PoS-ratio",
            "l(worst)",
            "n(worst)",
            "PoA-ratio",
            "curve",
            "PoA/curve",
            "diam(worst)",
            "L7-bound",
        ],
        &fingerprint,
        opts.resume,
    );

    let mut pos_ratios = Vec::new();
    let mut normalized_poa = Vec::new();
    let mut diam_ok = true;
    for &(k, h) in params {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                pos_ratios.push(r.raw_f64(0));
                normalized_poa.push(r.raw_f64(1));
                diam_ok &= r.raw_bool(2);
            }
            continue;
        }
        // Both the best (l = 0) and the constrained worst willow must exist
        // for the point to be priced; every aggregate rides the row, so a
        // skipped parameter contributes nothing (and replays as nothing).
        let Some(best) = ForestOfWillows::new(k, h, 0) else {
            continue;
        };
        let Some(l) = max_constrained_tail(k, h) else {
            continue;
        };
        let best_ratio = social::price_ratio(&best.spec(), &best.configuration());
        pos_ratios.push(best_ratio);

        // bbc-lint: allow(panic, the (k,h,l) grid is pre-filtered to constructible willows)
        let worst = ForestOfWillows::new(k, h, l).expect("constrained tail exists");
        let n_worst = worst.node_count();
        let worst_ratio = social::price_ratio(&worst.spec(), &worst.configuration());
        let curve = social::poa_lower_bound_curve(n_worst, k);
        let normalized = worst_ratio / curve;
        normalized_poa.push(normalized);

        // Lemma 7: the diameter of any stable graph is O(√(n·log_k n)).
        let diam = bbc_graph::diameter::diameter(&worst.configuration().to_graph(&worst.spec()))
            // bbc-lint: allow(panic, willow equilibria are strongly connected by Lemma 7, so the diameter exists)
            .expect("willows are strongly connected");
        let logk = (n_worst as f64).ln() / (k as f64).ln();
        let l7_bound = (n_worst as f64 * logk).sqrt();
        let point_diam_ok = (diam as f64) <= 4.0 * l7_bound;
        diam_ok &= point_diam_ok;

        table.row_raw(
            &[
                k.to_string(),
                h.to_string(),
                best.node_count().to_string(),
                format!("{best_ratio:.3}"),
                l.to_string(),
                n_worst.to_string(),
                format!("{worst_ratio:.3}"),
                format!("{curve:.3}"),
                format!("{normalized:.3}"),
                diam.to_string(),
                format!("{l7_bound:.1}"),
            ],
            &[
                best_ratio.to_string(),
                normalized.to_string(),
                point_diam_ok.to_string(),
            ],
        );
    }

    // Verdict: PoS ratios bounded by a small constant; PoA/curve within a
    // constant band (shape agreement, not absolute numbers).
    let pos_bounded = pos_ratios.iter().all(|&r| r < 4.0);
    let (lo, hi) = normalized_poa
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let poa_banded = hi / lo < 6.0;
    let agrees = pos_bounded && poa_banded && diam_ok;

    let measured = format!(
        "PoS ratios ≤ {:.2} (constant); PoA/curve spread {:.2}..{:.2} (bounded band)",
        pos_ratios.iter().cloned().fold(0.0, f64::max),
        lo,
        hi
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes.push(
        "ratios are against the exact degree-k packing lower bound; the paper's curve is \
         asymptotic, so shape (bounded PoA/curve band) is the reproduction target"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

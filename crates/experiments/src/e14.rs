//! E14 — §1.1 / §4.3 under churn: dynamic membership on circulant overlays.
//!
//! The paper motivates BBC games with p2p overlays, and the defining p2p
//! workload is *churn*: peers join and leave while the survivors re-optimize
//! their bounded-budget links (the perturbation-response question the
//! follow-up "On a Bounded Budget Network Creation Game" studies for
//! equilibria). This experiment sweeps churn-rate × peer-count on the same
//! circulant family as [`crate::e13`], driving the engine's node-lifecycle
//! layer through [`ChurnSim`]: each sweep point deploys an `{1, √n}`
//! circulant, lets it play toward (non-)equilibrium, then applies a seeded
//! stream of join/leave events, each followed by a re-equilibration phase of
//! `rate · n` best-response steps on the parallel oracle-prefill path.
//!
//! Per point the sweep records how play absorbs the events: how many phases
//! re-certified an equilibrium or provably looped, steps-to-requilibrate,
//! the social-cost regret of the spikes, the worst disconnection exposure a
//! leave created and whether settling healed it all. The first point also
//! re-runs its sim at a different `prefill_threads` and compares trajectory
//! digests — the churn determinism contract, checked end to end inside the
//! experiment itself.
//!
//! Every point is one resumable checkpoint in `target/experiments/E14.jsonl`
//! (kill/`--resume` byte-identity as for every stream); the pinned-seed
//! digest also feeds the release churn smoke test.

use bbc_analysis::ExperimentReport;
use bbc_constructions::CayleyGraph;
use bbc_core::{ChurnConfig, ChurnSim};

use crate::{finish_streamed, Fingerprint, MetricsSidecar, Outcome, RunOptions, StreamingTable};

/// One sweep point: peer count, settle budget in rounds ("churn rate" —
/// rate 1 means the survivors get one round-robin round per event), and the
/// number of churn events.
#[derive(Clone, Copy, Debug)]
struct SweepPoint {
    peers: u64,
    rate: u64,
    events: u32,
}

/// The churn configuration of one sweep point (shared by the experiment and
/// the determinism cross-check).
fn churn_config(point: &SweepPoint, prefill_threads: usize) -> ChurnConfig {
    ChurnConfig {
        seed: point.peers * 10 + point.rate,
        events: point.events,
        min_live: (point.peers / 2) as usize,
        settle_steps: point.rate * point.peers,
        leave_weight: 1,
        join_weight: 1,
        shock_weight: 0,
        prefill_threads,
        scheduler: bbc_core::Scheduler::RoundRobin,
    }
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E14",
        "§1.1 / §4.3 (churn runtime)",
        "a circulant overlay under seeded join/leave churn is absorbed by bounded \
         best-response play — deterministically (byte-identical trajectories at any \
         oracle thread count), with every event applied and accounted",
    );

    let points: &[SweepPoint] = if opts.full {
        &[
            SweepPoint {
                peers: 64,
                rate: 1,
                events: 8,
            },
            SweepPoint {
                peers: 64,
                rate: 4,
                events: 8,
            },
            SweepPoint {
                peers: 128,
                rate: 1,
                events: 8,
            },
            SweepPoint {
                peers: 128,
                rate: 4,
                events: 8,
            },
            SweepPoint {
                peers: 256,
                rate: 1,
                events: 8,
            },
            SweepPoint {
                peers: 256,
                rate: 4,
                events: 8,
            },
            SweepPoint {
                peers: 512,
                rate: 1,
                events: 4,
            },
        ]
    } else {
        &[
            SweepPoint {
                peers: 64,
                rate: 1,
                events: 4,
            },
            SweepPoint {
                peers: 64,
                rate: 4,
                events: 4,
            },
            SweepPoint {
                peers: 128,
                rate: 1,
                events: 4,
            },
            SweepPoint {
                peers: 128,
                rate: 4,
                events: 4,
            },
            SweepPoint {
                peers: 256,
                rate: 1,
                events: 4,
            },
        ]
    };

    let fingerprint = Fingerprint::new("E14")
        .param("full", opts.full)
        .param("grid", format!("{points:?}"))
        .param("family", "circulant{1,round(√n)}")
        .param("scheduler", "round-robin")
        .param("seeds", "10n+rate")
        .param("weights", "leave=1,join=1,shock=0");
    let mut table = StreamingTable::open(
        "E14",
        &[
            "n",
            "rate",
            "events",
            "joins/leaves",
            "settled",
            "looped",
            "mean-steps",
            "max-steps",
            "regret",
            "max-disc",
            "healed",
            "digest",
        ],
        &fingerprint,
        opts.resume,
    );

    let mut sidecar = MetricsSidecar::from_env("E14");
    let mut all_events_applied = true;
    let mut determinism_ok = true;
    let mut total_events = 0u64;
    let mut total_settled = 0u64;
    let mut total_looped = 0u64;
    for (i, point) in points.iter().enumerate() {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_events_applied &= r.raw_bool(0);
                determinism_ok &= r.raw_bool(1);
                total_events += r.raw_u64(2);
                total_settled += r.raw_u64(3);
                total_looped += r.raw_u64(4);
            }
            continue;
        }
        let root = (point.peers as f64).sqrt().round() as u64;
        let Some(overlay) = CayleyGraph::circulant(point.peers, &[1, root]) else {
            continue;
        };
        let spec = overlay.spec();
        let designed = overlay.configuration();
        let cfg = churn_config(point, crate::default_threads());
        let mut sim = ChurnSim::new(&spec, designed.clone(), cfg)
            .with_landmarks(crate::landmark_policy_from_env());
        let sim_report = sim
            .run()
            // bbc-lint: allow(panic, run() has no error channel; churn budgets are sized above the pinned phases)
            .expect("churn phases fit the search budget");
        let mut registry = bbc_obs::Registry::new();
        sim.publish_metrics(&mut registry);
        sidecar.emit(
            &format!(
                "n={} rate={} events={}",
                point.peers, point.rate, point.events
            ),
            &registry,
        );

        // Determinism cross-check on the first (cheapest) point: a second
        // sim at a different oracle thread count must replay the identical
        // trajectory. (Every point would pass; one keeps the sweep fast.)
        let deterministic = if i == 0 {
            let other_threads = if crate::default_threads() == 1 { 2 } else { 1 };
            let again = ChurnSim::new(&spec, designed, churn_config(point, other_threads))
                .with_landmarks(crate::landmark_policy_from_env())
                .run()
                // bbc-lint: allow(panic, run() has no error channel; churn budgets are sized above the pinned phases)
                .expect("cross-check fits the search budget");
            again.trajectory_digest == sim_report.trajectory_digest
        } else {
            true
        };
        determinism_ok &= deterministic;

        let applied = sim_report.events.len() as u32 == point.events;
        all_events_applied &= applied;
        let joins = sim_report
            .events
            .iter()
            .filter(|e| matches!(e.event, bbc_core::ChurnEvent::Join { .. }))
            .count();
        let leaves = sim_report.events.len() - joins;
        let settled = sim_report.events.iter().filter(|e| e.settled).count() as u64;
        let looped = sim_report.events.iter().filter(|e| e.looped).count() as u64;
        total_events += sim_report.events.len() as u64;
        total_settled += settled;
        total_looped += looped;

        table.row_raw(
            &[
                point.peers.to_string(),
                point.rate.to_string(),
                sim_report.events.len().to_string(),
                format!("{joins}/{leaves}"),
                settled.to_string(),
                looped.to_string(),
                format!("{:.1}", sim_report.mean_steps_to_requilibrate()),
                sim_report.max_steps_to_requilibrate().to_string(),
                sim_report.total_regret().to_string(),
                sim_report.max_disconnected().to_string(),
                sim_report.all_exposure_healed().to_string(),
                format!("{:016x}", sim_report.trajectory_digest),
            ],
            &[
                applied.to_string(),
                deterministic.to_string(),
                sim_report.events.len().to_string(),
                settled.to_string(),
                looped.to_string(),
            ],
        );
    }

    let agrees = all_events_applied && determinism_ok && total_events > 0;
    let measured = format!(
        "{total_events} churn events applied across {} sweep points \
         ({total_settled} re-equilibrated, {total_looped} certified loops); \
         trajectories byte-identical across prefill thread counts: {determinism_ok}",
        points.len()
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes.push(
        "each event's re-equilibration runs rate·n best-response steps through the \
         engine's node-lifecycle layer (DistanceEngine::remove_node/add_node) with the \
         oracle fan-out on the parallel prefill path; the trajectory digest pins the \
         full event/move stream"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

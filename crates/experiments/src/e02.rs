//! E2 — Theorem 2 / Figure 2: SAT ⇔ NE through the reduction.
//!
//! For each formula: solve it independently with DPLL, then decide
//! equilibrium existence of the reduced BBC game. Satisfiable side: the
//! canonical profile is checked stable (existence certificate) and, when the
//! candidate space is small enough, the full scan runs too. Unsatisfiable
//! side: the full candidate-space scan must come back empty.
//!
//! Each formula is one resumable sweep point in
//! `target/experiments/E2.jsonl`; a `--resume` run re-decides only the
//! formulas the previous run never reached.

use bbc_analysis::ExperimentReport;
use bbc_constructions::SatReduction;
use bbc_core::{enumerate, StabilityChecker};
use bbc_sat::{dpll, gen, Cnf, Lit};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// The formula suite: `(name, cnf)`.
fn suite(full: bool) -> Vec<(String, Cnf)> {
    let (sat3, _) = gen::fixtures();
    let mut formulas = vec![
        (
            "unsat/x∧¬x".to_string(),
            Cnf::new(1, vec![vec![Lit::pos(0)], vec![Lit::neg(0)]]),
        ),
        (
            "unsat/2var-4clause".to_string(),
            Cnf::new(
                2,
                vec![
                    vec![Lit::pos(0), Lit::pos(1)],
                    vec![Lit::pos(0), Lit::neg(1)],
                    vec![Lit::neg(0), Lit::pos(1)],
                    vec![Lit::neg(0), Lit::neg(1)],
                ],
            ),
        ),
        ("sat/fixture-3sat".to_string(), sat3),
        ("sat/x".to_string(), Cnf::new(1, vec![vec![Lit::pos(0)]])),
        (
            "sat/chain".to_string(),
            Cnf::new(
                3,
                vec![
                    vec![Lit::pos(0)],
                    vec![Lit::neg(0), Lit::pos(1)],
                    vec![Lit::neg(1), Lit::pos(2)],
                ],
            ),
        ),
    ];
    let extra = if full { 8 } else { 3 };
    for seed in 0..extra {
        formulas.push((format!("sat/random-{seed}"), gen::random_3sat(3, 2, seed)));
    }
    formulas
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E2",
        "Theorem 2 / Figure 2",
        "the reduced game has a pure NE exactly when the formula is satisfiable",
    );
    let formulas = suite(opts.full);
    let fingerprint = Fingerprint::new("E2")
        .param("full", opts.full)
        .param(
            "formulas",
            formulas
                .iter()
                .map(|(name, _)| name.as_str())
                .collect::<Vec<_>>()
                .join(","),
        )
        .param("scan-budget", 3_000_000);
    let mut table = StreamingTable::open(
        "E2",
        &[
            "formula", "vars", "clauses", "dpll", "game-NE", "profiles", "agree",
        ],
        &fingerprint,
        opts.resume,
    );
    let mut all_agree = true;

    for (name, cnf) in formulas {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_agree &= r.raw_bool(0);
            }
            continue;
        }
        let sat = dpll::solve(&cnf);
        let reduction = SatReduction::new(cnf.clone());
        let spec = reduction.spec();
        let space = reduction
            .profile_space(&spec)
            // bbc-lint: allow(panic, reduction spaces for the pinned formulas are small by construction)
            .expect("candidate space builds");
        let profile_count = space.profile_count();

        let (game_ne, profiles_str) = if profile_count <= 3_000_000 {
            let threads = crate::default_threads();
            let result = enumerate::find_equilibria_parallel(&spec, &space, 3_000_000, threads)
                // bbc-lint: allow(panic, run() has no error channel; the profile_count gate above bounds the scan)
                .expect("scan fits budget");
            (
                !result.equilibria.is_empty(),
                result.profiles_checked.to_string(),
            )
        } else if let Some(assignment) = &sat {
            // Too large to scan; the canonical profile is an existence
            // certificate for the satisfiable direction.
            let canonical = reduction.canonical_equilibrium(&spec, assignment);
            let stable = StabilityChecker::new(&spec)
                .is_stable(&canonical)
                // bbc-lint: allow(panic, run() has no error channel; stability checks on the pinned formulas fit the default budget)
                .expect("stability check fits budget");
            (stable, format!("canonical/{profile_count}"))
        } else {
            (false, format!("skipped/{profile_count}"))
        };

        let agree = sat.is_some() == game_ne;
        all_agree &= agree;
        table.row_raw(
            &[
                name,
                cnf.num_vars().to_string(),
                cnf.num_clauses().to_string(),
                if sat.is_some() { "SAT" } else { "UNSAT" }.to_string(),
                if game_ne { "yes" } else { "no" }.to_string(),
                profiles_str,
                if agree { "✓" } else { "✗" }.to_string(),
            ],
            &[agree.to_string()],
        );
    }

    let measured = format!(
        "{} formulas; DPLL and the game-theoretic answer agree on {}",
        table.len(),
        if all_agree {
            "all of them"
        } else {
            "NOT all of them"
        }
    );
    let mut outcome = finish_streamed(report, table, measured, all_agree);
    outcome.report.notes.push(
        "reduction uses the repaired weights documented in bbc-constructions::sat_reduction \
         (truth-node anchors, bottom→S links, re-derived center weights)"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! E7 — Theorem 5 / Corollary 1 / Lemma 8: regularity versus stability.
//!
//! Three parts, each graph one resumable sweep point in
//! `target/experiments/E7.jsonl`:
//!
//! * **hypercubes** (`2^d` nodes, degree `d`): Corollary 1 says unstable for
//!   `d > 4`. We look for an improving deviation at node 0: exact best
//!   response where the subset search is feasible, otherwise the paper's
//!   generator-doubling move plus the greedy heuristic;
//! * **circulants** `Z_n` with spread offsets: Theorem 5 predicts
//!   instability once `n ≫ 2^k`;
//! * **Lemma 8**: for `k > (n−2)/2` every Abelian Cayley graph is stable —
//!   checked exactly on small complete-ish circulants.

use bbc_analysis::ExperimentReport;
use bbc_constructions::CayleyGraph;
use bbc_core::{best_response, BestResponseOptions, Evaluator, NodeId, StabilityChecker};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Does node 0 have a strictly improving deviation? Returns
/// `(improves, method)`.
fn node0_improves(c: &CayleyGraph, exact_limit: u64) -> (bool, &'static str) {
    let spec = c.spec();
    let cfg = c.configuration();
    let options = BestResponseOptions {
        evaluation_limit: exact_limit,
        stop_at_first_improvement: true,
    };
    match best_response::exact(&spec, &cfg, NodeId::new(0), &options) {
        Ok(out) => (out.improves(), "exact"),
        Err(_) => {
            // Search space too large: paper's doubling move, then greedy.
            let mut eval = Evaluator::new(&spec);
            let before = eval.node_cost(&cfg, NodeId::new(0));
            for i in 0..c.degree() {
                if let Some(strategy) = c.paper_deviation(i) {
                    let mut moved = cfg.clone();
                    moved
                        .set_strategy(&spec, NodeId::new(0), strategy)
                        // bbc-lint: allow(panic, enumerated deviations are drawn from the budget-feasible set)
                        .expect("deviation within budget");
                    if eval.node_cost(&moved, NodeId::new(0)) < before {
                        return (true, "paper-move");
                    }
                }
            }
            let out = best_response::greedy(&spec, &cfg, NodeId::new(0));
            (out.improves(), "greedy")
        }
    }
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E7",
        "Theorem 5 / Corollary 1 / Lemma 8",
        "Abelian Cayley graphs are unstable for k ≥ 2 once n ≫ 2^k (hypercubes: k > 4); \
         stable when k > (n−2)/2",
    );

    let dims: &[u32] = if opts.full {
        &[2, 3, 4, 5, 6, 7, 8]
    } else {
        &[2, 3, 4, 5, 6]
    };
    let sizes: &[u64] = if opts.full {
        &[16, 32, 64, 128, 256, 512]
    } else {
        &[16, 32, 64, 128]
    };
    let lemma8: &[(u64, usize)] = &[(6, 3), (8, 4), (10, 5)];

    let fingerprint = Fingerprint::new("E7")
        .param("full", opts.full)
        .param("hypercube-dims", format!("{dims:?}"))
        .param("circulant-sizes", format!("{sizes:?}"))
        .param("lemma8", format!("{lemma8:?}"))
        .param("exact-limit", 2_000_000);
    let mut table = StreamingTable::open(
        "E7",
        &["graph", "n", "k", "expected", "observed", "method"],
        &fingerprint,
        opts.resume,
    );
    let mut agrees = true;

    // Hypercubes. Corollary 1 claims instability for k > 4; below that the
    // paper makes no claim, so only the k > 4 rows count toward the verdict
    // (the `raw` verdict contribution is pre-neutralized for no-claim rows).
    for &d in dims {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                agrees &= r.raw_bool(0);
            }
            continue;
        }
        let Some(c) = CayleyGraph::hypercube(d) else {
            continue;
        };
        let (improves, method) = node0_improves(&c, 2_000_000);
        let expected = if d > 4 { "unstable" } else { "(no claim)" };
        let contribution = d <= 4 || improves;
        agrees &= contribution;
        table.row_raw(
            &[
                format!("hypercube(d={d})"),
                (1usize << d).to_string(),
                d.to_string(),
                expected.to_string(),
                if improves { "unstable" } else { "no-witness" }.to_string(),
                method.to_string(),
            ],
            &[contribution.to_string()],
        );
    }

    // Circulants with spread offsets (k = 2): n ≫ 2² should be unstable.
    for &n in sizes {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                agrees &= r.raw_bool(0);
            }
            continue;
        }
        let root = (n as f64).sqrt().round() as u64;
        let Some(c) = CayleyGraph::circulant(n, &[1, root]) else {
            continue;
        };
        let (improves, method) = node0_improves(&c, 2_000_000);
        agrees &= improves;
        table.row_raw(
            &[
                format!("circulant({{1,{root}}})"),
                n.to_string(),
                "2".to_string(),
                "unstable".to_string(),
                if improves { "unstable" } else { "no-witness" }.to_string(),
                method.to_string(),
            ],
            &[improves.to_string()],
        );
    }

    // Lemma 8: k > (n−2)/2.
    for &(n, k) in lemma8 {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                agrees &= r.raw_bool(0);
            }
            continue;
        }
        let offsets: Vec<u64> = (1..=k as u64).collect();
        let Some(c) = CayleyGraph::circulant(n, &offsets) else {
            continue;
        };
        let spec = c.spec();
        let stable = StabilityChecker::new(&spec)
            .is_stable(&c.configuration())
            // bbc-lint: allow(panic, run() has no error channel; the pinned constructions fit the default budget)
            .expect("exact check fits budget");
        agrees &= stable;
        table.row_raw(
            &[
                format!("circulant(1..={k})"),
                n.to_string(),
                k.to_string(),
                "stable".to_string(),
                if stable { "stable" } else { "unstable" }.to_string(),
                "exact".to_string(),
            ],
            &[stable.to_string()],
        );
    }

    let measured = format!(
        "{} regular graphs tested; every paper prediction matched: {}",
        table.len(),
        agrees
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes.push(
        "implication (paper §4.2): an overlay designer must give up stability to keep \
         regularity — every large regular topology here admits a profitable rewiring"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

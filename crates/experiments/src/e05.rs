//! E5 — Lemma 6 / Figure 3: Forest of Willows graphs are stable.
//!
//! Small instances get a full exact check (every node's exact best
//! response); larger ones a symmetry-reduced exact check over one
//! representative per structural class (root, each tree depth, each tail
//! position), labelled as such. Parameters outside the paper's constraint
//! (or below the `h ≥ 3` threshold Lemma 2's `k = 2` case needs) are also
//! measured and reported — observed stability there is a bonus finding, not
//! a claim.

use bbc_analysis::{ExperimentReport, Table};
use bbc_constructions::ForestOfWillows;
use bbc_core::{best_response, BestResponseOptions, StabilityChecker};

use crate::{finish, Outcome, RunOptions};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E5",
        "Lemma 6 / Figure 3",
        "every Forest of Willows graph (within the paper's parameter constraint) is a \
         pure Nash equilibrium",
    );
    let mut table = Table::new(&["k", "h", "l", "n", "constraint", "check", "stable"]);
    let mut claimed_all_stable = true;

    let params: &[(u64, u32, u32)] = if opts.full {
        &[
            (2, 3, 0),
            (2, 3, 1),
            (2, 3, 2),
            (2, 3, 3),
            (2, 4, 0),
            (2, 4, 2),
            (2, 4, 4),
            (3, 2, 0),
            (3, 2, 1),
            (3, 3, 0),
            (4, 2, 0),
            (2, 2, 0), // below the h≥3 proof threshold: bonus row
            (3, 1, 1), // ditto
        ]
    } else {
        &[
            (2, 3, 0),
            (2, 3, 2),
            (2, 4, 0),
            (3, 2, 0),
            (3, 2, 1),
            (2, 2, 0),
        ]
    };

    for &(k, h, l) in params {
        let Some(fow) = ForestOfWillows::new(k, h, l) else {
            continue;
        };
        let spec = fow.spec();
        let cfg = fow.configuration();
        let n = fow.node_count();
        let within = fow.satisfies_paper_constraint() && (k >= 3 || h >= 3);

        let (mode, stable) = if n <= 64 {
            let stable = StabilityChecker::new(&spec)
                .is_stable(&cfg)
                .expect("exact check fits budget");
            ("full-exact", stable)
        } else {
            // Symmetry-reduced: exact best response for one representative
            // per class.
            let options = BestResponseOptions::default();
            let mut stable = true;
            for (_, rep) in fow.representative_nodes() {
                let out = best_response::exact(&spec, &cfg, rep, &options)
                    .expect("exact best response fits budget");
                if out.improves() {
                    stable = false;
                    break;
                }
            }
            ("class-exact", stable)
        };

        if within {
            claimed_all_stable &= stable;
        }
        table.row(&[
            k.to_string(),
            h.to_string(),
            l.to_string(),
            n.to_string(),
            if within { "paper" } else { "extra" }.to_string(),
            mode.to_string(),
            if stable { "✓" } else { "✗" }.to_string(),
        ]);
    }

    let measured = format!(
        "{} parameter sets checked; all paper-constraint instances stable: {}",
        table.len(),
        claimed_all_stable
    );
    let mut outcome = finish(report, table, measured, claimed_all_stable);
    outcome.report.notes.push(
        "class-exact = one exact best-response per structural symmetry class \
         (sections and equal-depth subtrees are isomorphic by construction)"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

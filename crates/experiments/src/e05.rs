//! E5 — Lemma 6 / Figure 3: Forest of Willows graphs are stable.
//!
//! Small instances get a full exact check (every node's exact best
//! response); larger ones a symmetry-reduced exact check over one
//! representative per structural class (root, each tree depth, each tail
//! position), labelled as such. Parameters outside the paper's constraint
//! (or below the `h ≥ 3` threshold Lemma 2's `k = 2` case needs) are also
//! measured and reported — observed stability there is a bonus finding, not
//! a claim.
//!
//! Each `(k, h, l)` check is one resumable sweep point in
//! `target/experiments/E5.jsonl`.

use bbc_analysis::ExperimentReport;
use bbc_constructions::ForestOfWillows;
use bbc_core::{best_response, BestResponseOptions, StabilityChecker};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E5",
        "Lemma 6 / Figure 3",
        "every Forest of Willows graph (within the paper's parameter constraint) is a \
         pure Nash equilibrium",
    );

    let params: &[(u64, u32, u32)] = if opts.full {
        &[
            (2, 3, 0),
            (2, 3, 1),
            (2, 3, 2),
            (2, 3, 3),
            (2, 4, 0),
            (2, 4, 2),
            (2, 4, 4),
            (3, 2, 0),
            (3, 2, 1),
            (3, 3, 0),
            (4, 2, 0),
            (2, 2, 0), // below the h≥3 proof threshold: bonus row
            (3, 1, 1), // ditto
        ]
    } else {
        &[
            (2, 3, 0),
            (2, 3, 2),
            (2, 4, 0),
            (3, 2, 0),
            (3, 2, 1),
            (2, 2, 0),
        ]
    };

    let fingerprint = Fingerprint::new("E5")
        .param("full", opts.full)
        .param("grid", format!("{params:?}"))
        .param("full-exact-cutoff", 64);
    let mut table = StreamingTable::open(
        "E5",
        &["k", "h", "l", "n", "constraint", "check", "stable"],
        &fingerprint,
        opts.resume,
    );
    let mut claimed_all_stable = true;

    for &(k, h, l) in params {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                // within-constraint instances must be stable; others are
                // bonus findings.
                claimed_all_stable &= !r.raw_bool(0) || r.raw_bool(1);
            }
            continue;
        }
        let Some(fow) = ForestOfWillows::new(k, h, l) else {
            continue;
        };
        let spec = fow.spec();
        let cfg = fow.configuration();
        let n = fow.node_count();
        let within = fow.satisfies_paper_constraint() && (k >= 3 || h >= 3);

        let (mode, stable) = if n <= 64 {
            let stable = StabilityChecker::new(&spec)
                .is_stable(&cfg)
                // bbc-lint: allow(panic, run() has no error channel; the n <= 64 gate keeps the exact check in budget)
                .expect("exact check fits budget");
            ("full-exact", stable)
        } else {
            // Symmetry-reduced: exact best response for one representative
            // per class.
            let options = BestResponseOptions::default();
            let mut stable = true;
            for (_, rep) in fow.representative_nodes() {
                let out = best_response::exact(&spec, &cfg, rep, &options)
                    // bbc-lint: allow(panic, run() has no error channel; representative best responses fit the default budget)
                    .expect("exact best response fits budget");
                if out.improves() {
                    stable = false;
                    break;
                }
            }
            ("class-exact", stable)
        };

        if within {
            claimed_all_stable &= stable;
        }
        table.row_raw(
            &[
                k.to_string(),
                h.to_string(),
                l.to_string(),
                n.to_string(),
                if within { "paper" } else { "extra" }.to_string(),
                mode.to_string(),
                if stable { "✓" } else { "✗" }.to_string(),
            ],
            &[within.to_string(), stable.to_string()],
        );
    }

    let measured = format!(
        "{} parameter sets checked; all paper-constraint instances stable: {}",
        table.len(),
        claimed_all_stable
    );
    let mut outcome = finish_streamed(report, table, measured, claimed_all_stable);
    outcome.report.notes.push(
        "class-exact = one exact best-response per structural symmetry class \
         (sections and equal-depth subtrees are isomorphic by construction)"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! Streaming JSONL output for long experiment sweeps.
//!
//! The report JSON under `target/experiments/<id>.json` is written once, at
//! the end of a run — useless when a sweep dies (or is watched) halfway. A
//! [`StreamingTable`] therefore mirrors every table row, *as it is
//! produced*, into `target/experiments/<id>.jsonl`: one self-describing
//! JSON record per sweep point, flushed per row, so long sweeps are
//! resumable and diffable mid-run. Streaming is best-effort — an unwritable
//! target directory degrades to a plain in-memory table with a warning, and
//! never fails an experiment.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use bbc_analysis::Table;
use serde::{Deserialize, Serialize};

/// One streamed sweep point: the experiment id, the 0-based row sequence
/// number, and the row itself with its column names (self-describing, so a
/// truncated file still parses row by row).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Experiment id, e.g. `"E6"`.
    pub experiment: String,
    /// 0-based index of this row within the run.
    pub seq: u64,
    /// Column headers, repeated per record.
    pub columns: Vec<String>,
    /// Cell values, parallel to `columns`.
    pub cells: Vec<String>,
}

/// Default stream path: `<id>.jsonl` in the same directory as the report
/// JSON ([`bbc_analysis::report::experiments_dir`] — one shared resolver,
/// so stream and report can never land in different places).
pub fn stream_path(id: &str) -> PathBuf {
    bbc_analysis::report::experiments_dir().join(format!("{id}.jsonl"))
}

/// A [`Table`] that additionally appends each row to the experiment's
/// `.jsonl` stream the moment the row exists.
#[derive(Debug)]
pub struct StreamingTable {
    id: String,
    columns: Vec<String>,
    table: Table,
    seq: u64,
    path: PathBuf,
    sink: Option<fs::File>,
}

impl StreamingTable {
    /// Creates the table and truncates `target/experiments/<id>.jsonl`.
    pub fn new(id: &str, columns: &[&str]) -> Self {
        let path = stream_path(id);
        let sink = path
            .parent()
            .map_or(Ok(()), fs::create_dir_all)
            .and_then(|()| fs::File::create(&path));
        let sink = match sink {
            Ok(file) => Some(file),
            Err(e) => {
                eprintln!(
                    "warning: cannot stream {id} rows to {}: {e}",
                    path.display()
                );
                None
            }
        };
        Self {
            id: id.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            table: Table::new(columns),
            seq: 0,
            path,
            sink,
        }
    }

    /// Appends a row to the table and flushes it to the JSONL stream.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (same contract
    /// as [`Table::row`]).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.table.row(cells);
        let record = StreamRecord {
            experiment: self.id.clone(),
            seq: self.seq,
            columns: self.columns.clone(),
            cells: cells.iter().map(|c| c.as_ref().to_string()).collect(),
        };
        self.seq += 1;
        if let Some(file) = &mut self.sink {
            let line = serde_json::to_string(&record).expect("stream record serializes");
            let written = file
                .write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.flush());
            if let Err(e) = written {
                eprintln!(
                    "warning: stopping {} row stream to {}: {e}",
                    self.id,
                    self.path.display()
                );
                self.sink = None;
            }
        }
    }

    /// Where this table streams to (whether or not the sink is alive).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of rows streamed so far.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Finishes streaming, returning the accumulated in-memory table.
    pub fn into_table(self) -> Table {
        self.table
    }
}

/// Reads a `.jsonl` stream back into records (for tests and tooling).
///
/// # Errors
///
/// Propagates filesystem errors; malformed lines map to
/// [`std::io::ErrorKind::InvalidData`].
pub fn read_stream(path: &Path) -> std::io::Result<Vec<StreamRecord>> {
    let text = fs::read_to_string(path)?;
    text.lines()
        .map(|line| {
            serde_json::from_str(line).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{line}: {e}"))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_stream_one_record_per_sweep_point() {
        // Route the stream into a scratch dir via CARGO_TARGET_DIR-free
        // construction: build the table against the default path, then read
        // whatever it wrote. Use a unique id to avoid clobbering real runs.
        let id = "T0-stream-test";
        let mut t = StreamingTable::new(id, &["a", "b"]);
        t.row(&["1", "x"]);
        t.row(&["2", "y"]);
        assert_eq!(t.len(), 2);
        let path = t.path().to_path_buf();
        let records = read_stream(&path).expect("stream written and parses");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].experiment, id);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[1].cells, vec!["2".to_string(), "y".to_string()]);
        assert_eq!(records[0].columns, vec!["a".to_string(), "b".to_string()]);
        let table = t.into_table();
        assert_eq!(table.to_csv(), "a,b\n1,x\n2,y\n");
        fs::remove_file(path).ok();
    }

    #[test]
    fn new_run_truncates_the_previous_stream() {
        let id = "T1-stream-test";
        let mut t = StreamingTable::new(id, &["c"]);
        t.row(&["old"]);
        drop(t);
        let mut t = StreamingTable::new(id, &["c"]);
        t.row(&["new"]);
        let records = read_stream(t.path()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cells, vec!["new".to_string()]);
        fs::remove_file(t.path()).ok();
    }
}

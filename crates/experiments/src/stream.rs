//! Streaming JSONL output with checkpoint/resume for long experiment sweeps.
//!
//! The report JSON under `target/experiments/<id>.json` is written once, at
//! the end of a run — useless when a sweep dies (or is watched) halfway. A
//! [`StreamingTable`] therefore mirrors every table row, *as it is
//! produced*, into `target/experiments/<id>.jsonl` (one self-describing
//! JSON record per sweep point, flushed per row) **and reads that stream
//! back on startup**: a run opened with `--resume` skips every sweep point
//! the previous run already recorded and recomputes only what is missing,
//! producing final CSV/JSON byte-identical to an uninterrupted run.
//! Streaming is best-effort — an unwritable target directory degrades to a
//! plain in-memory table with a warning, and never fails an experiment.
//!
//! # Stream layout
//!
//! A stream is a sequence of JSON lines in three shapes, in order:
//!
//! 1. one [`StreamHeader`] — the experiment id, the stream schema version,
//!    and the run's **config fingerprint** (see below);
//! 2. zero or more [`StreamRecord`]s — one per table row, with contiguous
//!    `seq` numbers and non-decreasing `point` indices;
//! 3. at most one [`StreamEnd`] footer — written when the run finishes,
//!    recording the row and sweep-point counts, so a later `--resume` knows
//!    every begun point (even a row-less tail) is complete.
//!
//! The three shapes share no required fields, so each line deserializes as
//! exactly one of them.
//!
//! # Record schema, field by field
//!
//! A [`StreamRecord`] carries:
//!
//! * `experiment` — the experiment id (`"E8"`); every line repeats it so a
//!   single grepped line is attributable;
//! * `seq` — 0-based row index within the run; contiguous, so a gap or
//!   repeat marks a corrupt stream;
//! * `point` — 0-based index of the *sweep point* that produced the row.
//!   A point is one unit of resumable work (one walk, one priced instance,
//!   one harvest parameter) and may emit zero, one, or several rows; the
//!   `point` values of consecutive rows never decrease;
//! * `columns` — the column headers, repeated per record so a truncated
//!   file still parses row by row;
//! * `cells` — the display cells, parallel to `columns` (exactly what the
//!   final CSV contains);
//! * `raw` — full-precision replay state (stringified, `f64`/`u64`
//!   round-trip exact) that the experiment needs to rebuild its verdict
//!   aggregates without recomputing the point. Not shown in tables.
//!
//! ```
//! use bbc_experiments::StreamRecord;
//!
//! let line = r#"{"experiment":"E8","seq":3,"point":2,"columns":["n","ratio"],"cells":["10","0.320"],"raw":["true"]}"#;
//! let record: StreamRecord = serde_json::from_str(line).unwrap();
//! assert_eq!(record.experiment, "E8");
//! assert_eq!(record.seq, 3);
//! assert_eq!(record.point, 2);
//! assert_eq!(record.cells.len(), record.columns.len());
//! assert!(record.raw_bool(0));
//! ```
//!
//! # Fingerprint semantics
//!
//! A [`Fingerprint`] canonicalizes everything that makes recorded points
//! reusable: the experiment id, the stream schema version, and every
//! code-relevant run parameter (game family, sweep grid, scheduler, seeds,
//! step budgets, the `--full` flag). [`StreamingTable::open`] compares the
//! stored header fingerprint against the current run's **by string
//! equality**: any mismatch — different grid, different mode, different
//! schema — discards the stream and starts fresh. Parameters that provably
//! cannot change results (worker thread counts — every parallel entry point
//! is byte-identical across thread counts) stay out of the fingerprint.
//!
//! # Resume contract
//!
//! On `--resume`, [`StreamingTable::open`] scans the existing stream:
//!
//! * a missing file, unreadable/mismatched header, or mismatched
//!   fingerprint ⇒ fresh start (the stream is truncated);
//! * records are validated (id, columns, `seq` contiguity, `point`
//!   monotonicity, cell arity); the first malformed or truncated line —
//!   typically a partial write from a killed run — **and everything after
//!   it** is dropped;
//! * without a [`StreamEnd`] footer the highest recorded point may be
//!   mid-write, so it is dropped too and recomputed; with a valid footer
//!   every recorded point is complete;
//! * the file is truncated to the last surviving record and re-opened in
//!   append mode, so a resumed run reproduces the uninterrupted file
//!   byte for byte.
//!
//! Experiments then call [`StreamingTable::begin_point`] once per sweep
//! point, in the same deterministic order as every run: `Some(rows)` means
//! the point was already recorded — append nothing, rebuild aggregates from
//! the returned rows' `raw` state; `None` means compute the point and emit
//! its rows via [`StreamingTable::row`] / [`StreamingTable::row_raw`].

use std::collections::VecDeque;
use std::fs;
use std::io::{Seek as _, Write as _};
use std::path::{Path, PathBuf};

use bbc_analysis::Table;
use serde::{Deserialize, Serialize};

/// Version of the stream layout. Bumped whenever the line shapes change, so
/// old streams fingerprint-mismatch instead of half-parsing.
pub const STREAM_SCHEMA: u32 = 2;

/// Everything that decides whether previously recorded sweep points are
/// reusable: experiment id, schema version, and the code-relevant run
/// parameters (see the module docs for what belongs in here).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fingerprint {
    experiment: String,
    params: Vec<(String, String)>,
}

impl Fingerprint {
    /// Starts a fingerprint for the given experiment id.
    pub fn new(experiment: &str) -> Self {
        Self {
            experiment: experiment.to_string(),
            params: Vec::new(),
        }
    }

    /// Appends one named parameter (grids and seed ranges format naturally
    /// through `Debug`/`Display`).
    #[must_use]
    pub fn param(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// The canonical one-line rendering stored in the stream header and
    /// compared (by equality) on resume.
    pub fn canonical(&self) -> String {
        let mut out = format!("{} schema={STREAM_SCHEMA}", self.experiment);
        for (k, v) in &self.params {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

/// First line of every stream: identifies the run configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamHeader {
    /// Experiment id, e.g. `"E8"`.
    pub experiment: String,
    /// Stream layout version ([`STREAM_SCHEMA`]).
    pub schema: u32,
    /// Canonical run-config fingerprint ([`Fingerprint::canonical`]).
    pub fingerprint: String,
}

/// One streamed sweep-point row (see the module docs for the field-by-field
/// schema).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamRecord {
    /// Experiment id, e.g. `"E8"`.
    pub experiment: String,
    /// 0-based index of this row within the run (contiguous).
    pub seq: u64,
    /// 0-based index of the sweep point that produced this row
    /// (non-decreasing across rows; a point may emit any number of rows).
    pub point: u64,
    /// Column headers, repeated per record.
    pub columns: Vec<String>,
    /// Display cells, parallel to `columns`.
    pub cells: Vec<String>,
    /// Full-precision replay state for verdict aggregates (stringified).
    pub raw: Vec<String>,
}

impl StreamRecord {
    /// Parses `raw[i]` as `f64` (written via `f64::to_string`, which is
    /// shortest-round-trip exact).
    ///
    /// # Panics
    ///
    /// Panics when the field is missing or unparseable — the stream passed
    /// shape validation but its replay state was tampered with; rerun with
    /// `--fresh`.
    pub fn raw_f64(&self, i: usize) -> f64 {
        self.raw_parse(i)
    }

    /// Parses `raw[i]` as `u64`.
    ///
    /// # Panics
    ///
    /// As [`StreamRecord::raw_f64`].
    pub fn raw_u64(&self, i: usize) -> u64 {
        self.raw_parse(i)
    }

    /// Parses `raw[i]` as `bool`.
    ///
    /// # Panics
    ///
    /// As [`StreamRecord::raw_f64`].
    pub fn raw_bool(&self, i: usize) -> bool {
        self.raw_parse(i)
    }

    /// Returns `raw[i]` as a string slice.
    ///
    /// # Panics
    ///
    /// As [`StreamRecord::raw_f64`].
    pub fn raw_str(&self, i: usize) -> &str {
        self.raw.get(i).map_or_else(
            // bbc-lint: allow(panic, documented # Panics contract: a corrupt resume stream is unrecoverable by design)
            || panic!("{}", Self::raw_corrupt(&self.experiment, self.seq, i)),
            String::as_str,
        )
    }

    fn raw_parse<T: std::str::FromStr>(&self, i: usize) -> T {
        self.raw
            .get(i)
            .and_then(|s| s.parse().ok())
            // bbc-lint: allow(panic, documented # Panics contract: a corrupt resume stream is unrecoverable by design)
            .unwrap_or_else(|| panic!("{}", Self::raw_corrupt(&self.experiment, self.seq, i)))
    }

    fn raw_corrupt(experiment: &str, seq: u64, i: usize) -> String {
        format!(
            "corrupt replay state in {experiment} stream (record {seq}, raw field {i}); \
             rerun with --fresh"
        )
    }
}

/// Footer marking a finished run: every recorded point is complete.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamEnd {
    /// Experiment id, e.g. `"E8"`.
    pub experiment: String,
    /// Always `true` (the field's presence is what tags the line shape).
    pub complete: bool,
    /// Number of records the finished run wrote (cross-checked on resume).
    pub rows: u64,
    /// Number of sweep points the finished run began — including trailing
    /// points that emitted zero rows, so a resumed finished run replays
    /// *every* point instead of recomputing a row-less tail.
    pub points: u64,
}

/// Default stream path: `<id>.jsonl` in the same directory as the report
/// JSON ([`bbc_analysis::report::experiments_dir`] — one shared resolver,
/// so stream and report can never land in different places).
pub fn stream_path(id: &str) -> PathBuf {
    bbc_analysis::report::experiments_dir().join(format!("{id}.jsonl"))
}

/// A [`Table`] that appends each row to the experiment's `.jsonl` stream
/// the moment the row exists, and can resume a previous run's stream by
/// replaying its recorded sweep points (see the module docs).
#[derive(Debug)]
pub struct StreamingTable {
    id: String,
    columns: Vec<String>,
    fingerprint: String,
    table: Table,
    seq: u64,
    /// Index the next [`StreamingTable::begin_point`] call will claim.
    next_point: u64,
    /// Points `[0, complete_points)` are fully recorded and replayable.
    complete_points: u64,
    /// The resumed stream's footer point count, when one was accepted. A
    /// finished run of the same fingerprint must begin exactly this many
    /// points, so finishing with fewer proves the footer was tampered with
    /// (an inflated count would otherwise silently skip real work).
    footer_points: Option<u64>,
    /// Validated records of the complete points, in stream order.
    replay: VecDeque<StreamRecord>,
    replayed_rows: u64,
    path: PathBuf,
    sink: Option<fs::File>,
}

impl StreamingTable {
    /// Opens the default stream for `id`: resuming the recorded points when
    /// `resume` is set and the existing stream's fingerprint matches,
    /// starting fresh otherwise.
    pub fn open(id: &str, columns: &[&str], fingerprint: &Fingerprint, resume: bool) -> Self {
        Self::open_at(stream_path(id), id, columns, fingerprint, resume)
    }

    /// [`StreamingTable::open`] against an explicit path (tests and
    /// tooling).
    pub fn open_at(
        path: PathBuf,
        id: &str,
        columns: &[&str],
        fingerprint: &Fingerprint,
        resume: bool,
    ) -> Self {
        let mut out = Self {
            id: id.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            fingerprint: fingerprint.canonical(),
            table: Table::new(columns),
            seq: 0,
            next_point: 0,
            complete_points: 0,
            footer_points: None,
            replay: VecDeque::new(),
            replayed_rows: 0,
            path,
            sink: None,
        };
        if resume {
            match out.try_resume() {
                Ok(()) => return out,
                Err(reason) => {
                    eprintln!("note: {id} starts fresh (cannot resume {reason})");
                }
            }
        }
        out.create_fresh();
        out
    }

    /// The canonical fingerprint this stream was opened with.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Starts the next sweep point. `Some(rows)` means the point is fully
    /// recorded in the resumed stream: its rows (possibly zero) were
    /// appended to the in-memory table and the caller must rebuild its
    /// aggregates from them instead of recomputing. `None` means compute
    /// the point and emit its rows via [`StreamingTable::row`] /
    /// [`StreamingTable::row_raw`].
    pub fn begin_point(&mut self) -> Option<Vec<StreamRecord>> {
        let point = self.next_point;
        self.next_point += 1;
        if point >= self.complete_points {
            return None;
        }
        let mut rows = Vec::new();
        while self.replay.front().is_some_and(|r| r.point == point) {
            // bbc-lint: allow(panic, the loop guard just proved the front record exists)
            let record = self.replay.pop_front().expect("front exists");
            self.table.row(&record.cells);
            self.seq += 1;
            self.replayed_rows += 1;
            rows.push(record);
        }
        Some(rows)
    }

    /// Appends a row (no replay state) to the current sweep point.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (same contract
    /// as [`Table::row`]).
    pub fn row<S: AsRef<str>>(&mut self, cells: &[S]) {
        self.row_raw(cells, &[] as &[&str]);
    }

    /// Appends a row plus its full-precision replay state to the current
    /// sweep point and flushes both to the JSONL stream.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width (same contract
    /// as [`Table::row`]).
    pub fn row_raw<S: AsRef<str>, R: AsRef<str>>(&mut self, cells: &[S], raw: &[R]) {
        self.table.row(cells);
        let record = StreamRecord {
            experiment: self.id.clone(),
            seq: self.seq,
            point: self.next_point.saturating_sub(1),
            columns: self.columns.clone(),
            cells: cells.iter().map(|c| c.as_ref().to_string()).collect(),
            raw: raw.iter().map(|r| r.as_ref().to_string()).collect(),
        };
        self.seq += 1;
        // bbc-lint: allow(panic, stream records are plain data structs; serialization cannot fail)
        let line = serde_json::to_string(&record).expect("stream record serializes");
        self.write_line(&line);
    }

    /// Where this table streams to (whether or not the sink is alive).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of rows accumulated so far (replayed plus computed).
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// `true` when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Rows served from the resumed stream instead of being recomputed.
    pub fn replayed_rows(&self) -> u64 {
        self.replayed_rows
    }

    /// Finishes the stream — writes the completion footer so a later
    /// `--resume` can replay every point — and returns the accumulated
    /// in-memory table.
    ///
    /// # Panics
    ///
    /// Panics when a resumed footer claimed more sweep points than this run
    /// begun: a same-fingerprint run is deterministic, so an inflated count
    /// proves the footer was tampered with, and the inflated points already
    /// "replayed" as silently empty — the artifacts must not be persisted.
    pub fn into_table(mut self) -> Table {
        if let Some(footer_points) = self.footer_points {
            assert!(
                footer_points <= self.next_point,
                "corrupt {} stream footer: claims {footer_points} sweep points, \
                 this run begun {}; rerun with --fresh",
                self.id,
                self.next_point
            );
        }
        let end = StreamEnd {
            experiment: self.id.clone(),
            complete: true,
            rows: self.seq,
            points: self.next_point,
        };
        // bbc-lint: allow(panic, the stream footer is a plain data struct; serialization cannot fail)
        let line = serde_json::to_string(&end).expect("stream footer serializes");
        self.write_line(&line);
        self.table
    }

    fn write_line(&mut self, line: &str) {
        if let Some(file) = &mut self.sink {
            let written = file
                .write_all(line.as_bytes())
                .and_then(|()| file.write_all(b"\n"))
                .and_then(|()| file.flush());
            if let Err(e) = written {
                eprintln!(
                    "warning: stopping {} row stream to {}: {e}",
                    self.id,
                    self.path.display()
                );
                self.sink = None;
            }
        }
    }

    /// Truncates and re-creates the stream with a fresh header.
    fn create_fresh(&mut self) {
        let sink = self
            .path
            .parent()
            .map_or(Ok(()), fs::create_dir_all)
            .and_then(|()| fs::File::create(&self.path));
        self.sink = match sink {
            Ok(file) => Some(file),
            Err(e) => {
                eprintln!(
                    "warning: cannot stream {} rows to {}: {e}",
                    self.id,
                    self.path.display()
                );
                None
            }
        };
        let header = StreamHeader {
            experiment: self.id.clone(),
            schema: STREAM_SCHEMA,
            fingerprint: self.fingerprint.clone(),
        };
        // bbc-lint: allow(panic, the stream header is a plain data struct; serialization cannot fail)
        let line = serde_json::to_string(&header).expect("stream header serializes");
        self.write_line(&line);
    }

    /// Attempts to resume from the existing stream; on success the file is
    /// truncated to the surviving records and re-opened for appending.
    fn try_resume(&mut self) -> Result<(), String> {
        let scan = scan_stream(&self.path, &self.id, &self.columns, &self.fingerprint)?;
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&self.path)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        file.set_len(scan.keep_bytes)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        let mut file = file;
        file.seek(std::io::SeekFrom::End(0))
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        println!(
            "{}: resuming stream at {} ({} rows / {} complete points replayable)",
            self.id,
            self.path.display(),
            scan.records.len(),
            scan.complete_points,
        );
        self.complete_points = scan.complete_points;
        self.footer_points = scan.footer_points;
        self.replay = scan.records.into();
        self.sink = Some(file);
        Ok(())
    }
}

/// Outcome of validating an existing stream for resumption.
struct StreamScan {
    /// Surviving records (every row of every complete point).
    records: Vec<StreamRecord>,
    /// Points `[0, complete_points)` are complete.
    complete_points: u64,
    /// The accepted footer's point count, if the stream was finished.
    footer_points: Option<u64>,
    /// Byte length of the surviving prefix (header + kept records).
    keep_bytes: u64,
}

/// Validates the stream at `path` against the expected identity; returns
/// the replayable prefix or the (human-readable) reason none exists.
fn scan_stream(
    path: &Path,
    id: &str,
    columns: &[String],
    fingerprint: &str,
) -> Result<StreamScan, String> {
    let bytes = fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let text = std::str::from_utf8(&bytes).map_err(|_| format!("{}: not UTF-8", path.display()))?;

    let mut lines = text.split_inclusive('\n');
    let header_line = lines.next().ok_or_else(|| format!("{id} stream: empty"))?;
    if !header_line.ends_with('\n') {
        return Err(format!("{id} stream: truncated header"));
    }
    let header: StreamHeader = serde_json::from_str(header_line.trim_end())
        .map_err(|e| format!("{id} stream header: {e}"))?;
    if header.experiment != id || header.schema != STREAM_SCHEMA {
        return Err(format!(
            "{id} stream: header identifies {}/schema {}",
            header.experiment, header.schema
        ));
    }
    if header.fingerprint != fingerprint {
        return Err(format!(
            "{id} stream: fingerprint changed\n  recorded: {}\n  current:  {fingerprint}",
            header.fingerprint
        ));
    }

    let mut records: Vec<StreamRecord> = Vec::new();
    let mut keep_bytes = header_line.len() as u64;
    let mut finished_points = None;
    for line in lines {
        // A line without a trailing newline is a partial write: drop it.
        if !line.ends_with('\n') {
            break;
        }
        let trimmed = line.trim_end();
        if let Ok(record) = serde_json::from_str::<StreamRecord>(trimmed) {
            let valid = record.experiment == id
                && record.seq == records.len() as u64
                && record.columns == columns
                && record.cells.len() == columns.len()
                && records.last().is_none_or(|prev| record.point >= prev.point);
            if !valid {
                break;
            }
            keep_bytes += line.len() as u64;
            records.push(record);
        } else if let Ok(end) = serde_json::from_str::<StreamEnd>(trimmed) {
            // Footer: valid only as the very last line of a finished run,
            // consistent with every record before it. It is NOT kept — the
            // resumed run rewrites it on finish.
            let consistent = end.experiment == id
                && end.complete
                && end.rows == records.len() as u64
                && records.last().map_or(0, |r| r.point + 1) <= end.points;
            if consistent {
                finished_points = Some(end.points);
            }
            break;
        } else {
            break;
        }
    }

    // With a footer every begun point — including a row-less tail — is
    // complete and replayable. Without one, the highest recorded point may
    // be mid-write: drop it (and recompute).
    let complete_points = match finished_points {
        Some(points) => points,
        None => match records.last() {
            None => 0,
            Some(last) => {
                let tail_point = last.point;
                while records.last().is_some_and(|r| r.point == tail_point) {
                    // bbc-lint: allow(panic, the while guard just proved the last record exists)
                    let dropped = records.pop().expect("last exists");
                    keep_bytes -= dropped_line_len(text, keep_bytes);
                    debug_assert_eq!(dropped.point, tail_point);
                }
                records.last().map_or(0, |r| r.point + 1)
            }
        },
    };
    Ok(StreamScan {
        records,
        complete_points,
        footer_points: finished_points,
        keep_bytes,
    })
}

/// Length (including the newline) of the line *ending* at byte `end` —
/// used to walk `keep_bytes` backwards when dropping a trailing point.
fn dropped_line_len(text: &str, end: u64) -> u64 {
    let end = end as usize;
    let body = &text[..end - 1]; // strip the trailing '\n'
    let start = body.rfind('\n').map_or(0, |i| i + 1);
    (end - start) as u64
}

/// Reads the row records of a `.jsonl` stream (for tests and tooling),
/// skipping the header and footer lines.
///
/// # Errors
///
/// Propagates filesystem errors; a line that parses as none of the three
/// stream shapes maps to [`std::io::ErrorKind::InvalidData`].
pub fn read_stream(path: &Path) -> std::io::Result<Vec<StreamRecord>> {
    let text = fs::read_to_string(path)?;
    let mut records = Vec::new();
    for line in text.lines() {
        if let Ok(record) = serde_json::from_str::<StreamRecord>(line) {
            records.push(record);
        } else if serde_json::from_str::<StreamHeader>(line).is_err()
            && serde_json::from_str::<StreamEnd>(line).is_err()
        {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("not a stream line: {line}"),
            ));
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_stream(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bbc-stream-tests");
        fs::create_dir_all(&dir).expect("temp dir");
        dir.join(format!("{name}.jsonl"))
    }

    fn fp(id: &str) -> Fingerprint {
        Fingerprint::new(id)
            .param("grid", "[1,2,3]")
            .param("full", false)
    }

    #[test]
    fn rows_stream_one_record_per_sweep_point() {
        let id = "T0-stream-test";
        let mut t = StreamingTable::open_at(temp_stream(id), id, &["a", "b"], &fp(id), false);
        assert!(t.begin_point().is_none());
        t.row(&["1", "x"]);
        assert!(t.begin_point().is_none());
        t.row_raw(&["2", "y"], &["0.5"]);
        assert_eq!(t.len(), 2);
        let path = t.path().to_path_buf();
        let records = read_stream(&path).expect("stream written and parses");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].experiment, id);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[0].point, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[1].point, 1);
        assert_eq!(records[1].cells, vec!["2".to_string(), "y".to_string()]);
        assert_eq!(records[1].raw, vec!["0.5".to_string()]);
        assert!((records[1].raw_f64(0) - 0.5).abs() < f64::EPSILON);
        assert_eq!(records[0].columns, vec!["a".to_string(), "b".to_string()]);
        let table = t.into_table();
        assert_eq!(table.to_csv(), "a,b\n1,x\n2,y\n");
        // Header first, footer last.
        let text = fs::read_to_string(&path).unwrap();
        let first: StreamHeader = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(first.fingerprint, fp(id).canonical());
        let last: StreamEnd = serde_json::from_str(text.lines().last().unwrap()).unwrap();
        assert!(last.complete);
        assert_eq!(last.rows, 2);
        assert_eq!(last.points, 2);
        fs::remove_file(path).ok();
    }

    #[test]
    fn new_run_truncates_the_previous_stream() {
        let id = "T1-stream-test";
        let path = temp_stream(id);
        let mut t = StreamingTable::open_at(path.clone(), id, &["c"], &fp(id), false);
        t.begin_point();
        t.row(&["old"]);
        drop(t);
        let mut t = StreamingTable::open_at(path, id, &["c"], &fp(id), false);
        t.begin_point();
        t.row(&["new"]);
        let records = read_stream(t.path()).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].cells, vec!["new".to_string()]);
        fs::remove_file(t.path()).ok();
    }

    /// Writes a three-point stream (two rows, then one row, then one row),
    /// optionally finishing it with the footer.
    fn write_sample(path: &PathBuf, id: &str, finish: bool) -> Vec<String> {
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), false);
        assert!(t.begin_point().is_none());
        t.row_raw(&["a"], &["1"]);
        t.row_raw(&["b"], &["2"]);
        assert!(t.begin_point().is_none());
        t.row_raw(&["c"], &["3"]);
        assert!(t.begin_point().is_none());
        t.row_raw(&["d"], &["4"]);
        if finish {
            t.into_table();
        }
        fs::read_to_string(path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    #[test]
    fn resume_replays_complete_points_and_recomputes_the_tail() {
        let id = "T2-stream-test";
        let path = temp_stream(id);
        write_sample(&path, id, false);
        // No footer: the last point (one row, "d") may be incomplete — it
        // must be dropped; points 0 and 1 replay.
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        let p0 = t.begin_point().expect("point 0 replays");
        assert_eq!(p0.len(), 2);
        assert_eq!(p0[0].cells, vec!["a".to_string()]);
        assert_eq!(p0[1].raw_u64(0), 2);
        let p1 = t.begin_point().expect("point 1 replays");
        assert_eq!(p1.len(), 1);
        assert!(t.begin_point().is_none(), "dropped tail point recomputes");
        t.row_raw(&["d"], &["4"]);
        assert_eq!(t.replayed_rows(), 3);
        let table = t.into_table();
        assert_eq!(table.to_csv(), "x\na\nb\nc\nd\n");
        fs::remove_file(path).ok();
    }

    #[test]
    fn finished_stream_resumes_with_every_point_replayed() {
        let id = "T3-stream-test";
        let path = temp_stream(id);
        let finished = write_sample(&path, id, true);
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        assert_eq!(t.begin_point().expect("replay").len(), 2);
        assert_eq!(t.begin_point().expect("replay").len(), 1);
        assert_eq!(t.begin_point().expect("replay").len(), 1);
        assert_eq!(t.replayed_rows(), 4);
        t.into_table();
        // Re-finishing reproduces the original file byte for byte.
        let after: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect();
        assert_eq!(after, finished);
        fs::remove_file(path).ok();
    }

    #[test]
    fn truncated_trailing_line_is_dropped() {
        let id = "T4-stream-test";
        let path = temp_stream(id);
        write_sample(&path, id, false);
        // Simulate a kill mid-write: append a partial JSON line.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"experiment":"T4-stream-test","seq":4,"#);
        fs::write(&path, &bytes).unwrap();
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        assert_eq!(t.begin_point().expect("point 0 replays").len(), 2);
        assert_eq!(t.begin_point().expect("point 1 replays").len(), 1);
        assert!(t.begin_point().is_none());
        // The partial line was truncated away on open.
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.ends_with('\n'), "no partial line survives");
        assert_eq!(text.lines().count(), 1 + 3, "header + three kept records");
        fs::remove_file(path).ok();
    }

    #[test]
    fn fingerprint_mismatch_forces_fresh_start() {
        let id = "T5-stream-test";
        let path = temp_stream(id);
        write_sample(&path, id, true);
        let changed = Fingerprint::new(id).param("grid", "[1,2,3,4]");
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &changed, true);
        assert!(t.begin_point().is_none(), "no replay across fingerprints");
        t.row(&["fresh"]);
        let records = read_stream(&path).unwrap();
        assert_eq!(records.len(), 1, "old records were truncated");
        assert_eq!(records[0].cells, vec!["fresh".to_string()]);
        fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_header_forces_fresh_start() {
        let id = "T6-stream-test";
        let path = temp_stream(id);
        fs::write(&path, "not json at all\n").unwrap();
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        assert!(t.begin_point().is_none());
        t.row(&["ok"]);
        assert_eq!(read_stream(&path).unwrap().len(), 1);
        fs::remove_file(path).ok();
    }

    #[test]
    fn interior_corruption_keeps_only_the_prefix() {
        let id = "T7-stream-test";
        let path = temp_stream(id);
        let lines = write_sample(&path, id, true);
        // Corrupt the second record (point 0's second row): only the rows
        // before it survive, and point 0 is then incomplete ⇒ no replay.
        let mut broken = lines.clone();
        broken[2] = "{\"garbage\":true}".to_string();
        fs::write(&path, broken.join("\n") + "\n").unwrap();
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        assert!(t.begin_point().is_none(), "point 0 lost a row ⇒ recompute");
        fs::remove_file(path).ok();
    }

    #[test]
    #[should_panic(expected = "corrupt T10-stream-test stream footer")]
    fn inflated_footer_point_count_fails_loudly() {
        // A tampered footer claiming extra points would otherwise let every
        // real sweep point "replay" as silently empty; finishing the
        // resumed run must refuse to persist those artifacts.
        let id = "T10-stream-test";
        let path = temp_stream(id);
        write_sample(&path, id, true);
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, text.replace("\"points\":3", "\"points\":99")).unwrap();
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        for _ in 0..3 {
            assert!(t.begin_point().is_some());
        }
        fs::remove_file(&path).ok();
        let _ = t.into_table(); // panics: footer claimed 99 points, run begun 3
    }

    #[test]
    fn missing_file_resumes_as_fresh() {
        let id = "T8-stream-test";
        let path = temp_stream(id);
        fs::remove_file(&path).ok();
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        assert!(t.begin_point().is_none());
        t.row(&["v"]);
        assert_eq!(read_stream(&path).unwrap().len(), 1);
        fs::remove_file(path).ok();
    }

    #[test]
    fn zero_row_points_replay_as_empty() {
        let id = "T9-stream-test";
        let path = temp_stream(id);
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), false);
        assert!(t.begin_point().is_none()); // point 0: no rows
        assert!(t.begin_point().is_none()); // point 1
        t.row(&["only"]);
        assert!(t.begin_point().is_none()); // point 2: row-less tail
        assert!(t.begin_point().is_none()); // point 3: row-less tail
        t.into_table();
        let mut t = StreamingTable::open_at(path.clone(), id, &["x"], &fp(id), true);
        let p0 = t.begin_point().expect("zero-row point replays");
        assert!(p0.is_empty());
        let p1 = t.begin_point().expect("point 1 replays");
        assert_eq!(p1.len(), 1);
        // The footer's point count makes even the row-less tail replayable:
        // a resumed finished run recomputes nothing.
        assert!(t.begin_point().expect("trailing point replays").is_empty());
        assert!(t.begin_point().expect("trailing point replays").is_empty());
        assert!(t.begin_point().is_none(), "beyond the finished run");
        fs::remove_file(path).ok();
    }
}

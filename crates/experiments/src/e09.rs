//! E9 — Figure 4 / §4.3: best-response loops and scheduler behaviour.
//!
//! Three parts, each one resumable sweep point in
//! `target/experiments/E9.jsonl` (the loop search is by far the heaviest;
//! a `--resume` run replays its recorded verdict — including the rendered
//! Figure-4-style certificate, carried in the row's `raw` state — instead
//! of re-searching):
//!
//! 1. **Loop search** in the (7,2)-uniform game: deterministic round-robin
//!    walks from seeded starts until one revisits an exact state — a
//!    certificate that uniform BBC games are not ordinal potential games.
//!    The found loop is printed in the paper's "node v rewires to [...]"
//!    format.
//! 2. **Max-cost-first** scheduling: §4.3 reports it "does not always
//!    converge" — we count converging vs cycling seeds.
//! 3. **Empty-start** round-robin: §4.3 observes convergence — swept across
//!    `(n, k)`.

use bbc_analysis::{equilibria, ExperimentReport};
use bbc_core::{Configuration, GameSpec, Scheduler, Walk, WalkOutcome};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Finds a round-robin loop in the (7,2) game and renders it like Figure 4.
///
/// The seed scan fans out across every core
/// ([`equilibria::find_best_response_loop_parallel`] returns the lowest
/// cycling seed, exactly what the old sequential scan found); only the
/// single witness walk is replayed with tracing for the rendering.
fn loop_certificate(max_seeds: u64) -> Option<(u64, u64, String)> {
    let spec = GameSpec::uniform(7, 2);
    let threads = crate::default_threads();
    let (seed, _, _) =
        equilibria::find_best_response_loop_parallel(&spec, 0..max_seeds, 50_000, threads)
            // bbc-lint: allow(panic, run() has no error channel; loop-search budgets are sized above the pinned grid)
            .expect("walks fit budget")?;
    let start = Configuration::random(&spec, seed);
    let mut walk = Walk::new(&spec, start).record_trace(true);
    let Ok(WalkOutcome::Cycle {
        first_seen_step,
        period,
    }) = walk.run(50_000)
    else {
        unreachable!("witness seed replays to the same cycle");
    };
    // Render the moves inside the cycle window (costs were recorded by the
    // walk itself — no re-evaluation needed).
    let mut lines = Vec::new();
    for mv in walk.trace().iter().filter(|m| m.step >= first_seen_step) {
        let targets: Vec<String> = mv
            .new_strategy
            .iter()
            .map(|t| t.index().to_string())
            .collect();
        lines.push(format!(
            "  step {:>4}: node {} rewires to [{}]  (cost {} -> {})",
            mv.step,
            mv.node.index(),
            targets.join(" "),
            mv.old_cost,
            mv.new_cost
        ));
    }
    Some((seed, period, lines.join("\n")))
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E9",
        "Figure 4 / §4.3",
        "round-robin best response can loop (uniform BBC is not a potential game); \
         max-cost-first can fail to converge; empty starts converge",
    );

    let seeds = if opts.full { 2000 } else { 400 };
    let mcf_seeds = if opts.full { 60 } else { 25 };
    let grids: &[(usize, u64)] = if opts.full {
        &[(5, 1), (7, 1), (9, 1), (7, 2), (9, 2), (11, 2), (9, 3)]
    } else {
        &[(5, 1), (7, 2), (9, 2)]
    };
    let fingerprint = Fingerprint::new("E9")
        .param("full", opts.full)
        .param("loop-game", "(7,2)")
        .param("loop-seeds", seeds)
        .param("loop-budget", 50_000)
        .param("mcf-seeds", mcf_seeds)
        .param("mcf-budget", 20_000)
        .param("empty-grid", format!("{grids:?}"))
        .param("empty-budget", 200_000);
    // Each part's summary row streams to target/experiments/E9.jsonl as soon
    // as that part finishes.
    let mut table = StreamingTable::open(
        "E9",
        &["part", "game", "seeds", "converged", "cycled", "verdict"],
        &fingerprint,
        opts.resume,
    );
    let mut notes = Vec::new();

    // Part 1 (point 0): the (7,2) loop.
    let loop_ok;
    if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        let r = rows.first().expect("part 1 always writes its row");
        loop_ok = r.raw_bool(0);
        if loop_ok {
            notes.push(format!(
                "figure-4-style loop (seed {}):\n{}",
                r.raw_u64(1),
                r.raw_str(2)
            ));
        }
    } else {
        let loop_found = loop_certificate(seeds);
        loop_ok = loop_found.is_some();
        match &loop_found {
            Some((seed, period, rendering)) => {
                table.row_raw(
                    &[
                        "rr-loop".to_string(),
                        "(7,2)".to_string(),
                        format!("≤{seed}"),
                        "-".to_string(),
                        format!("period {period}"),
                        "loop found".to_string(),
                    ],
                    &["true".to_string(), seed.to_string(), rendering.clone()],
                );
                notes.push(format!("figure-4-style loop (seed {seed}):\n{rendering}"));
            }
            None => {
                table.row_raw(
                    &[
                        "rr-loop".to_string(),
                        "(7,2)".to_string(),
                        seeds.to_string(),
                        "-".to_string(),
                        "0".to_string(),
                        "no loop found".to_string(),
                    ],
                    &["false"],
                );
            }
        }
    }

    // Part 2 (point 1): max-cost-first from random starts.
    let mcf_cycle;
    if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        let r = rows.first().expect("part 2 always writes its row");
        mcf_cycle = r.raw_u64(0);
    } else {
        let spec = GameSpec::uniform(7, 2);
        let (mut mcf_conv, mut cycle) = (0u64, 0u64);
        for seed in 0..mcf_seeds {
            let mut walk = Walk::new(&spec, Configuration::random(&spec, seed))
                .with_scheduler(Scheduler::MaxCostFirst);
            // bbc-lint: allow(panic, run() has no error channel; walk budgets are sized above the pinned grid)
            match walk.run(20_000).expect("walk fits budget") {
                WalkOutcome::Equilibrium { .. } => mcf_conv += 1,
                WalkOutcome::Cycle { .. } => cycle += 1,
                WalkOutcome::StepLimit { .. } => {}
            }
        }
        mcf_cycle = cycle;
        table.row_raw(
            &[
                "max-cost-first".to_string(),
                "(7,2)".to_string(),
                mcf_seeds.to_string(),
                mcf_conv.to_string(),
                mcf_cycle.to_string(),
                if mcf_cycle > 0 {
                    "non-convergence seen"
                } else {
                    "all converged"
                }
                .to_string(),
            ],
            &[mcf_cycle.to_string()],
        );
    }

    // Part 3 (point 2): empty starts converge.
    let empty_all;
    if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        let r = rows.first().expect("part 3 always writes its row");
        empty_all = r.raw_bool(0);
    } else {
        let mut all = true;
        let mut empty_conv = 0u64;
        for &(n, k) in grids {
            let spec = GameSpec::uniform(n, k);
            let mut walk = Walk::new(&spec, Configuration::empty(n));
            // bbc-lint: allow(panic, run() has no error channel; walk budgets are sized above the pinned grid)
            match walk.run(200_000).expect("walk fits budget") {
                WalkOutcome::Equilibrium { .. } => empty_conv += 1,
                _ => all = false,
            }
        }
        empty_all = all;
        table.row_raw(
            &[
                "empty-start".to_string(),
                format!("{} games", grids.len()),
                grids.len().to_string(),
                empty_conv.to_string(),
                (grids.len() as u64 - empty_conv).to_string(),
                if empty_all {
                    "all converged"
                } else {
                    "NOT all converged"
                }
                .to_string(),
            ],
            &[empty_all.to_string()],
        );
    }

    let agrees = loop_ok && empty_all;
    let measured = format!(
        "loop in (7,2): {}; max-cost-first cycling seeds: {}/{}; empty starts converged: {}",
        if loop_ok { "found" } else { "not found" },
        mcf_cycle,
        mcf_seeds,
        empty_all
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes = notes;
    outcome.report.notes.push(
        "Figure 4's exact initial configuration is not recoverable from the paper; the loop \
         above is a fresh certificate found by seeded search (see DESIGN.md substitutions)"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

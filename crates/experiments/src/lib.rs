//! Experiment harness: one module per figure/claim of the BBC paper.
//!
//! Each experiment exposes `run(&RunOptions) -> Outcome` so the binaries,
//! `run_all`, and the integration tests share one code path. Binaries live
//! in `src/bin/` and are thin wrappers; `--full` enables the heavier sweeps.
//!
//! | module | paper artifact | claim |
//! |--------|----------------|-------|
//! | [`e01`] | Thm 1 / Fig 1 | non-uniform games may lack pure NE |
//! | [`e02`] | Thm 2 / Fig 2 | SAT ⇔ NE through the reduction |
//! | [`e03`] | Thm 3 | fractional games approach zero regret |
//! | [`e04`] | Lemma 1 | stable graphs are essentially fair |
//! | [`e05`] | Lemma 6 / Fig 3 | Forest of Willows graphs are stable |
//! | [`e06`] | Thm 4 | PoS Θ(1); PoA grows like √(n/k)/log_k n |
//! | [`e07`] | Thm 5 / Cor 1 / Lemma 8 | Abelian Cayley graphs unstable (small k), stable (huge k) |
//! | [`e08`] | Thm 6 | strong connectivity within n² steps; Ω(n²) instance |
//! | [`e09`] | Fig 4 / §4.3 | best-response loops exist; empty-start converges |
//! | [`e10`] | Thm 8 / Fig 6 | BBC-max PoA is Ω(n/(k·log_k n)) |
//! | [`e11`] | Thm 9 | BBC-max PoS is Θ(1) |
//! | [`e12`] | Thm 7 / Fig 5 | BBC-max no-NE gadget (reproduction discrepancy) |
//! | [`e13`] | Thm 5 / §4.3 / §1.1 | 256-peer overlay churn sweep (parallel oracle prefill) |
//! | [`e14`] | §1.1 / §4.3 churn runtime | dynamic-membership sweep: join/leave events × peer count |

#![forbid(unsafe_code)]

use bbc_analysis::{ExperimentReport, Table};

pub mod scan;
pub mod stream;

pub use scan::resumable_scan;
pub use stream::{
    read_stream, stream_path, Fingerprint, StreamEnd, StreamHeader, StreamRecord, StreamingTable,
};

pub mod e01;
pub mod e02;
pub mod e03;
pub mod e04;
pub mod e05;
pub mod e06;
pub mod e07;
pub mod e08;
pub mod e09;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;

/// Shared experiment options.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunOptions {
    /// Enable the heavier parameter sweeps (`--full` on the CLI).
    pub full: bool,
    /// Resume from the existing `target/experiments/<id>.jsonl` stream,
    /// skipping already-recorded sweep points (`--resume` on the CLI;
    /// `--fresh` forces the default truncate-and-restart behaviour).
    pub resume: bool,
}

impl RunOptions {
    /// Parses the process arguments: `--full`, `--resume`, `--fresh`
    /// (later flags win, so `--resume --fresh` starts fresh).
    pub fn from_env() -> Self {
        let mut opts = Self::default();
        for arg in std::env::args() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--resume" => opts.resume = true,
                "--fresh" => opts.resume = false,
                _ => {}
            }
        }
        opts
    }
}

/// Worker count for the parallel search entry points: every available
/// core, with a fixed fallback when the parallelism query fails.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |p| p.get())
}

/// Landmark bound policy for the walk-heavy experiments (e13/e14), from
/// the `BBC_LANDMARKS` environment variable: `off`, `auto`, or
/// `forced:<k>`; unset or unparsable falls back to
/// [`bbc_core::LandmarkPolicy::Auto`].
///
/// Deliberately an env knob and *not* a stream-fingerprint input:
/// admissible bounds never change a decision cell, so the same stream
/// digest must reproduce under every policy (CI runs e13/e14 under
/// `forced:<k>` and asserts md5 equality against the pinned digests).
pub fn landmark_policy_from_env() -> bbc_core::LandmarkPolicy {
    match std::env::var("BBC_LANDMARKS").ok().as_deref() {
        Some("off") => bbc_core::LandmarkPolicy::Off,
        Some(s) => s
            .strip_prefix("forced:")
            .and_then(|k| k.parse().ok())
            .map_or(
                bbc_core::LandmarkPolicy::Auto,
                bbc_core::LandmarkPolicy::Forced,
            ),
        None => bbc_core::LandmarkPolicy::Auto,
    }
}

/// Env-gated metrics sidecar for the walk-heavy sweeps (e13/e14): when
/// `BBC_METRICS_SIDECAR` is set to a non-empty value other than `0`, each
/// sweep point appends one JSON line —
/// `{"point":"<label>","metrics":<registry document>}` — to
/// `target/experiments/<id>.metrics.jsonl`.
///
/// Off by default, and deliberately outside the stream [`Fingerprint`]:
/// the sidecar is observational only. CI's resume leg md5-pins every
/// `target/experiments/*.jsonl` artifact across a kill/`--resume` cycle,
/// so the file must not appear unless a human asks for it — and when it
/// does appear it carries effort counters (rows materialized, bound hits,
/// oracle hit rates), never decision cells or wall-clock readings.
#[derive(Debug)]
pub struct MetricsSidecar {
    out: Option<std::io::BufWriter<std::fs::File>>,
}

impl MetricsSidecar {
    /// Opens (truncating) `target/experiments/<id>.metrics.jsonl` when the
    /// `BBC_METRICS_SIDECAR` gate is set; otherwise a no-op sink. IO
    /// failures also degrade to the no-op sink — observation must never
    /// fail a sweep.
    pub fn from_env(id: &str) -> Self {
        let gated = std::env::var("BBC_METRICS_SIDECAR").is_ok_and(|v| !v.is_empty() && v != "0");
        let out = gated
            .then(|| {
                let path = stream_path(id).with_extension("metrics.jsonl");
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                std::fs::File::create(&path)
                    .ok()
                    .map(std::io::BufWriter::new)
            })
            .flatten();
        Self { out }
    }

    /// Appends one sweep point's registry snapshot, best-effort. The label
    /// is embedded as a JSON string; quotes and backslashes are stripped
    /// rather than escaped (sidecar labels are plain `key=value` ASCII).
    pub fn emit(&mut self, point: &str, registry: &bbc_obs::Registry) {
        use std::io::Write as _;
        if let Some(out) = &mut self.out {
            let label: String = point.chars().filter(|c| *c != '"' && *c != '\\').collect();
            let _ = writeln!(
                out,
                "{{\"point\":\"{label}\",\"metrics\":{}}}",
                registry.to_json()
            );
            let _ = out.flush();
        }
    }
}

/// What every experiment returns.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// The claim/measured/verdict record.
    pub report: ExperimentReport,
    /// The data table behind it.
    pub table: Table,
}

/// Prints an outcome and persists its JSON record under
/// `target/experiments/`.
pub fn emit(outcome: &Outcome) {
    println!("{}", outcome.report.banner());
    println!("{}", outcome.table.to_text());
    for note in &outcome.report.notes {
        println!("note: {note}");
    }
    let path = outcome.report.default_path();
    match outcome.report.save(&path) {
        Ok(()) => println!("record: {}", path.display()),
        Err(e) => eprintln!("could not save record to {}: {e}", path.display()),
    }
    println!();
}

/// Experiments allowed to report `agrees = false`: the workspace's
/// documented reproduction discrepancies (see the module docs of each id).
/// Anything else disagreeing is a regression and [`unexpected_disagreements`]
/// (hence the `run_all` binary's exit code) flags it.
pub const DISCREPANCY_ALLOWLIST: &[&str] = &["E12"];

/// Ids of outcomes that disagree with the paper outside the documented
/// [`DISCREPANCY_ALLOWLIST`].
pub fn unexpected_disagreements(outcomes: &[Outcome]) -> Vec<String> {
    outcomes
        .iter()
        .filter(|o| !o.report.agrees && !DISCREPANCY_ALLOWLIST.contains(&o.report.id.as_str()))
        .map(|o| o.report.id.clone())
        .collect()
}

/// Runs every experiment in order (the `run_all` binary).
pub fn run_all(opts: &RunOptions) -> Vec<Outcome> {
    let outcomes = vec![
        e01::run(opts),
        e02::run(opts),
        e03::run(opts),
        e04::run(opts),
        e05::run(opts),
        e06::run(opts),
        e07::run(opts),
        e08::run(opts),
        e09::run(opts),
        e10::run(opts),
        e11::run(opts),
        e12::run(opts),
        e13::run(opts),
        e14::run(opts),
    ];
    for o in &outcomes {
        emit(o);
    }
    outcomes
}

/// Finalizes a report: stamps the measured sentence, verdict and CSV.
pub(crate) fn finish(
    mut report: ExperimentReport,
    table: Table,
    measured: String,
    agrees: bool,
) -> Outcome {
    report.measured = measured;
    report.agrees = agrees;
    report.csv = table.to_csv();
    Outcome { report, table }
}

/// [`finish`] for streaming experiments: writes the stream's completion
/// footer and stamps the run's config fingerprint into the report record.
pub(crate) fn finish_streamed(
    report: ExperimentReport,
    table: StreamingTable,
    measured: String,
    agrees: bool,
) -> Outcome {
    let fingerprint = table.fingerprint().to_string();
    let mut outcome = finish(report, table.into_table(), measured, agrees);
    outcome.report.fingerprint = fingerprint;
    outcome
}

//! E13 — Theorem 5 / §4.3 at overlay scale: a 256-peer selfish-churn sweep.
//!
//! The paper's §1.1 motivates BBC games with p2p overlay design: an
//! operator deploys a *regular* degree-k topology, peers rewire selfishly.
//! Theorem 5 says every large regular design admits a profitable unilateral
//! rewiring, and §4.3 adds that the resulting churn need not settle. The
//! `examples/p2p_overlay.rs` walkthrough tells that story at 64 peers; this
//! experiment measures it as a sweep up to 256 peers (512 in `--full`
//! mode) — the ROADMAP's larger-scale scenario.
//!
//! At this size the per-step cost is dominated by the oracle BFS fan-out
//! (up to `n − 1` deviation-row traversals per stability test), so the
//! walks run with [`Walk::prefill_threads`]: the fan-out rides
//! [`bbc_core::DistanceEngine::prefill_oracle_rows`] across every available
//! core, with byte-identical trajectories at any thread count.
//!
//! Per overlay size the sweep records: the Theorem 5 deviation at peer 0,
//! then a fixed budget of selfish best-response churn (one round per peer
//! in fast mode, four in `--full`) and the social cost/diameter shift it
//! causes. (Early churn *lowers* the sum — each peer shortens its own
//! distances — which is exactly the operator's §1.1 dilemma: the selfish
//! process that improves individual costs also destroys the regular
//! design, and §4.3 says it need never settle.) Each size is one resumable sweep point in
//! `target/experiments/E13.jsonl` — these are exactly the multi-minute
//! walks `--resume` exists for.

use bbc_analysis::{social, ExperimentReport};
use bbc_constructions::CayleyGraph;
use bbc_core::{best_response, BestResponseOptions, NodeId, Walk};
use bbc_graph::diameter::eccentricity;

use crate::{finish_streamed, Fingerprint, MetricsSidecar, Outcome, RunOptions, StreamingTable};

/// One overlay size in the sweep: peer count and churn rounds.
#[derive(Clone, Copy, Debug)]
struct SweepPoint {
    peers: u64,
    rounds: u64,
}

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E13",
        "Theorem 5 / §4.3 / §1.1 (overlay scale)",
        "every large regular p2p overlay admits a profitable selfish rewiring \
         (so the regular design is not an equilibrium), and best-response churn \
         keeps rewiring without settling",
    );

    let points: &[SweepPoint] = if opts.full {
        &[
            SweepPoint {
                peers: 64,
                rounds: 4,
            },
            SweepPoint {
                peers: 128,
                rounds: 4,
            },
            SweepPoint {
                peers: 256,
                rounds: 4,
            },
            SweepPoint {
                peers: 512,
                rounds: 2,
            },
        ]
    } else {
        &[
            SweepPoint {
                peers: 64,
                rounds: 1,
            },
            SweepPoint {
                peers: 128,
                rounds: 1,
            },
            SweepPoint {
                peers: 256,
                rounds: 1,
            },
        ]
    };

    let fingerprint = Fingerprint::new("E13")
        .param("full", opts.full)
        .param("grid", format!("{points:?}"))
        .param("family", "circulant{1,round(√n)}")
        .param("scheduler", "round-robin");
    let mut table = StreamingTable::open(
        "E13",
        &[
            "n",
            "offsets",
            "peer0-deviation",
            "churn-steps",
            "moves",
            "cost(designed)",
            "cost(churned)",
            "cost-ratio",
            "diam(designed)",
            "diam(churned)",
            "searches",
        ],
        &fingerprint,
        opts.resume,
    );

    let mut sidecar = MetricsSidecar::from_env("E13");
    let mut all_unstable = true;
    let mut any_settled = false;
    let mut total_moves = 0u64;
    for &SweepPoint { peers, rounds } in points {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_unstable &= r.raw_bool(0);
                total_moves += r.raw_u64(1);
                any_settled |= r.raw_bool(2);
            }
            continue;
        }
        let root = (peers as f64).sqrt().round() as u64;
        let Some(overlay) = CayleyGraph::circulant(peers, &[1, root]) else {
            continue;
        };
        let spec = overlay.spec();
        let designed = overlay.configuration();
        let designed_cost = social::social_cost(&spec, &designed);
        let designed_diam = eccentricity(&designed.to_graph(&spec)).diameter();

        // Theorem 5: one profitable unilateral rewiring at peer 0 (the
        // circulant is vertex-transitive, so peer 0 witnesses every peer).
        let deviation = best_response::exact(
            &spec,
            &designed,
            NodeId::new(0),
            &BestResponseOptions {
                evaluation_limit: 10_000_000,
                stop_at_first_improvement: true,
            },
        )
        // bbc-lint: allow(panic, run() has no error channel; the k=2 subset search fits the default budget)
        .expect("k=2 subset search fits budget");
        let unstable = deviation.improves();
        all_unstable &= unstable;

        // Selfish churn on the parallel oracle path: every stability test's
        // BFS fan-out spreads across the available cores.
        let budget = rounds * peers;
        let mut walk = Walk::new(&spec, designed)
            .detect_cycles(false)
            .prefill_threads(crate::default_threads())
            .with_landmarks(crate::landmark_policy_from_env());
        // bbc-lint: allow(panic, run() has no error channel; walk budgets are sized above the pinned grid)
        let outcome = walk.run(budget).expect("walk fits budget");
        let settled = matches!(
            outcome,
            bbc_core::WalkOutcome::Equilibrium { .. } | bbc_core::WalkOutcome::Cycle { .. }
        );
        any_settled |= settled;
        let moves = walk.stats().moves;
        total_moves += moves;
        // Decision-level effort unit: traversal counts vary with the
        // landmark policy and thread count, but the number of best-response
        // *calls* (memo hits + searches run) is fixed by the trajectory — the
        // stream digest must reproduce under every `BBC_LANDMARKS` value.
        let stats = walk.engine_stats();
        let searches = stats.searches_run + stats.outcome_hits;
        let mut registry = bbc_obs::Registry::new();
        walk.publish_metrics(&mut registry);
        sidecar.emit(&format!("n={peers} rounds={rounds}"), &registry);
        let churned = walk.into_config();
        let churned_cost = social::social_cost(&spec, &churned);
        let churned_diam = eccentricity(&churned.to_graph(&spec)).diameter();
        let ratio = churned_cost as f64 / designed_cost as f64;

        table.row_raw(
            &[
                peers.to_string(),
                format!("{{1,{root}}}"),
                if unstable {
                    format!("cost {}→{}", deviation.current_cost, deviation.best_cost)
                } else {
                    "none found".to_string()
                },
                budget.to_string(),
                moves.to_string(),
                designed_cost.to_string(),
                churned_cost.to_string(),
                format!("{ratio:.3}"),
                designed_diam.map_or("∞".to_string(), |d| d.to_string()),
                churned_diam.map_or("∞".to_string(), |d| d.to_string()),
                searches.to_string(),
            ],
            &[unstable.to_string(), moves.to_string(), settled.to_string()],
        );
    }

    // Theorem 5 is the claim under test; the churn columns quantify the
    // §4.3 story — within these budgets no walk may certify an equilibrium
    // (or an exact cycle), and moves keep happening at every size.
    let agrees = all_unstable && !any_settled && total_moves > 0;
    let measured = format!(
        "every overlay size admits a profitable peer-0 rewiring: {all_unstable}; \
         selfish churn applied {total_moves} rewirings and never settled: {}",
        !any_settled
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes.push(
        "churn walks run with Walk::prefill_threads (the oracle BFS fan-out on the \
         engine's parallel prefill path) and the engine's landmark bound cache \
         (BBC_LANDMARKS=off|auto|forced:<k>, default auto); trajectories are \
         byte-identical at any thread count and landmark policy, so the sweep is \
         reproducible on any machine"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! E8 — Theorem 6: best-response walks reach strong connectivity within n²
//! steps, and the ring-with-path instance needs Ω(n²).
//!
//! Part 1 sweeps random sparse starting configurations and records the step
//! at which the network first becomes strongly connected — never more than
//! `n²`. Part 2 runs the paper's adversarial instance with its prescribed
//! round order and fits the growth of the measured step counts against
//! `n²` (the normalized column should be flat).
//!
//! Every walk is one resumable sweep point: a `--resume` run replays the
//! recorded walks from `target/experiments/E8.jsonl` and computes only the
//! missing ones (the row's `raw` state carries the `steps ≤ n²` verdict and
//! the exact normalized ratio, so the rebuilt aggregates are bit-identical).

use bbc_analysis::ExperimentReport;
use bbc_constructions::RingWithPath;
use bbc_core::{Configuration, GameSpec, Walk};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E8",
        "Theorem 6",
        "round-robin best response reaches strong connectivity within n² steps; \
         a ring-with-path start needs Ω(n²)",
    );

    // Part 1 grid: random sparse starts. Part 2 grid: the Ω(n²) instances.
    let sweeps: &[(usize, u64, u64)] = if opts.full {
        &[
            (10, 1, 8),
            (14, 1, 8),
            (20, 1, 6),
            (14, 2, 8),
            (20, 2, 6),
            (28, 2, 4),
        ]
    } else {
        &[(10, 1, 5), (14, 1, 5), (14, 2, 4)]
    };
    let instances: &[(usize, usize)] = if opts.full {
        &[(8, 4), (16, 8), (24, 12), (32, 16), (48, 24), (64, 32)]
    } else {
        &[(8, 4), (16, 8), (24, 12), (32, 16)]
    };

    let fingerprint = Fingerprint::new("E8")
        .param("full", opts.full)
        .param("random-grid", format!("{sweeps:?}"))
        .param("instances", format!("{instances:?}"))
        .param("scheduler", "round-robin/prescribed-order")
        .param("budget", "n²+n");
    // Every (n, k, seed) walk streams its row to target/experiments/E8.jsonl
    // the moment the walk ends — the sweep is diffable mid-run and
    // restartable after an interruption.
    let mut table = StreamingTable::open(
        "E8",
        &["part", "n", "k", "seed/inst", "steps-to-SC", "n²", "ratio"],
        &fingerprint,
        opts.resume,
    );
    let mut upper_ok = true;
    let mut max_ratio = 0.0f64;

    // Part 1: upper bound on random sparse starts (one point per walk).
    for &(n, k, seeds) in sweeps {
        let spec = GameSpec::uniform(n, k);
        for seed in 0..seeds {
            if let Some(rows) = table.begin_point() {
                for r in &rows {
                    upper_ok &= r.raw_bool(0);
                    // "NEVER" rows carry no ratio.
                    if r.raw.len() > 1 {
                        max_ratio = max_ratio.max(r.raw_f64(1));
                    }
                }
                continue;
            }
            let start = Configuration::random_sparse(&spec, seed, 1);
            let mut walk = Walk::new(&spec, start).detect_cycles(false);
            let _ = walk
                .run((n * n) as u64 + n as u64)
                // bbc-lint: allow(panic, run() has no error channel; walk budgets are sized above the pinned grid)
                .expect("walk fits budget");
            let sq = (n * n) as u64;
            match walk.stats().steps_to_strong_connectivity {
                Some(steps) => {
                    let ok = steps <= sq;
                    upper_ok &= ok;
                    let ratio = steps as f64 / sq as f64;
                    max_ratio = max_ratio.max(ratio);
                    table.row_raw(
                        &[
                            "random".to_string(),
                            n.to_string(),
                            k.to_string(),
                            seed.to_string(),
                            steps.to_string(),
                            sq.to_string(),
                            format!("{ratio:.3}"),
                        ],
                        &[ok.to_string(), ratio.to_string()],
                    );
                }
                None => {
                    upper_ok = false;
                    table.row_raw(
                        &[
                            "random".to_string(),
                            n.to_string(),
                            k.to_string(),
                            seed.to_string(),
                            "NEVER".to_string(),
                            sq.to_string(),
                            "-".to_string(),
                        ],
                        &["false"],
                    );
                }
            }
        }
    }

    // Part 2: the Ω(n²) instance (one point per instance). steps/n² should
    // stay bounded away from 0.
    let mut lower_ratios = Vec::new();
    for &(ring, path) in instances {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                upper_ok &= r.raw_bool(0);
                let ratio = r.raw_f64(1);
                max_ratio = max_ratio.max(ratio);
                lower_ratios.push(ratio);
            }
            continue;
        }
        let Some(inst) = RingWithPath::new(ring, path) else {
            continue;
        };
        let n = inst.node_count();
        let spec = inst.spec();
        let mut walk = Walk::new(&spec, inst.configuration())
            .with_scheduler(inst.round_order())
            .detect_cycles(false);
        let _ = walk
            .run((n * n) as u64 + n as u64)
            // bbc-lint: allow(panic, run() has no error channel; walk budgets are sized above the pinned grid)
            .expect("walk fits budget");
        let steps = walk
            .stats()
            .steps_to_strong_connectivity
            // bbc-lint: allow(panic, the ring-with-path start is strongly connected before the walk ends)
            .expect("ring-with-path always connects");
        let sq = (n * n) as u64;
        let ok = steps <= sq;
        upper_ok &= ok;
        let ratio = steps as f64 / sq as f64;
        max_ratio = max_ratio.max(ratio);
        lower_ratios.push(ratio);
        table.row_raw(
            &[
                "ring+path".to_string(),
                n.to_string(),
                "1".to_string(),
                format!("r={ring},p={path}"),
                steps.to_string(),
                sq.to_string(),
                format!("{ratio:.3}"),
            ],
            &[ok.to_string(), ratio.to_string()],
        );
    }
    // Quadratic growth: the normalized ratio must not decay toward zero.
    let lower_ok = lower_ratios.last().copied().unwrap_or(0.0)
        >= 0.5 * lower_ratios.first().copied().unwrap_or(1.0);

    let agrees = upper_ok && lower_ok;
    let measured = format!(
        "{} within n² (max steps/n² ratio {max_ratio:.3}); ring+path ratios {} flat \
         ({:.3} → {:.3}), {} Θ(n²)",
        if upper_ok {
            "all walks connected"
        } else {
            "NOT all walks connected"
        },
        if lower_ok { "stay" } else { "do NOT stay" },
        lower_ratios.first().copied().unwrap_or(0.0),
        lower_ratios.last().copied().unwrap_or(0.0),
        if agrees { "confirming" } else { "refuting" },
    );

    finish_streamed(report, table, measured, agrees)
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! E11 — Theorem 9: the BBC-max price of stability is Θ(1).
//!
//! Forest of Willows graphs with `l = 0` should remain stable under the
//! max-distance cost model and sit within a constant of the eccentricity
//! lower bound `n · ⌈log-ish⌉`. Each `(k, h)` instance is one resumable
//! sweep point in `target/experiments/E11.jsonl`.

use bbc_analysis::{social, ExperimentReport};
use bbc_constructions::ForestOfWillows;
use bbc_core::{CostModel, DistanceEngine, StabilityChecker};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E11",
        "Theorem 9",
        "Forest of Willows graphs with l = 0 are stable under max-cost and within a \
         constant of the optimum (PoS Θ(1))",
    );

    let params: &[(u64, u32)] = if opts.full {
        &[(2, 3), (2, 4), (3, 2), (3, 3), (4, 2)]
    } else {
        &[(2, 3), (3, 2), (2, 4)]
    };

    let fingerprint = Fingerprint::new("E11")
        .param("full", opts.full)
        .param("grid", format!("{params:?}"))
        .param("model", "max-distance")
        .param("family", "forest-of-willows l=0");
    let mut table = StreamingTable::open(
        "E11",
        &[
            "k",
            "h",
            "n",
            "stable(max)",
            "social-cost",
            "lower-bound",
            "ratio",
        ],
        &fingerprint,
        opts.resume,
    );
    let mut all_stable = true;
    let mut ratios = Vec::new();

    for &(k, h) in params {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_stable &= r.raw_bool(0);
                ratios.push(r.raw_f64(1));
            }
            continue;
        }
        let Some(fow) = ForestOfWillows::new(k, h, 0) else {
            continue;
        };
        let spec = fow.spec().with_cost_model(CostModel::MaxDistance);
        let cfg = fow.configuration();
        // Stability sweep and social cost share one engine (and one graph).
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        let stable = StabilityChecker::new(&spec)
            .is_stable_with_engine(&mut engine)
            // bbc-lint: allow(panic, run() has no error channel; the pinned constructions fit the default budget)
            .expect("exact max-model check fits budget");
        all_stable &= stable;
        let cost = engine.social_cost();
        let lb = social::uniform_social_lower_bound(&spec);
        let ratio = cost as f64 / lb as f64;
        ratios.push(ratio);
        table.row_raw(
            &[
                k.to_string(),
                h.to_string(),
                fow.node_count().to_string(),
                if stable { "✓" } else { "✗" }.to_string(),
                cost.to_string(),
                lb.to_string(),
                format!("{ratio:.3}"),
            ],
            &[stable.to_string(), ratio.to_string()],
        );
    }

    let max_ratio = ratios.iter().cloned().fold(0.0, f64::max);
    let agrees = all_stable && max_ratio < 4.0;
    let measured = format!(
        "all l=0 willows stable under max-cost: {all_stable}; cost/lower-bound ≤ {max_ratio:.2} \
         (constant)"
    );
    finish_streamed(report, table, measured, agrees)
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

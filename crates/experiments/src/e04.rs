//! E4 — Lemma 1: stable graphs are essentially fair.
//!
//! Gathers equilibria from two sources — Forest of Willows instances and
//! best-response dynamics on uniform games — and checks every one against
//! Lemma 1's additive bound `n + n·⌊log_k n⌋` and the multiplicative
//! constant `2 + 1/k`.
//!
//! Each willow parameter and each `(n, k, seeds)` dynamics harvest is one
//! resumable sweep point in `target/experiments/E4.jsonl` (a harvest point
//! emits one row per distinct equilibrium it found).

use bbc_analysis::{equilibria, fairness, fairness_with, ExperimentReport};
use bbc_constructions::ForestOfWillows;
use bbc_core::{Evaluator, GameSpec};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E4",
        "Lemma 1",
        "in any stable graph all node costs are within n+n·⌊log_k n⌋ additively \
         and ≈2+1/k multiplicatively",
    );

    // Forest of Willows equilibria across the tail spectrum, then
    // dynamics-harvested equilibria on uniform games.
    let willow_params: &[(u64, u32, u32)] = if opts.full {
        &[
            (2, 3, 0),
            (2, 3, 1),
            (2, 3, 2),
            (3, 2, 0),
            (3, 2, 1),
            (2, 4, 0),
            (2, 4, 2),
        ]
    } else {
        &[(2, 3, 0), (2, 3, 2), (3, 2, 0)]
    };
    let harvest_params: &[(usize, u64, u64)] = if opts.full {
        &[(10, 1, 25), (12, 2, 25), (16, 2, 15), (20, 2, 10)]
    } else {
        &[(10, 1, 10), (12, 2, 8)]
    };

    let fingerprint = Fingerprint::new("E4")
        .param("full", opts.full)
        .param("willows", format!("{willow_params:?}"))
        .param("harvests", format!("{harvest_params:?}"))
        .param("harvest-budget", 200_000);
    let mut table = StreamingTable::open(
        "E4",
        &[
            "source",
            "n",
            "k",
            "min-cost",
            "max-cost",
            "gap",
            "add-bound",
            "ratio",
            "mult-bound",
            "ok",
        ],
        &fingerprint,
        opts.resume,
    );
    let mut all_ok = true;

    for &(k, h, l) in willow_params {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_ok &= r.raw_bool(0);
            }
            continue;
        }
        let Some(fow) = ForestOfWillows::new(k, h, l) else {
            continue;
        };
        let spec = fow.spec();
        let cfg = fow.configuration();
        let f = fairness(&spec, &cfg);
        let ok = f.within_additive_bound() && f.ratio <= f.multiplicative_bound + 0.5;
        all_ok &= ok;
        table.row_raw(
            &[
                format!("willow(k={k},h={h},l={l})"),
                spec.node_count().to_string(),
                k.to_string(),
                f.min_cost.to_string(),
                f.max_cost.to_string(),
                f.additive_gap.to_string(),
                f.additive_bound.to_string(),
                format!("{:.3}", f.ratio),
                format!("{:.3}", f.multiplicative_bound),
                if ok { "✓" } else { "✗" }.to_string(),
            ],
            &[ok.to_string()],
        );
    }

    for &(n, k, seeds) in harvest_params {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_ok &= r.raw_bool(0);
            }
            continue;
        }
        let spec = GameSpec::uniform(n, k);
        let threads = crate::default_threads();
        let harvest = equilibria::harvest_equilibria_parallel(&spec, 0..seeds, 200_000, threads)
            // bbc-lint: allow(panic, run() has no error channel; harvest budgets are sized above the pinned grid)
            .expect("walks fit budget");
        // Harvested equilibria of one game are near-identical configurations;
        // one shared evaluator lets the distance engine diff them instead of
        // re-deriving every row per equilibrium.
        let mut eval = Evaluator::new(&spec);
        for (i, eq) in harvest.equilibria.iter().enumerate() {
            let f = fairness_with(&mut eval, eq);
            let ok = f.within_additive_bound() && f.ratio <= f.multiplicative_bound + 0.5;
            all_ok &= ok;
            table.row_raw(
                &[
                    format!("dynamics(n={n},k={k})#{i}"),
                    n.to_string(),
                    k.to_string(),
                    f.min_cost.to_string(),
                    f.max_cost.to_string(),
                    f.additive_gap.to_string(),
                    f.additive_bound.to_string(),
                    format!("{:.3}", f.ratio),
                    format!("{:.3}", f.multiplicative_bound),
                    if ok { "✓" } else { "✗" }.to_string(),
                ],
                &[ok.to_string()],
            );
        }
    }

    let measured = format!(
        "{} equilibria measured; every one within Lemma 1's fairness bounds: {}",
        table.len(),
        all_ok
    );
    let mut outcome = finish_streamed(report, table, measured, all_ok);
    outcome.report.notes.push(
        "the multiplicative check allows +0.5 slack for the lemma's o(1) term on small n"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

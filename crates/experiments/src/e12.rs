//! E12 — Theorem 7 / Figure 5: the BBC-max no-equilibrium gadget.
//!
//! **This is the workspace's one documented reproduction discrepancy.**
//! Figure 5's 16-node wiring is not recoverable from the paper's text, and
//! every reconstruction we tried — including the direct max-model re-reading
//! of the Theorem 1 gadget scanned here — *does* admit pure Nash equilibria.
//! The blocker is a max-cost-specific phenomenon the paper's proof sketch
//! does not address: **mutual surrender**. Once a sub-gadget's crossover
//! links die, every remaining option of the starved nodes costs the full
//! penalty `M`, and a node indifferent at `M` is stable; whole profiles of
//! this shape are self-consistent equilibria. Large seeded searches over
//! random max-model preference games (4.5M instances, n ≤ 8, k ≤ 2, decided
//! exhaustively after a dynamics filter) found no no-equilibrium instance
//! either, consistent with the structural observation that with k = 1 every
//! switch's "through" costs move with the same sign, which permits
//! coordination but not matching-pennies.
//!
//! The experiment quantifies the surrender equilibria and re-runs a slice of
//! the search so the negative finding is reproducible.

use bbc_analysis::{equilibria, ExperimentReport, Table};
use bbc_constructions::{gadget, Gadget, GadgetVariant};
use bbc_core::{enumerate, CostModel};

use crate::{finish, Outcome, RunOptions};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E12",
        "Theorem 7 / Figure 5",
        "there exist non-uniform BBC-max games with no pure Nash equilibrium",
    );
    let mut table = Table::new(&["instance", "n", "profiles/seeds", "equilibria", "note"]);

    // 1. The max-model re-reading of the restricted Theorem 1 gadget.
    let spec = gadget::max_gadget_spec();
    let g = Gadget::new(GadgetVariant::Restricted);
    let space = g.candidate_space(&spec).expect("restricted space is tiny");
    let result = enumerate::find_equilibria(&spec, &space, 1_000_000).expect("scan fits");
    table.row(&[
        "gadget/max-restricted".to_string(),
        spec.node_count().to_string(),
        result.profiles_checked.to_string(),
        result.equilibria.len().to_string(),
        "mutual-surrender equilibria".to_string(),
    ]);

    // 2. The sum-model control: identical topology and scan under the sum
    // model has zero equilibria, isolating the cost model as the difference.
    let sum_spec = g.spec();
    let sum_space = g
        .candidate_space(&sum_spec)
        .expect("restricted space is tiny");
    let sum_result =
        enumerate::find_equilibria(&sum_spec, &sum_space, 1_000_000).expect("scan fits");
    table.row(&[
        "gadget/sum-control".to_string(),
        sum_spec.node_count().to_string(),
        sum_result.profiles_checked.to_string(),
        sum_result.equilibria.len().to_string(),
        "same topology, sum model".to_string(),
    ]);

    // 3. A reproducible slice of the random no-NE search under max.
    let seeds = if opts.full { 40_000 } else { 5_000 };
    let witness =
        equilibria::search_no_equilibrium_game(5, 0..seeds, 3, CostModel::MaxDistance, 200_000)
            .expect("search fits budget");
    table.row(&[
        "random-search/max(n=5,k=1)".to_string(),
        "5".to_string(),
        seeds.to_string(),
        match witness {
            Some(seed) => format!("witness@{seed}"),
            None => "none found".to_string(),
        },
        "exhaustive per seed".to_string(),
    ]);

    let discrepancy = !result.equilibria.is_empty() && witness.is_none();
    let measured = format!(
        "max-model gadget has {} equilibria (sum-model control: {}); random search over {} \
         max games found {} no-equilibrium instance",
        result.equilibria.len(),
        sum_result.equilibria.len(),
        seeds,
        if witness.is_some() { "a" } else { "no" },
    );
    // agrees = false: we could NOT reproduce Theorem 7's no-NE claim.
    let mut outcome = finish(report, table, measured, !discrepancy);
    outcome.report.notes.push(
        "NOT REPRODUCED: every Figure-5 reconstruction admits 'mutual surrender' \
         equilibria (all-M indifference is stable under max-cost); see module docs and \
         EXPERIMENTS.md for the structural argument and search evidence"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! E12 — Theorem 7 / Figure 5: the BBC-max no-equilibrium gadget.
//!
//! **This is the workspace's one documented reproduction discrepancy.**
//! Figure 5's 16-node wiring is not recoverable from the paper's text, and
//! every reconstruction we tried — including the direct max-model re-reading
//! of the Theorem 1 gadget scanned here — *does* admit pure Nash equilibria.
//! The blocker is a max-cost-specific phenomenon the paper's proof sketch
//! does not address: **mutual surrender**. Once a sub-gadget's crossover
//! links die, every remaining option of the starved nodes costs the full
//! penalty `M`, and a node indifferent at `M` is stable; whole profiles of
//! this shape are self-consistent equilibria. Large seeded searches over
//! random max-model preference games (4.5M instances, n ≤ 8, k ≤ 2, decided
//! exhaustively after a dynamics filter) found no no-equilibrium instance
//! either, consistent with the structural observation that with k = 1 every
//! switch's "through" costs move with the same sign, which permits
//! coordination but not matching-pennies.
//!
//! The experiment quantifies the surrender equilibria and re-runs a slice of
//! the search so the negative finding is reproducible. Each of the three
//! parts — the max-model scan, the sum-model control, and the random-search
//! slice (the slow one in `--full` mode) — is one resumable sweep point in
//! `target/experiments/E12.jsonl`.

use bbc_analysis::{equilibria, ExperimentReport};
use bbc_constructions::{gadget, Gadget, GadgetVariant};
use bbc_core::{enumerate, CostModel};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E12",
        "Theorem 7 / Figure 5",
        "there exist non-uniform BBC-max games with no pure Nash equilibrium",
    );
    let seeds = if opts.full { 40_000 } else { 5_000 };
    let fingerprint = Fingerprint::new("E12")
        .param("full", opts.full)
        .param("search-seeds", seeds)
        .param("search-shape", "n=5,k=1,max-weight=3")
        .param("scan-budget", 1_000_000);
    let mut table = StreamingTable::open(
        "E12",
        &["instance", "n", "profiles/seeds", "equilibria", "note"],
        &fingerprint,
        opts.resume,
    );

    // Point 0: the max-model re-reading of the restricted Theorem 1 gadget.
    let max_equilibria = if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        rows.first().expect("scan row recorded").raw_u64(0)
    } else {
        let spec = gadget::max_gadget_spec();
        let g = Gadget::new(GadgetVariant::Restricted);
        // bbc-lint: allow(panic, the restricted gadget space is a fixed small constant, far below the cap)
        let space = g.candidate_space(&spec).expect("restricted space is tiny");
        // bbc-lint: allow(panic, run() has no error channel; the budget is sized far above this fixed scan)
        let result = enumerate::find_equilibria(&spec, &space, 1_000_000).expect("scan fits");
        let count = result.equilibria.len() as u64;
        table.row_raw(
            &[
                "gadget/max-restricted".to_string(),
                spec.node_count().to_string(),
                result.profiles_checked.to_string(),
                count.to_string(),
                "mutual-surrender equilibria".to_string(),
            ],
            &[count.to_string()],
        );
        count
    };

    // Point 1: the sum-model control — identical topology and scan under
    // the sum model has zero equilibria, isolating the cost model as the
    // difference.
    let sum_equilibria = if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        rows.first().expect("control row recorded").raw_u64(0)
    } else {
        let g = Gadget::new(GadgetVariant::Restricted);
        let sum_spec = g.spec();
        let sum_space = g
            .candidate_space(&sum_spec)
            // bbc-lint: allow(panic, the restricted gadget space is a fixed small constant, far below the cap)
            .expect("restricted space is tiny");
        let sum_result =
            // bbc-lint: allow(panic, run() has no error channel; the budget is sized far above this fixed scan)
            enumerate::find_equilibria(&sum_spec, &sum_space, 1_000_000).expect("scan fits");
        let count = sum_result.equilibria.len() as u64;
        table.row_raw(
            &[
                "gadget/sum-control".to_string(),
                sum_spec.node_count().to_string(),
                sum_result.profiles_checked.to_string(),
                count.to_string(),
                "same topology, sum model".to_string(),
            ],
            &[count.to_string()],
        );
        count
    };

    // Point 2: a reproducible slice of the random no-NE search under max.
    let witness: Option<u64> = if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        let r = rows.first().expect("search row recorded");
        match r.raw_str(0) {
            "none" => None,
            // bbc-lint: allow(panic, the seed cell was written by format!(u64) in the else branch below)
            seed => Some(seed.parse().expect("witness seed parses")),
        }
    } else {
        let witness =
            equilibria::search_no_equilibrium_game(5, 0..seeds, 3, CostModel::MaxDistance, 200_000)
                // bbc-lint: allow(panic, run() has no error channel; search budgets are sized above the pinned slice)
                .expect("search fits budget");
        table.row_raw(
            &[
                "random-search/max(n=5,k=1)".to_string(),
                "5".to_string(),
                seeds.to_string(),
                match witness {
                    Some(seed) => format!("witness@{seed}"),
                    None => "none found".to_string(),
                },
                "exhaustive per seed".to_string(),
            ],
            &[witness.map_or("none".to_string(), |s| s.to_string())],
        );
        witness
    };

    let discrepancy = max_equilibria > 0 && witness.is_none();
    let measured = format!(
        "max-model gadget has {} equilibria (sum-model control: {}); random search over {} \
         max games found {} no-equilibrium instance",
        max_equilibria,
        sum_equilibria,
        seeds,
        if witness.is_some() { "a" } else { "no" },
    );
    // agrees = false: we could NOT reproduce Theorem 7's no-NE claim.
    let mut outcome = finish_streamed(report, table, measured, !discrepancy);
    outcome.report.notes.push(
        "NOT REPRODUCED: every Figure-5 reconstruction admits 'mutual surrender' \
         equilibria (all-M indifference is stable under max-cost); see module docs and \
         EXPERIMENTS.md for the structural argument and search evidence"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

//! E1 — Theorem 1 / Figure 1: non-uniform BBC games with no pure Nash
//! equilibrium.
//!
//! The theorem's *claim* is certified twice over, exhaustively:
//!
//! 1. the **restricted-topology gadget** (omitted links unaffordable): the
//!    paper's matching-pennies engine, scanned over all 11 664 profiles —
//!    zero equilibria;
//! 2. the **minimal 5-node witness**: uniform link costs, lengths and
//!    budgets, non-uniform preferences only — exactly the theorem
//!    statement's hypothesis — scanned over all 3 125 profiles — zero
//!    equilibria. This also strengthens the paper: `n = 5` suffices, not
//!    `n ≥ 11`.
//!
//! The paper's two *specific* gadget parameterizations, reconstructed from
//! the proof text (Figure 1 itself is lost), turn out to **admit**
//! equilibria: with uniform lengths (or omitted links of finite length `L`),
//! long routes through the opposite sub-gadget keep crossover tops and the
//! anchor reachable in ways the proof's case analysis does not account for,
//! and the pennies engine stalls. Those rows are reported as reconstruction
//! findings; they do not affect the theorem's verdict.
//!
//! Each of the four scans is one resumable sweep point in
//! `target/experiments/E1.jsonl` — in `--full` mode the two reconstructed
//! parameterizations are multi-minute exhaustive scans, exactly the work a
//! `--resume` run skips.

use bbc_analysis::ExperimentReport;
use bbc_constructions::{gadget, Gadget, GadgetVariant};
use bbc_core::{enumerate, Configuration, GameSpec, Walk, WalkOutcome};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E1",
        "Theorem 1 / Figure 1",
        "there exist non-uniform BBC games (uniform costs/lengths/budgets, non-uniform \
         preferences) with no pure Nash equilibrium",
    );
    let fingerprint = Fingerprint::new("E1")
        .param("full", opts.full)
        .param(
            "instances",
            "restricted, minimal-witness, uniform-lengths, lengths-L=50",
        )
        .param("census-walks", 40)
        .param("scan-budget", 60_000_000);
    let mut table = StreamingTable::open(
        "E1",
        &["instance", "n", "evidence", "equilibria", "method"],
        &fingerprint,
        opts.resume,
    );
    let mut notes = Vec::new();

    // Point 0 — restricted gadget: exhaustive, must be empty.
    let restricted_empty = if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        rows.first().expect("scan row recorded").raw_bool(0)
    } else {
        let g = Gadget::new(GadgetVariant::Restricted);
        let spec = g.spec();
        // bbc-lint: allow(panic, the restricted gadget space is a fixed small constant, far below the cap)
        let space = g.candidate_space(&spec).expect("restricted space is tiny");
        let result =
            // bbc-lint: allow(panic, run() has no error channel; the budget is sized far above this fixed scan)
            enumerate::find_equilibria(&spec, &space, 1_000_000).expect("scan fits budget");
        let empty = result.equilibria.is_empty();
        table.row_raw(
            &[
                "gadget/restricted".to_string(),
                spec.node_count().to_string(),
                format!("{} profiles", result.profiles_checked),
                result.equilibria.len().to_string(),
                "exhaustive".to_string(),
            ],
            &[empty.to_string()],
        );
        empty
    };

    // Point 1 — minimal 5-node witness: exhaustive, must be empty.
    let witness_empty = if let Some(rows) = table.begin_point() {
        // bbc-lint: allow(panic, a claimed checkpoint point always replays the row it wrote)
        rows.first().expect("scan row recorded").raw_bool(0)
    } else {
        let spec = gadget::minimal_no_ne_witness();
        // bbc-lint: allow(panic, the 5-node witness space is 2^14 at most, below the cap by construction)
        let space = enumerate::ProfileSpace::full(&spec, 1 << 14).expect("tiny space");
        let result =
            // bbc-lint: allow(panic, run() has no error channel; the budget is sized far above this fixed scan)
            enumerate::find_equilibria(&spec, &space, 1_000_000).expect("scan fits budget");
        let empty = result.equilibria.is_empty();
        table.row_raw(
            &[
                "minimal-witness".to_string(),
                "5".to_string(),
                format!("{} profiles", result.profiles_checked),
                result.equilibria.len().to_string(),
                "exhaustive".to_string(),
            ],
            &[empty.to_string()],
        );
        empty
    };
    notes.push(
        "the 5-node witness satisfies the theorem statement's exact hypothesis (uniform \
         costs, lengths, budgets; non-uniform preferences) and strengthens n≥11 to n=5"
            .to_string(),
    );

    // Points 2–3 — the reconstructed Figure 1 parameterizations: report
    // findings (they do not feed the verdict).
    for (slug, label, variant) in [
        (
            "uniform-lengths",
            "gadget/uniform-lengths",
            GadgetVariant::UniformLengths,
        ),
        (
            "lengths-L",
            "gadget/lengths-L",
            GadgetVariant::NonuniformLengths { omitted_length: 50 },
        ),
    ] {
        if table.begin_point().is_some() {
            continue;
        }
        let g = Gadget::new(variant);
        let spec = g.spec();
        if opts.full {
            // The multi-minute scans ride the shard-cursor checkpoint
            // runtime: completed shard ranges persist in a dedicated
            // E1-scan-<slug>.jsonl stream, so a killed scan resumes
            // mid-scan instead of from profile zero.
            // bbc-lint: allow(panic, the free-variant space was counted against the cap in the branch above)
            let space = g.candidate_space(&spec).expect("candidate space builds");
            let threads = crate::default_threads();
            let scan_id = format!("E1-scan-{slug}");
            let scan_fp = Fingerprint::new(&scan_id)
                .param("variant", format!("{variant:?}"))
                .param("profiles", space.profile_count())
                .param("scan-budget", 60_000_000u64)
                .param("group-shards", 4096u64);
            let result = crate::resumable_scan(
                &scan_id,
                &scan_fp,
                &spec,
                &space,
                60_000_000,
                threads,
                4096,
                opts.resume,
            )
            // bbc-lint: allow(panic, run() has no error channel; the budget is sized far above this fixed scan)
            .expect("parallel scan fits budget");
            table.row(&[
                label.to_string(),
                spec.node_count().to_string(),
                format!("{} profiles", result.profiles_checked),
                result.equilibria.len().to_string(),
                "exhaustive(pinned tops)".to_string(),
            ]);
        } else {
            let (walks, converged) = convergence_census(&spec, 40);
            table.row(&[
                label.to_string(),
                spec.node_count().to_string(),
                format!("{walks} walks, {converged} converged"),
                if converged > 0 { "≥1" } else { "0 found" }.to_string(),
                "dynamics-census".to_string(),
            ]);
        }
    }
    notes.push(
        "reconstruction finding: the uniform-length and length-L parameterizations of the \
         Figure 1 gadget DO admit equilibria — long routes through the opposite sub-gadget \
         defeat the proof's α/β/γ dominance accounting; the restricted-topology variant \
         realizes the intended matching pennies exactly"
            .to_string(),
    );

    let agrees = restricted_empty && witness_empty;
    let measured = format!(
        "restricted gadget: {} equilibria; 5-node theorem-statement witness: {} equilibria \
         (both exhaustive)",
        if restricted_empty { 0 } else { 1 },
        if witness_empty { 0 } else { 1 },
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes = notes;
    outcome
}

/// Runs `walks` seeded best-response walks; returns (walks, #converged).
/// Convergences are equilibrium witnesses; all-cycling is (non-exhaustive)
/// evidence of non-existence.
fn convergence_census(spec: &GameSpec, walks: u64) -> (u64, u64) {
    let mut converged = 0;
    for seed in 0..walks {
        let mut walk = Walk::new(spec, Configuration::random(spec, seed));
        if let Ok(WalkOutcome::Equilibrium { .. }) = walk.run(20_000) {
            converged += 1;
        }
    }
    (walks, converged)
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

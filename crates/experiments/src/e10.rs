//! E10 — Theorem 8 / Figure 6: the BBC-max price of anarchy is
//! Ω(n/(k·log_k n)).
//!
//! Builds the 2k−1-tails construction, verifies its stability *exactly*
//! (every node's exact best response under the max model), and compares its
//! social cost ratio against the paper's curve. Each `(k, l)` instance is
//! one resumable sweep point in `target/experiments/E10.jsonl`.

use bbc_analysis::{social, ExperimentReport};
use bbc_constructions::MaxPoaGraph;
use bbc_core::{DistanceEngine, StabilityChecker};

use crate::{finish_streamed, Fingerprint, Outcome, RunOptions, StreamingTable};

/// Runs the experiment.
pub fn run(opts: &RunOptions) -> Outcome {
    let report = ExperimentReport::new(
        "E10",
        "Theorem 8 / Figure 6",
        "BBC-max games have stable graphs with social cost Ω(n²/k), so the price of \
         anarchy is Ω(n/(k·log_k n))",
    );

    let params: &[(u64, usize)] = if opts.full {
        &[
            (3, 3),
            (3, 5),
            (3, 8),
            (3, 12),
            (4, 3),
            (4, 5),
            (4, 8),
            (5, 4),
            (5, 6),
        ]
    } else {
        &[(3, 3), (3, 5), (3, 8), (4, 3), (4, 5)]
    };

    let fingerprint = Fingerprint::new("E10")
        .param("full", opts.full)
        .param("grid", format!("{params:?}"))
        .param("model", "max-distance");
    let mut table = StreamingTable::open(
        "E10",
        &[
            "k",
            "l",
            "n",
            "stable",
            "social-cost",
            "lower-bound",
            "PoA-ratio",
            "curve",
            "ratio/curve",
        ],
        &fingerprint,
        opts.resume,
    );
    let mut all_stable = true;
    let mut normalized = Vec::new();

    for &(k, l) in params {
        if let Some(rows) = table.begin_point() {
            for r in &rows {
                all_stable &= r.raw_bool(0);
                normalized.push(r.raw_f64(1));
            }
            continue;
        }
        let Some(g) = MaxPoaGraph::new(k, l) else {
            continue;
        };
        let spec = g.spec();
        let cfg = g.configuration();
        let n = g.node_count();

        // One engine serves both the exact stability sweep and the social
        // cost: the checker fills the deviation rows, the cost reuses the
        // same graph without re-materializing it.
        let mut engine = DistanceEngine::new(&spec, cfg.clone());
        let stable = StabilityChecker::new(&spec)
            .is_stable_with_engine(&mut engine)
            // bbc-lint: allow(panic, run() has no error channel; the pinned constructions fit the default budget)
            .expect("exact max-model check fits budget");
        all_stable &= stable;

        let cost = engine.social_cost();
        let lb = social::uniform_social_lower_bound(&spec);
        let ratio = cost as f64 / lb as f64;
        let curve = social::max_poa_lower_bound_curve(n, k);
        let norm = ratio / curve;
        normalized.push(norm);
        table.row_raw(
            &[
                k.to_string(),
                l.to_string(),
                n.to_string(),
                if stable { "✓" } else { "✗" }.to_string(),
                cost.to_string(),
                lb.to_string(),
                format!("{ratio:.3}"),
                format!("{curve:.3}"),
                format!("{norm:.3}"),
            ],
            &[stable.to_string(), norm.to_string()],
        );
    }

    let (lo, hi) = normalized
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), &x| {
            (lo.min(x), hi.max(x))
        });
    let banded = hi / lo < 6.0;
    let agrees = all_stable && banded;

    let measured = format!(
        "all constructions stable: {}; PoA-ratio tracks the n/(k·log_k n) curve within \
         a {:.2}x band",
        all_stable,
        hi / lo
    );
    let mut outcome = finish_streamed(report, table, measured, agrees);
    outcome.report.notes.push(
        "stability is verified computationally, per node, under the max-distance model — \
         the paper's k=2 special case is out of scope here (k ≥ 3 as in its main argument)"
            .to_string(),
    );
    outcome
}

/// CLI entry point.
pub fn cli() {
    let outcome = run(&RunOptions::from_env());
    crate::emit(&outcome);
}

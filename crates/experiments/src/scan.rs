//! Resumable exhaustive equilibrium scans, persisted as shard-range
//! checkpoints through the fingerprinted stream format.
//!
//! The sweep runtime checkpoints at *sweep point* granularity, which leaves
//! the long exhaustive scans **inside** a point (E1's 60M-profile gadget
//! scans) restarting from zero after a kill. [`resumable_scan`] closes that
//! gap: it drives
//! [`bbc_core::enumerate::find_equilibria_parallel_resumable`] and persists
//! each completed *range of checkpoint shards* as one sweep point of a
//! dedicated `<id>.jsonl` stream — fingerprint header, in-order range
//! records carrying the range's equilibria and profile count as replay
//! state, completion footer. A killed scan therefore resumes mid-scan at
//! range granularity: recorded ranges replay from the stream (no
//! recomputation), the partially-written trailing range is recomputed, and
//! the final [`EnumerationResult`] is byte-identical to an uninterrupted
//! run — the same contract the per-experiment streams carry, pushed one
//! level down.

use bbc_core::enumerate::{
    checkpoint_shard_count, find_equilibria_parallel_resumable, EnumerationResult, ProfileSpace,
};
use bbc_core::{Configuration, GameSpec};

use crate::{Fingerprint, StreamingTable};

/// Columns of a scan checkpoint stream.
const COLUMNS: [&str; 3] = ["shards", "profiles", "equilibria"];

/// Runs (or resumes) an exhaustive equilibrium scan of `space`, streaming
/// one checkpoint row per `group_shards` completed checkpoint shards into
/// the dedicated stream `id` (`target/experiments/<id>.jsonl`).
///
/// `fingerprint` must pin everything that decides the scan's results (game,
/// space, budget) — on mismatch the stream restarts fresh, exactly like the
/// experiment streams. The checkpoint geometry (the fixed shard width and
/// `group_shards`) is folded into the fingerprint *here*, so a recorded
/// stream can never be reinterpreted under a different range layout no
/// matter what the caller pins. `resume = false` always rescans from
/// shard 0.
///
/// # Errors
///
/// As [`bbc_core::enumerate::find_equilibria`].
///
/// # Panics
///
/// Panics when a resumed stream's replay state fails to parse (tampered
/// checkpoint; rerun with `--fresh`).
#[allow(clippy::too_many_arguments)] // one knob per scan axis, mirrors the core API
pub fn resumable_scan(
    id: &str,
    fingerprint: &Fingerprint,
    spec: &GameSpec,
    space: &ProfileSpace,
    max_profiles: u64,
    threads: usize,
    group_shards: u64,
    resume: bool,
) -> bbc_core::Result<EnumerationResult> {
    assert!(group_shards > 0, "checkpoint ranges must be non-empty");
    let shards = checkpoint_shard_count(space);
    let groups = shards.div_ceil(group_shards).max(1);
    let fingerprint = fingerprint
        .clone()
        .param(
            "checkpoint-shard-profiles",
            bbc_core::enumerate::CHECKPOINT_SHARD_PROFILES,
        )
        .param("range-group-shards", group_shards);
    let mut table = StreamingTable::open(id, &COLUMNS, &fingerprint, resume);

    // Replay the recorded contiguous prefix of ranges. One sweep point per
    // range, replayed or computed, so fresh and resumed runs number points
    // identically. The first `begin_point` that returns `None` has already
    // *claimed* the point the first computed range must write into.
    let mut merged = EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    let mut groups_done = 0u64;
    let mut point_claimed = false;
    while groups_done < groups {
        let Some(rows) = table.begin_point() else {
            point_claimed = true;
            break;
        };
        // bbc-lint: allow(panic, the scan writes exactly one row per checkpoint point, enforced at write time)
        let row = rows.first().expect("each checkpoint point has one row");
        assert_eq!(
            row.raw_u64(0),
            groups_done * group_shards,
            "scan checkpoint ranges out of sequence; rerun with --fresh"
        );
        merged.profiles_checked += row.raw_u64(1);
        let equilibria: Vec<Configuration> = serde_json::from_str(row.raw_str(2))
            // bbc-lint: allow(panic, a corrupt checkpoint is unrecoverable by design; the message tells the user to rerun --fresh)
            .expect("corrupt scan checkpoint replay state; rerun with --fresh");
        merged.equilibria.extend(equilibria);
        groups_done += 1;
    }
    let completed_shards = (groups_done * group_shards).min(shards);

    // Scan the rest, persisting each completed range as its own point. The
    // sink observes shards in ascending order, so ranges close in order.
    let mut range = EnumerationResult {
        equilibria: Vec::new(),
        profiles_checked: 0,
    };
    let mut range_start = completed_shards;
    let mut sink = |shard: u64, result: &EnumerationResult| {
        range.equilibria.extend(result.equilibria.iter().cloned());
        range.profiles_checked += result.profiles_checked;
        let last_of_group = (shard + 1).is_multiple_of(group_shards) || shard + 1 == shards;
        if last_of_group {
            if point_claimed {
                point_claimed = false; // write into the already-claimed point
            } else {
                let claimed = table.begin_point();
                debug_assert!(claimed.is_none(), "scanning past the replayed prefix");
            }
            let equilibria_json =
                // bbc-lint: allow(panic, configurations are plain data structs; serialization cannot fail)
                serde_json::to_string(&range.equilibria).expect("configurations serialize");
            table.row_raw(
                &[
                    format!("{range_start}..{}", shard + 1),
                    range.profiles_checked.to_string(),
                    range.equilibria.len().to_string(),
                ],
                &[
                    range_start.to_string(),
                    range.profiles_checked.to_string(),
                    equilibria_json,
                ],
            );
            range_start = shard + 1;
            range.equilibria.clear();
            range.profiles_checked = 0;
        }
    };
    let scanned = find_equilibria_parallel_resumable(
        spec,
        space,
        max_profiles,
        threads,
        completed_shards,
        &mut sink,
    )?;
    merged.equilibria.extend(scanned.equilibria);
    merged.profiles_checked += scanned.profiles_checked;
    // Finish the stream (footer) so a later resume replays every range.
    let _ = table.into_table();
    Ok(merged)
}

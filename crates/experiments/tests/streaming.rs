//! Integration: experiments stream one JSONL record per sweep point, and
//! the stream agrees row-for-row with the final in-memory table.

use bbc_experiments::{e06, e08, read_stream, stream_path, RunOptions};

fn assert_stream_matches_table(id: &str, outcome: &bbc_experiments::Outcome) {
    let path = stream_path(id);
    let records = read_stream(&path)
        .unwrap_or_else(|e| panic!("{id} stream at {} must parse: {e}", path.display()));
    assert_eq!(
        records.len(),
        outcome.table.len(),
        "{id}: one record per table row"
    );
    // CSV and stream carry the same cells in the same order.
    let csv_rows: Vec<&str> = outcome.report.csv.lines().skip(1).collect();
    for (i, record) in records.iter().enumerate() {
        assert_eq!(record.experiment, id);
        assert_eq!(record.seq, i as u64);
        assert_eq!(record.cells.join(","), csv_rows[i], "{id} row {i}");
        assert_eq!(record.columns.len(), record.cells.len());
    }
}

#[test]
fn e06_streams_each_sweep_point() {
    let outcome = e06::run(&RunOptions {
        full: false,
        resume: false,
    });
    assert_stream_matches_table("E6", &outcome);
}

#[test]
fn e08_streams_each_walk_row() {
    let outcome = e08::run(&RunOptions {
        full: false,
        resume: false,
    });
    assert_stream_matches_table("E8", &outcome);
}

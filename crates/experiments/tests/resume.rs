//! Integration: killing a sweep mid-run and re-running with `--resume`
//! replays every recorded point and produces final artifacts byte-identical
//! to an uninterrupted run.

use std::fs;

use bbc_experiments::{e03, e08, stream_path, RunOptions};

const FRESH: RunOptions = RunOptions {
    full: false,
    resume: false,
};
const RESUME: RunOptions = RunOptions {
    full: false,
    resume: true,
};

/// The acceptance pin: interrupt E8 at an arbitrary byte (mid-line, so the
/// trailing record is corrupt *and* the last complete point must be
/// recomputed), resume, and compare every artifact byte for byte.
#[test]
fn e08_interrupted_then_resumed_is_byte_identical() {
    let fresh = e08::run(&FRESH);
    let path = stream_path("E8");
    let full_stream = fs::read(&path).expect("fresh run streamed");

    // Kill the run at ~60% of the stream — mid-line with high probability,
    // and in the middle of part 1's per-walk points either way.
    for cut in [full_stream.len() * 3 / 5, full_stream.len() / 3] {
        fs::write(&path, &full_stream[..cut]).unwrap();
        let resumed = e08::run(&RESUME);
        assert_eq!(
            fs::read(&path).unwrap(),
            full_stream,
            "cut at {cut}: resumed stream must reproduce the uninterrupted file"
        );
        assert_eq!(resumed.report.csv, fresh.report.csv, "cut at {cut}");
        assert_eq!(
            resumed.report.measured, fresh.report.measured,
            "cut at {cut}"
        );
        assert_eq!(resumed.report.agrees, fresh.report.agrees, "cut at {cut}");
        assert_eq!(resumed.report.fingerprint, fresh.report.fingerprint);
        assert_eq!(
            resumed.table.to_csv(),
            fresh.table.to_csv(),
            "cut at {cut}: in-memory table matches"
        );
    }

    // Resuming a *finished* run replays everything and is also idempotent.
    let resumed = e08::run(&RESUME);
    assert_eq!(fs::read(&path).unwrap(), full_stream);
    assert_eq!(resumed.report.csv, fresh.report.csv);
}

/// Replayed points must actually come from the stream, not be recomputed:
/// tamper a recorded cell in a *complete* point, resume, and the tampered
/// value must surface in the final CSV.
#[test]
fn resume_serves_recorded_points_without_recomputing() {
    let fresh = e03::run(&FRESH);
    let path = stream_path("E3");
    let text = fs::read_to_string(&path).expect("fresh run streamed");
    assert!(fresh.report.csv.contains("minimal-witness"));

    // Rewrite the records' instance cells (not the header — its
    // fingerprint must keep matching), drop the footer (so the stream
    // looks interrupted after a later point), and resume.
    let tampered: Vec<String> = text
        .lines()
        .filter(|l| !l.contains("\"complete\""))
        .map(|l| {
            if l.contains("\"seq\"") {
                l.replace("minimal-witness", "tampered-label")
            } else {
                l.to_string()
            }
        })
        .collect();
    fs::write(&path, tampered.join("\n") + "\n").unwrap();
    let resumed = e03::run(&RESUME);
    assert!(
        resumed.report.csv.contains("tampered-label"),
        "an already-recorded point must be replayed verbatim, not recomputed:\n{}",
        resumed.report.csv
    );
}

/// A changed run configuration (here: fast vs --full grids) must discard
/// the stream instead of replaying rows from the wrong sweep.
#[test]
fn mode_switch_changes_fingerprint_and_forces_fresh() {
    use bbc_experiments::{Fingerprint, StreamHeader};
    let fast = Fingerprint::new("EX").param("full", false).canonical();
    let full = Fingerprint::new("EX").param("full", true).canonical();
    assert_ne!(fast, full, "the mode is part of the fingerprint");
    // And the header carries it verbatim.
    let header = StreamHeader {
        experiment: "EX".into(),
        schema: bbc_experiments::stream::STREAM_SCHEMA,
        fingerprint: fast.clone(),
    };
    let line = serde_json::to_string(&header).unwrap();
    let parsed: StreamHeader = serde_json::from_str(&line).unwrap();
    assert_eq!(parsed.fingerprint, fast);
}

/// The ROADMAP's larger-scale scenario: the 256-peer overlay sweep
/// completes under the fast profile, agrees with Theorem 5, and rides the
/// engine's oracle prefill path. Release-only: the 256-peer walk is a
/// release-grade workload (CI runs this via `cargo test --release` and the
/// run_all experiments step).
#[cfg(not(debug_assertions))]
#[test]
fn e13_fast_sweep_completes_with_parallel_prefill() {
    use bbc_experiments::{e13, read_stream};
    let outcome = e13::run(&FRESH);
    assert!(outcome.report.agrees, "{}", outcome.report.measured);
    let records = read_stream(&stream_path("E13")).expect("stream parses");
    assert_eq!(records.len(), 3, "64, 128 and 256 peers");
    let big = records.last().expect("256-peer row");
    assert_eq!(big.cells[0], "256");
    let bfs_rows: u64 = big.cells[10].parse().expect("bfs-rows cell");
    assert!(
        bfs_rows >= 255,
        "the churn walk must have filled oracle rows through the prefill path"
    );
    // And the sweep is resumable like every other experiment.
    let resumed = e13::run(&RESUME);
    assert_eq!(resumed.report.csv, outcome.report.csv);
}

/// The `--full` 512-peer sweep point, cross-width: the u32 row kernel
/// (which [`bbc_core::RowTier::auto`] selects for every overlay in the E13
/// grid — n·M = 512·512² fits u32) must walk the identical trajectory as
/// the u64 tier, pinned by one shared fixed-seed digest so *any* kernel
/// drift fails loudly rather than as a silent fingerprint change.
/// Release-only: 64 best-response steps at 512 peers is a release-grade
/// workload.
#[cfg(not(debug_assertions))]
#[test]
fn e13_512_point_walks_identically_on_both_tiers() {
    use bbc_constructions::CayleyGraph;
    use bbc_core::{RowTier, Walk};

    let overlay = CayleyGraph::circulant(512, &[1, 23]).expect("valid circulant");
    let spec = overlay.spec();
    assert_eq!(
        RowTier::auto(&spec),
        RowTier::U32,
        "the E13 512-peer point must ride the narrow kernel by default"
    );

    let mut runs = Vec::new();
    for tier in [RowTier::U32, RowTier::U64] {
        for threads in [1usize, 2] {
            let mut walk = Walk::with_tier(&spec, overlay.configuration(), tier)
                .expect("512-peer overlay fits both tiers")
                .detect_cycles(false)
                .prefill_threads(threads);
            walk.run(64).expect("walk fits");
            runs.push((tier, threads, walk.stats().moves, walk.state_digest()));
        }
    }
    let (_, _, moves, digest) = runs[0];
    for &(tier, threads, m, d) in &runs[1..] {
        assert_eq!(
            (m, d),
            (moves, digest),
            "trajectory diverged on {tier:?} x {threads} threads"
        );
    }
    assert_eq!(
        (moves, digest),
        (64, 0x9063_8573_30da_fd0fu64),
        "the fixed-seed 512-peer trajectory drifted"
    );
}

//! Integration: killing an exhaustive scan mid-stream and resuming replays
//! the persisted shard ranges and reproduces the uninterrupted result and
//! stream byte for byte (the shard-cursor checkpoint contract).

use std::fs;

use bbc_core::enumerate::{self, ProfileSpace};
use bbc_core::GameSpec;
use bbc_experiments::{resumable_scan, stream_path, Fingerprint};

fn fingerprint(id: &str) -> Fingerprint {
    Fingerprint::new(id)
        .param("game", "uniform(4,2)")
        .param("scan-budget", 100_000u64)
        .param("group-shards", 3u64)
}

/// (4,2)-uniform: 7 strategies per node, 2401 profiles, 10 checkpoint
/// shards, 4 ranges at 3 shards per range.
fn scan_inputs() -> (GameSpec, ProfileSpace) {
    let spec = GameSpec::uniform(4, 2);
    let space = ProfileSpace::full(&spec, 1_000).expect("tiny space");
    (spec, space)
}

#[test]
fn killed_scan_stream_resumes_byte_identically() {
    let id = "T-scan-kill";
    let (spec, space) = scan_inputs();
    let reference =
        enumerate::find_equilibria(&spec, &space, 100_000).expect("sequential scan fits");

    let fresh = resumable_scan(id, &fingerprint(id), &spec, &space, 100_000, 2, 3, false)
        .expect("scan fits");
    assert_eq!(fresh, reference, "checkpointed scan matches the plain one");
    let path = stream_path(id);
    let full_stream = fs::read(&path).expect("scan streamed");

    // Kill at several byte offsets — mid-line and mid-range alike — and
    // resume: stream and result must reproduce the uninterrupted run.
    for cut in [
        full_stream.len() / 5,
        full_stream.len() / 2,
        full_stream.len() - 2,
    ] {
        fs::write(&path, &full_stream[..cut]).unwrap();
        let resumed = resumable_scan(id, &fingerprint(id), &spec, &space, 100_000, 4, 3, true)
            .expect("resumed scan fits");
        assert_eq!(resumed, reference, "cut at {cut}");
        assert_eq!(
            fs::read(&path).unwrap(),
            full_stream,
            "cut at {cut}: resumed stream reproduces the uninterrupted file"
        );
    }

    // Resuming the finished stream recomputes nothing and is idempotent.
    let replayed = resumable_scan(id, &fingerprint(id), &spec, &space, 100_000, 1, 3, true)
        .expect("replay fits");
    assert_eq!(replayed, reference);
    assert_eq!(fs::read(&path).unwrap(), full_stream);
    fs::remove_file(&path).ok();
}

#[test]
fn scan_fingerprint_mismatch_rescans_fresh() {
    let id = "T-scan-fingerprint";
    let (spec, space) = scan_inputs();
    let reference =
        enumerate::find_equilibria(&spec, &space, 100_000).expect("sequential scan fits");
    let first = resumable_scan(id, &fingerprint(id), &spec, &space, 100_000, 2, 3, false)
        .expect("scan fits");
    assert_eq!(first, reference);
    // A changed fingerprint (say, a different budget) must not replay the
    // old ranges.
    let changed = Fingerprint::new(id).param("scan-budget", 999u64);
    let rescanned =
        resumable_scan(id, &changed, &spec, &space, 100_000, 2, 3, true).expect("rescan fits");
    assert_eq!(rescanned, reference);
    fs::remove_file(stream_path(id)).ok();
}

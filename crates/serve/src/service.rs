//! The engine-owner loop, journal, and snapshot machinery.
//!
//! One thread owns the [`bbc_core::DistanceEngine`] (through a
//! [`bbc_core::Walk`]) and drains a **bounded** request queue in FIFO order.
//! That single serialization point is the whole determinism story: whatever
//! interleaving happens at the socket layer, the engine observes one total
//! order of accepted requests, and replaying that order single-threaded
//! (see [`oracle_digest`]) reproduces the identical
//! [`bbc_core::DistanceEngine::state_digest`]. The differential proptest in
//! `tests/differential.rs` pins exactly this.
//!
//! # Journal / snapshot format
//!
//! With a state directory configured, every accepted mutating op is
//! journaled (one JSON line, flushed before it is applied) to
//! `journal-<gen>.jsonl`, whose header line carries the service
//! [`Fingerprint`] and the digest of the state the journal starts from.
//! [`crate::protocol::Op::Snapshot`] writes `snapshot.jsonl` atomically
//! (tmp + rename; header, one row per live node, one row per client
//! sequence high-water mark, digest-bearing footer), starts generation
//! `gen+1`, and deletes the compacted journal — the PR-4 stream conventions
//! (fingerprint header, digest-certified completion, dropped truncated
//! trailing line on resume) applied to service state.
//!
//! Journaling *before* applying makes the journal a faithful prefix of the
//! accepted order even across a mid-op crash: an op that errors is
//! journaled and re-errors identically on replay (every transition is a
//! pure function of the state), so recovery converges on the exact
//! pre-crash digest. Duplicate suppression (client sequence numbers,
//! [`crate::protocol::Reply::Skipped`]) gives reconnecting clients
//! exactly-once semantics on top.
//!
//! # Observability
//!
//! The owner thread keeps a [`bbc_obs::Registry`]: per-op dispatch-latency
//! histograms (`serve/op_latency/<op>`), journal append/rotation timings,
//! request/error counters, and — folded in at read time — the engine's own
//! counters via `Walk::publish_metrics` plus the cross-thread
//! [`Reply::Busy`] and queue-depth atomics shared with every [`Handle`].
//! [`Probe::Metrics`] returns the whole document as versioned JSON, and
//! [`ServeConfig::metrics_file`] dumps Prometheus text every
//! [`ServeConfig::metrics_every`] handled requests (a deterministic
//! trigger). Metrics are strictly observational: they are journaled
//! nowhere, hash into no digest, and no control path reads them back — the
//! kill/restore and differential suites pin that replies and
//! `state_digest` are byte-identical with metrics on, off, or sampled.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use bbc_core::{Configuration, GameSpec, NodeId, Scheduler, Walk, WalkOutcome};
use bbc_experiments::Fingerprint;
use bbc_graph::BitSet;
use bbc_obs::{Clock, Registry, WallClock};
use serde::{Deserialize, Serialize};

use crate::protocol::{
    digest_hex, encode_line, ErrorCode, Op, PhaseOutcome, Probe, Reply, ReplyFrame, RequestFrame,
};

/// The snapshot file name inside a state directory.
pub const SNAPSHOT_FILE: &str = "snapshot.jsonl";

/// The logical client id the service itself journals synthetic auto-settle
/// rounds under.
pub const SERVICE_CLIENT: u64 = u64::MAX;

/// Journal file name for a generation.
pub fn journal_file(gen: u64) -> String {
    format!("journal-{gen}.jsonl")
}

/// Everything that decides the served game and its trajectory. Two services
/// with equal configs accept the same requests to the same digests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeConfig {
    /// Peer universe size `n` of the uniform game.
    pub peers: usize,
    /// Uniform link budget `k`.
    pub budget: u64,
    /// The deterministic best-response scheduler for step/settle rounds.
    /// [`Scheduler::Random`] is refused: its RNG state is not captured by
    /// snapshots, so restored services could diverge.
    pub scheduler: Scheduler,
    /// Bounded request-queue depth; senders get an explicit
    /// [`Reply::Busy`] when it is full.
    pub queue_depth: usize,
    /// Journal/snapshot directory; `None` serves from memory only.
    pub state_dir: Option<PathBuf>,
    /// Boot by restoring from `state_dir` instead of initializing fresh.
    pub restore: bool,
    /// Run a journaled settling round after every this-many successful
    /// membership/shock events (0 disables auto-settle). This is the event
    /// batching between best-response rounds: events queued while a round
    /// runs are drained afterwards, in order.
    pub auto_settle_every: u64,
    /// Step budget of each auto-settle round.
    pub auto_settle_budget: u64,
    /// Dump the metrics registry as Prometheus text to this path (atomic
    /// tmp + rename) every [`metrics_every`](Self::metrics_every) handled
    /// requests. `None` disables the dump; [`Probe::Metrics`] works either
    /// way. Purely observational — never part of the fingerprint.
    pub metrics_file: Option<PathBuf>,
    /// Request-count period of the metrics dump. Counting handled requests
    /// (not wall time) keeps the trigger deterministic for a given accepted
    /// order.
    pub metrics_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            peers: 32,
            budget: 2,
            scheduler: Scheduler::RoundRobin,
            queue_depth: 128,
            state_dir: None,
            restore: false,
            auto_settle_every: 0,
            auto_settle_budget: 100_000,
            metrics_file: None,
            metrics_every: 64,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration (game size, scheduler determinism,
    /// queue depth).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] with the violated constraint.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.peers < 2 {
            return Err(ServeError::Config(
                "the served game needs at least 2 peers".to_string(),
            ));
        }
        if self.peers > u32::MAX as usize {
            return Err(ServeError::Config(
                "peer ids must fit the protocol's u32".to_string(),
            ));
        }
        if self.budget == 0 {
            return Err(ServeError::Config(
                "the uniform budget must be at least 1".to_string(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::Config(
                "the request queue needs depth of at least 1".to_string(),
            ));
        }
        if self.metrics_file.is_some() && self.metrics_every == 0 {
            return Err(ServeError::Config(
                "a metrics file needs a dump period of at least 1 request".to_string(),
            ));
        }
        match &self.scheduler {
            Scheduler::Random { .. } => Err(ServeError::Config(
                "the random scheduler's RNG state is not snapshot-capturable; \
                 use a deterministic scheduler"
                    .to_string(),
            )),
            Scheduler::RoundRobinOrder(order) => {
                let mut seen = vec![false; self.peers];
                if order.len() != self.peers
                    || order.iter().any(|v| {
                        v.index() >= self.peers || std::mem::replace(&mut seen[v.index()], true)
                    })
                {
                    return Err(ServeError::Config(
                        "the explicit round-robin order must be a permutation of all peers"
                            .to_string(),
                    ));
                }
                Ok(())
            }
            Scheduler::RoundRobin | Scheduler::MaxCostFirst => Ok(()),
        }
    }

    /// The canonical fingerprint persisted in every journal and snapshot
    /// header; restore refuses state written under a different one.
    /// Runtime knobs that never change a trajectory (queue depth, state
    /// dir, restore flag, metrics file/period) are deliberately excluded;
    /// auto-settle rounds are *journaled*, so they replay from the records,
    /// not from the knobs.
    pub fn fingerprint(&self) -> String {
        let scheduler = match &self.scheduler {
            Scheduler::RoundRobin => "round-robin".to_string(),
            Scheduler::MaxCostFirst => "max-cost-first".to_string(),
            Scheduler::RoundRobinOrder(order) => {
                let mut h = bbc_graph::digest::Fnv1a::new();
                for v in order {
                    h.write_u64(v.index() as u64);
                }
                format!("order-{:016x}", h.finish())
            }
            Scheduler::Random { seed } => format!("random-{seed}"),
        };
        Fingerprint::new("serve")
            .param("peers", self.peers)
            .param("budget", self.budget)
            .param("scheduler", scheduler)
            .canonical()
    }
}

/// Service-layer failures (distinct from in-protocol error *replies*, which
/// keep the service running).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Invalid [`ServeConfig`] or an unusable state directory.
    Config(String),
    /// An I/O failure, with the path it happened on.
    Io {
        /// The file or directory involved.
        path: String,
        /// The OS error text.
        message: String,
    },
    /// Persisted state failed an integrity check (fingerprint mismatch,
    /// missing footer, digest divergence, mid-file garbage).
    Corrupt {
        /// The offending file.
        path: String,
        /// What failed.
        message: String,
    },
    /// A game-layer error escaped to the service layer (only possible while
    /// rebuilding persisted state; live requests turn these into typed
    /// replies).
    Game(bbc_core::Error),
    /// The owner loop is gone.
    Stopped,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Config(m) => write!(f, "config: {m}"),
            ServeError::Io { path, message } => write!(f, "{path}: {message}"),
            ServeError::Corrupt { path, message } => write!(f, "{path}: corrupt state: {message}"),
            ServeError::Game(e) => write!(f, "game: {e}"),
            ServeError::Stopped => write!(f, "service stopped"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<bbc_core::Error> for ServeError {
    fn from(e: bbc_core::Error) -> Self {
        ServeError::Game(e)
    }
}

fn io_err(path: &Path, e: &std::io::Error) -> ServeError {
    ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn corrupt(path: &Path, message: impl Into<String>) -> ServeError {
    ServeError::Corrupt {
        path: path.display().to_string(),
        message: message.into(),
    }
}

// ---------------------------------------------------------------------------
// Persisted line shapes
// ---------------------------------------------------------------------------

/// One line of `snapshot.jsonl`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum SnapLine {
    /// First line: run-config identity and which journal continues it.
    Head {
        fingerprint: String,
        journal_gen: u64,
    },
    /// One live node and its strategy.
    Node { node: u32, strategy: Vec<u32> },
    /// One client's journaled sequence high-water mark.
    Client { client: u64, seq: u64 },
    /// Last line: row count and the digest this snapshot certifies. A
    /// snapshot without its footer is corrupt (writes are atomic).
    Foot { rows: u64, digest: String },
}

/// One line of `journal-<gen>.jsonl`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum JournalLine {
    /// First line: run-config identity, generation, and the digest of the
    /// state the records apply on top of.
    Head {
        fingerprint: String,
        gen: u64,
        base_digest: String,
    },
    /// One accepted mutating request, in acceptance order.
    Record { client: u64, seq: u64, op: Op },
}

// ---------------------------------------------------------------------------
// Queue plumbing
// ---------------------------------------------------------------------------

struct Job {
    frame: RequestFrame,
    reply: Sender<ReplyFrame>,
}

/// Counters that live on the caller side of the queue, where the owner
/// thread never executes: Busy rejections happen in [`Handle::try_call`]
/// and queue occupancy changes on every send/recv. Plain relaxed atomics —
/// the owner folds point-in-time readings into the registry when a metrics
/// document is built, and nothing orders against them.
#[derive(Clone, Debug, Default)]
struct SharedCounters {
    /// Total [`Dispatch::Busy`] rejections across all handles.
    busy: Arc<AtomicU64>,
    /// Requests currently queued or being processed.
    in_flight: Arc<AtomicU64>,
}

/// How a dispatched request fared at the queue layer.
#[derive(Clone, Debug, PartialEq)]
pub enum Dispatch {
    /// The owner processed the request.
    Reply(ReplyFrame),
    /// The bounded queue was full (explicit backpressure; retry later).
    Busy {
        /// The exhausted queue capacity.
        depth: u64,
    },
    /// The owner loop has exited.
    Gone,
}

/// A cloneable submission handle to a running [`Service`].
#[derive(Clone, Debug)]
pub struct Handle {
    tx: SyncSender<Job>,
    depth: usize,
    shared: SharedCounters,
}

impl Handle {
    /// Submits a request, blocking while the queue is full (in-process
    /// clients); returns [`Dispatch::Gone`] after shutdown.
    pub fn call(&self, frame: RequestFrame) -> Dispatch {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        if self
            .tx
            .send(Job {
                frame,
                reply: reply_tx,
            })
            .is_err()
        {
            return Dispatch::Gone;
        }
        self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
        let dispatch = match reply_rx.recv() {
            Ok(reply) => Dispatch::Reply(reply),
            Err(_) => Dispatch::Gone,
        };
        self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
        dispatch
    }

    /// Submits a request without blocking on a full queue: the socket
    /// layer's path, so one slow round never wedges readers — they get
    /// [`Dispatch::Busy`] to relay as an explicit backpressure reply.
    pub fn try_call(&self, frame: RequestFrame) -> Dispatch {
        let (reply_tx, reply_rx) = std::sync::mpsc::channel();
        match self.tx.try_send(Job {
            frame,
            reply: reply_tx,
        }) {
            Ok(()) => {
                self.shared.in_flight.fetch_add(1, Ordering::Relaxed);
                let dispatch = match reply_rx.recv() {
                    Ok(reply) => Dispatch::Reply(reply),
                    Err(_) => Dispatch::Gone,
                };
                self.shared.in_flight.fetch_sub(1, Ordering::Relaxed);
                dispatch
            }
            Err(TrySendError::Full(_)) => {
                self.shared.busy.fetch_add(1, Ordering::Relaxed);
                Dispatch::Busy {
                    depth: self.depth as u64,
                }
            }
            Err(TrySendError::Disconnected(_)) => Dispatch::Gone,
        }
    }
}

/// A running service: the owner thread plus its submission handle.
#[derive(Debug)]
pub struct Service {
    handle: Handle,
    thread: JoinHandle<Result<(), ServeError>>,
}

impl Service {
    /// Validates `cfg`, boots the engine (restoring from the state
    /// directory when asked), and starts the owner thread. Boot failures —
    /// bad config, corrupt state — surface here, not on first request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] / [`ServeError::Io`] /
    /// [`ServeError::Corrupt`] from validation or restore.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        cfg.validate()?;
        let depth = cfg.queue_depth;
        let shared = SharedCounters::default();
        let owner_shared = shared.clone();
        let (tx, rx) = std::sync::mpsc::sync_channel(depth);
        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let thread = std::thread::Builder::new()
            .name("bbc-serve-owner".to_string())
            .spawn(move || owner_loop(cfg, owner_shared, rx, &ready_tx))
            .map_err(|e| ServeError::Config(format!("cannot spawn the owner thread: {e}")))?;
        match ready_rx.recv() {
            Ok(Ok(())) => Ok(Self {
                handle: Handle { tx, depth, shared },
                thread,
            }),
            Ok(Err(e)) => {
                let _ = thread.join();
                Err(e)
            }
            Err(_) => Err(ServeError::Stopped),
        }
    }

    /// A cloneable submission handle.
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// Waits for the owner loop to exit (after [`Op::Shutdown`] or when
    /// every handle is dropped).
    ///
    /// # Errors
    ///
    /// The owner loop's terminal error, or [`ServeError::Stopped`] if the
    /// thread panicked.
    pub fn join(self) -> Result<(), ServeError> {
        drop(self.handle);
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Stopped),
        }
    }
}

fn owner_loop(
    cfg: ServeConfig,
    shared: SharedCounters,
    rx: Receiver<Job>,
    ready: &Sender<Result<(), ServeError>>,
) -> Result<(), ServeError> {
    let spec = GameSpec::uniform(cfg.peers, cfg.budget);
    let mut state = match OwnerState::boot(&spec, &cfg, shared) {
        Ok(state) => {
            let _ = ready.send(Ok(()));
            state
        }
        Err(e) => {
            let _ = ready.send(Err(e.clone()));
            return Err(e);
        }
    };
    while let Ok(job) = rx.recv() {
        let stop = matches!(job.frame.op, Op::Shutdown);
        let reply = state.handle(job.frame);
        let _ = job.reply.send(reply);
        if stop {
            break;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The owner state machine
// ---------------------------------------------------------------------------

/// Engine + journal state owned by the single service thread.
struct OwnerState<'a> {
    spec: &'a GameSpec,
    cfg: &'a ServeConfig,
    fingerprint: String,
    walk: Walk<'a>,
    /// Per-client journaled sequence high-water marks (duplicate
    /// suppression). A `BTreeMap` keeps snapshot row order deterministic.
    seqs: BTreeMap<u64, u64>,
    journal: Option<File>,
    journal_gen: u64,
    events_since_settle: u64,
    /// The metrics registry. Written on every handled request, read only
    /// when a document is built — never by any state transition.
    metrics: Registry,
    /// The wall clock behind every latency observation. A trait object so
    /// tests can substitute [`bbc_obs::ManualClock`]; production uses the
    /// one blessed [`WallClock`].
    clock: Box<dyn Clock>,
    /// Caller-side atomics (Busy rejections, queue occupancy) folded into
    /// the registry at document-build time.
    shared: SharedCounters,
    /// Requests handled since boot; drives the deterministic
    /// [`ServeConfig::metrics_every`] dump trigger.
    requests_handled: u64,
}

/// What a state-directory load produced.
struct Loaded<'a> {
    walk: Walk<'a>,
    seqs: BTreeMap<u64, u64>,
    journal_gen: u64,
    replayed: u64,
    /// Append-ready journal file (absent on read-only loads).
    journal: Option<File>,
}

fn fresh_walk<'a>(spec: &'a GameSpec, cfg: &ServeConfig) -> Walk<'a> {
    Walk::new(spec, Configuration::empty(cfg.peers)).with_scheduler(cfg.scheduler.clone())
}

impl<'a> OwnerState<'a> {
    fn boot(
        spec: &'a GameSpec,
        cfg: &'a ServeConfig,
        shared: SharedCounters,
    ) -> Result<Self, ServeError> {
        let fingerprint = cfg.fingerprint();
        let metrics = Registry::new();
        let clock: Box<dyn Clock> = Box::new(WallClock::new());
        let Some(dir) = &cfg.state_dir else {
            if cfg.restore {
                return Err(ServeError::Config(
                    "restore requested without a state directory".to_string(),
                ));
            }
            return Ok(Self {
                spec,
                cfg,
                fingerprint,
                walk: fresh_walk(spec, cfg),
                seqs: BTreeMap::new(),
                journal: None,
                journal_gen: 0,
                events_since_settle: 0,
                metrics,
                clock,
                shared,
                requests_handled: 0,
            });
        };
        fs::create_dir_all(dir).map_err(|e| io_err(dir, &e))?;
        let has_state = dir.join(SNAPSHOT_FILE).is_file() || dir.join(journal_file(1)).is_file();
        if cfg.restore {
            if !has_state {
                return Err(ServeError::Config(format!(
                    "{}: nothing to restore (no snapshot or journal)",
                    dir.display()
                )));
            }
            let loaded = load_state(spec, cfg, dir, false)?;
            return Ok(Self {
                spec,
                cfg,
                fingerprint,
                walk: loaded.walk,
                seqs: loaded.seqs,
                journal: loaded.journal,
                journal_gen: loaded.journal_gen,
                events_since_settle: 0,
                metrics,
                clock,
                shared,
                requests_handled: 0,
            });
        }
        if has_state {
            return Err(ServeError::Config(format!(
                "{}: state directory already holds service state; restore it or point at a \
                 clean directory",
                dir.display()
            )));
        }
        let walk = fresh_walk(spec, cfg);
        let journal = create_journal(dir, 1, &fingerprint, &digest_hex(walk.state_digest()))?;
        Ok(Self {
            spec,
            cfg,
            fingerprint,
            walk,
            seqs: BTreeMap::new(),
            journal: Some(journal),
            journal_gen: 1,
            events_since_settle: 0,
            metrics,
            clock,
            shared,
            requests_handled: 0,
        })
    }

    fn handle(&mut self, frame: RequestFrame) -> ReplyFrame {
        let seq = frame.seq;
        let kind = op_kind(&frame.op);
        let begin = self.clock.now_ns();
        let reply = self.dispatch(frame);
        let elapsed = self.clock.now_ns().saturating_sub(begin);
        self.metrics
            .observe(&format!("serve/op_latency/{kind}"), elapsed);
        self.metrics.add_counter("serve/requests", 1);
        if matches!(reply, Reply::Error { .. }) {
            self.metrics.add_counter("serve/replies_error", 1);
        }
        self.requests_handled += 1;
        self.maybe_dump_metrics();
        ReplyFrame { seq, reply }
    }

    fn dispatch(&mut self, frame: RequestFrame) -> Reply {
        let RequestFrame { client, seq, op } = frame;
        if op.mutates() {
            if let Some(&last) = self.seqs.get(&client) {
                if seq <= last {
                    return Reply::Skipped { last };
                }
            }
            if let Err(e) = self.journal_record(client, seq, &op) {
                return Reply::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                };
            }
            self.seqs.insert(client, seq);
            let reply = match apply_op(&mut self.walk, &op) {
                Ok(reply) => reply,
                Err(e) => return error_reply(&e),
            };
            // Auto-settle batches best-response rounds between accepted
            // membership/shock events; the synthetic round is journaled
            // under SERVICE_CLIENT, so replay repeats it from the record
            // instead of re-deriving the trigger.
            if matches!(op, Op::Join { .. } | Op::Leave { .. } | Op::Shock { .. })
                && self.cfg.auto_settle_every > 0
            {
                self.events_since_settle += 1;
                if self.events_since_settle >= self.cfg.auto_settle_every {
                    self.events_since_settle = 0;
                    let settle = Op::Settle {
                        max_steps: self.cfg.auto_settle_budget,
                    };
                    let next = self.seqs.get(&SERVICE_CLIENT).copied().unwrap_or(0) + 1;
                    if let Err(e) = self.journal_record(SERVICE_CLIENT, next, &settle) {
                        return Reply::Error {
                            code: ErrorCode::Internal,
                            message: e.to_string(),
                        };
                    }
                    self.seqs.insert(SERVICE_CLIENT, next);
                    let _ = apply_op(&mut self.walk, &settle);
                    // The event's ack carries the post-settle digest.
                    return Reply::Ok {
                        digest: digest_hex(self.walk.state_digest()),
                    };
                }
            }
            return reply;
        }
        match op {
            Op::Query(probe) => self.probe(&probe),
            Op::Advise { node } => match self.walk.advise(NodeId::new(node as usize)) {
                Ok(outcome) => Reply::Advice {
                    node,
                    current_cost: outcome.current_cost,
                    best_cost: outcome.best_cost,
                    improves: outcome.improves(),
                    best_strategy: outcome
                        .best_strategy
                        .iter()
                        .map(|v| v.index() as u32)
                        .collect(),
                    evaluations: outcome.evaluations,
                    bounds_hit: outcome.bounds_hit,
                    rows_materialized: outcome.rows_materialized,
                },
                Err(e) => error_reply(&e),
            },
            Op::Snapshot => {
                // state_digest hashes the physical CSR arenas, which
                // strategy patches (moves, shocks) leave history-dependent;
                // only a canonicalized engine has a digest a restore's fresh
                // rebuild can reproduce. The compaction changes the digest,
                // so it is journaled as a synthetic record first — if the
                // snapshot write fails partway, replaying the surviving
                // journal still lands on the live state.
                let next = self.seqs.get(&SERVICE_CLIENT).copied().unwrap_or(0) + 1;
                if let Err(e) = self.journal_record(SERVICE_CLIENT, next, &Op::Snapshot) {
                    return Reply::Error {
                        code: ErrorCode::Internal,
                        message: e.to_string(),
                    };
                }
                self.seqs.insert(SERVICE_CLIENT, next);
                self.walk.canonicalize();
                match self.snapshot() {
                    Ok(reply) => reply,
                    Err(e) => serve_error_reply(&e),
                }
            }
            Op::Restore => match self.restore() {
                Ok(reply) => reply,
                Err(e) => serve_error_reply(&e),
            },
            Op::Shutdown => Reply::Bye,
            // mutates() filtered these above.
            Op::Join { .. }
            | Op::Leave { .. }
            | Op::Shock { .. }
            | Op::Step { .. }
            | Op::Settle { .. } => Reply::Error {
                code: ErrorCode::Internal,
                message: "mutating op fell through".to_string(),
            },
        }
    }

    fn probe(&mut self, probe: &Probe) -> Reply {
        match probe {
            Probe::NodeCost { node } => match self.walk.node_cost(NodeId::new(*node as usize)) {
                Ok(cost) => Reply::Cost { node: *node, cost },
                Err(e) => error_reply(&e),
            },
            Probe::SocialCost => Reply::SocialCost {
                cost: self.walk.social_cost(),
            },
            Probe::DisconnectedPairs => Reply::DisconnectedPairs {
                pairs: self.walk.disconnected_live_pairs(),
            },
            Probe::Digest => Reply::Digest {
                digest: digest_hex(self.walk.state_digest()),
            },
            Probe::Members => Reply::Members {
                nodes: self.walk.live_nodes().map(|v| v.index() as u32).collect(),
            },
            Probe::ClientSeq { client } => Reply::Seq {
                client: *client,
                seq: self.seqs.get(client).copied().unwrap_or(0),
            },
            Probe::Metrics => match serde_json::from_str(&self.metrics_document()) {
                Ok(metrics) => Reply::Metrics { metrics },
                Err(e) => Reply::Error {
                    code: ErrorCode::Internal,
                    message: format!("metrics document failed to re-parse: {e}"),
                },
            },
        }
    }

    /// Folds the engine counters and the caller-side atomics into the
    /// registry, then renders the versioned JSON document. Point-in-time
    /// reads only; nothing here touches engine state.
    fn metrics_document(&mut self) -> String {
        self.refresh_metrics();
        self.metrics.to_json()
    }

    fn refresh_metrics(&mut self) {
        self.walk.publish_metrics(&mut self.metrics);
        self.metrics.set_counter(
            "serve/busy_rejections",
            self.shared.busy.load(Ordering::Relaxed),
        );
        self.metrics.set_gauge(
            "serve/queue_depth",
            self.shared.in_flight.load(Ordering::Relaxed),
        );
        self.metrics
            .set_gauge("serve/queue_capacity", self.cfg.queue_depth as u64);
        self.metrics
            .set_gauge("serve/journal_gen", self.journal_gen);
    }

    /// The deterministic Prometheus dump: every `metrics_every` handled
    /// requests, atomically (tmp + rename). Best-effort by design — a full
    /// disk must not turn an otherwise-valid request into an error reply.
    fn maybe_dump_metrics(&mut self) {
        let Some(path) = self.cfg.metrics_file.clone() else {
            return;
        };
        if self.cfg.metrics_every == 0
            || !self.requests_handled.is_multiple_of(self.cfg.metrics_every)
        {
            return;
        }
        self.refresh_metrics();
        let text = self.metrics.to_prometheus();
        let tmp = path.with_extension("tmp");
        if fs::write(&tmp, text).is_ok() {
            let _ = fs::rename(&tmp, &path);
        }
    }

    fn journal_record(&mut self, client: u64, seq: u64, op: &Op) -> Result<(), ServeError> {
        let Some(journal) = &mut self.journal else {
            return Ok(()); // memory-only service
        };
        let line = encode_line(&JournalLine::Record {
            client,
            seq,
            op: op.clone(),
        })
        .map_err(ServeError::Config)?;
        let begin = self.clock.now_ns();
        let result = journal
            .write_all(line.as_bytes())
            .and_then(|()| journal.flush())
            .map_err(|e| ServeError::Io {
                path: journal_file(self.journal_gen),
                message: e.to_string(),
            });
        let elapsed = self.clock.now_ns().saturating_sub(begin);
        self.metrics.observe("serve/journal_append_ns", elapsed);
        result
    }

    /// Writes `snapshot.jsonl` atomically and rotates the journal to the
    /// next generation.
    fn snapshot(&mut self) -> Result<Reply, ServeError> {
        let Some(dir) = &self.cfg.state_dir else {
            return Err(ServeError::Config(
                "snapshot requires a state directory".to_string(),
            ));
        };
        let rotate_begin = self.clock.now_ns();
        let digest = digest_hex(self.walk.state_digest());
        let next_gen = self.journal_gen + 1;
        // New journal first: a crash between here and the rename leaves the
        // old snapshot + old journal pair intact (the orphan next-gen file
        // is truncated on the next rotation).
        let new_journal = create_journal(dir, next_gen, &self.fingerprint, &digest)?;

        let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let mut out = String::new();
        let mut rows = 0u64;
        push_line(
            &mut out,
            &SnapLine::Head {
                fingerprint: self.fingerprint.clone(),
                journal_gen: next_gen,
            },
        )?;
        let live: Vec<NodeId> = self.walk.live_nodes().collect();
        for u in live {
            push_line(
                &mut out,
                &SnapLine::Node {
                    node: u.index() as u32,
                    strategy: self
                        .walk
                        .config()
                        .strategy(u)
                        .iter()
                        .map(|v| v.index() as u32)
                        .collect(),
                },
            )?;
            rows += 1;
        }
        for (&client, &seq) in &self.seqs {
            push_line(&mut out, &SnapLine::Client { client, seq })?;
        }
        push_line(
            &mut out,
            &SnapLine::Foot {
                rows,
                digest: digest.clone(),
            },
        )?;
        fs::write(&tmp, out).map_err(|e| io_err(&tmp, &e))?;
        let snap = dir.join(SNAPSHOT_FILE);
        fs::rename(&tmp, &snap).map_err(|e| io_err(&snap, &e))?;

        let old = dir.join(journal_file(self.journal_gen));
        self.journal = Some(new_journal);
        self.journal_gen = next_gen;
        let _ = fs::remove_file(old); // best-effort: superseded by the snapshot
        let elapsed = self.clock.now_ns().saturating_sub(rotate_begin);
        self.metrics.observe("serve/journal_rotate_ns", elapsed);
        Ok(Reply::Snapshotted {
            rows,
            journal_gen: next_gen,
            digest,
        })
    }

    /// Rebuilds the engine from the persisted snapshot + journal. On an
    /// intact directory this is idempotent — the journal holds every
    /// accepted mutating op since the snapshot, so replay lands on the
    /// current digest.
    fn restore(&mut self) -> Result<Reply, ServeError> {
        let Some(dir) = &self.cfg.state_dir else {
            return Err(ServeError::Config(
                "restore requires a state directory".to_string(),
            ));
        };
        self.journal = None; // close before reopening for append
        let loaded = load_state(self.spec, self.cfg, dir, false)?;
        self.walk = loaded.walk;
        self.seqs = loaded.seqs;
        self.journal_gen = loaded.journal_gen;
        self.journal = loaded.journal;
        self.events_since_settle = 0;
        Ok(Reply::Restored {
            digest: digest_hex(self.walk.state_digest()),
            replayed: loaded.replayed,
        })
    }
}

fn push_line<T: Serialize>(out: &mut String, line: &T) -> Result<(), ServeError> {
    out.push_str(&encode_line(line).map_err(ServeError::Config)?);
    Ok(())
}

fn create_journal(
    dir: &Path,
    gen: u64,
    fingerprint: &str,
    base_digest: &str,
) -> Result<File, ServeError> {
    let path = dir.join(journal_file(gen));
    let mut file = File::create(&path).map_err(|e| io_err(&path, &e))?;
    let head = encode_line(&JournalLine::Head {
        fingerprint: fingerprint.to_string(),
        gen,
        base_digest: base_digest.to_string(),
    })
    .map_err(ServeError::Config)?;
    file.write_all(head.as_bytes())
        .and_then(|()| file.flush())
        .map_err(|e| io_err(&path, &e))?;
    Ok(file)
}

/// The fixed label an op's dispatch latency is recorded under
/// (`serve/op_latency/<kind>`). Static strings keep the metric namespace
/// bounded regardless of payload.
fn op_kind(op: &Op) -> &'static str {
    match op {
        Op::Join { .. } => "join",
        Op::Leave { .. } => "leave",
        Op::Shock { .. } => "shock",
        Op::Query(_) => "query",
        Op::Advise { .. } => "advise",
        Op::Step { .. } => "step",
        Op::Settle { .. } => "settle",
        Op::Snapshot => "snapshot",
        Op::Restore => "restore",
        Op::Shutdown => "shutdown",
    }
}

/// The state transition of one mutating op — shared verbatim by the live
/// path, journal replay, and the single-threaded oracle, so all three agree
/// byte-for-byte.
fn apply_op(walk: &mut Walk<'_>, op: &Op) -> Result<Reply, bbc_core::Error> {
    let nid = |node: &u32| NodeId::new(*node as usize);
    let nids = |targets: &[u32]| targets.iter().map(|t| NodeId::new(*t as usize)).collect();
    match op {
        Op::Join { node, strategy } => {
            walk.add_node(nid(node), nids(strategy))?;
        }
        Op::Leave { node } => walk.remove_node(nid(node))?,
        Op::Shock { node, strategy } => walk.shock_node(nid(node), nids(strategy))?,
        Op::Step { steps } | Op::Settle { max_steps: steps } => {
            // Reset the scheduler phase so the round is a pure function of
            // (configuration, membership, scheduler) — the snapshot
            // compaction contract (see Walk::reset_phase).
            walk.reset_phase();
            let steps_before = walk.stats().steps;
            let moves_before = walk.stats().moves;
            let outcome = walk.run(steps_before.saturating_add(*steps))?;
            return Ok(Reply::Phase {
                outcome: match outcome {
                    WalkOutcome::Equilibrium { .. } => PhaseOutcome::Equilibrium,
                    WalkOutcome::Cycle { .. } => PhaseOutcome::Cycle,
                    WalkOutcome::StepLimit { .. } => PhaseOutcome::StepLimit,
                },
                steps: walk.stats().steps - steps_before,
                moves: walk.stats().moves - moves_before,
                social_cost: walk.social_cost(),
                digest: digest_hex(walk.state_digest()),
            });
        }
        // Journal replay of the synthetic record dispatch writes before a
        // snapshot: repeat the arena compaction (it changes the digest).
        Op::Snapshot => walk.canonicalize(),
        _ => {
            return Ok(Reply::Error {
                code: ErrorCode::Internal,
                message: "apply_op called with a non-mutating op".to_string(),
            })
        }
    }
    Ok(Reply::Ok {
        digest: digest_hex(walk.state_digest()),
    })
}

fn error_reply(e: &bbc_core::Error) -> Reply {
    let code = match e {
        bbc_core::Error::NodeNotLive { .. }
        | bbc_core::Error::NodeAlreadyLive { .. }
        | bbc_core::Error::TargetNotLive { .. } => ErrorCode::NotLive,
        _ => ErrorCode::Game,
    };
    Reply::Error {
        code,
        message: e.to_string(),
    }
}

fn serve_error_reply(e: &ServeError) -> Reply {
    let code = match e {
        ServeError::Config(_) => ErrorCode::Unsupported,
        _ => ErrorCode::Internal,
    };
    Reply::Error {
        code,
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Restore / replay
// ---------------------------------------------------------------------------

fn load_state<'a>(
    spec: &'a GameSpec,
    cfg: &ServeConfig,
    dir: &Path,
    read_only: bool,
) -> Result<Loaded<'a>, ServeError> {
    let fingerprint = cfg.fingerprint();
    let snap_path = dir.join(SNAPSHOT_FILE);
    let (mut walk, mut seqs, journal_gen) = if snap_path.is_file() {
        read_snapshot(spec, cfg, &fingerprint, &snap_path)?
    } else {
        (fresh_walk(spec, cfg), BTreeMap::new(), 1)
    };
    let journal_path = dir.join(journal_file(journal_gen));
    let mut replayed = 0;
    let mut valid_len = 0u64;
    let mut has_header = false;
    if journal_path.is_file() {
        (replayed, valid_len, has_header) = replay_journal(
            &mut walk,
            &mut seqs,
            &fingerprint,
            journal_gen,
            &journal_path,
        )?;
    }
    let journal = if read_only {
        None
    } else if journal_path.is_file() {
        // Reopen for append, truncating any dropped partial trailing line
        // so the next record starts on a clean line boundary.
        let mut file = OpenOptions::new()
            .write(true)
            .open(&journal_path)
            .map_err(|e| io_err(&journal_path, &e))?;
        file.set_len(valid_len)
            .map_err(|e| io_err(&journal_path, &e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err(&journal_path, &e))?;
        if !has_header {
            // The crash landed before the header line survived; re-seed it.
            let head = encode_line(&JournalLine::Head {
                fingerprint: fingerprint.clone(),
                gen: journal_gen,
                base_digest: digest_hex(walk.state_digest()),
            })
            .map_err(ServeError::Config)?;
            file.write_all(head.as_bytes())
                .and_then(|()| file.flush())
                .map_err(|e| io_err(&journal_path, &e))?;
        }
        Some(file)
    } else {
        Some(create_journal(
            dir,
            journal_gen,
            &fingerprint,
            &digest_hex(walk.state_digest()),
        )?)
    };
    Ok(Loaded {
        walk,
        seqs,
        journal_gen,
        replayed,
        journal,
    })
}

fn read_snapshot<'a>(
    spec: &'a GameSpec,
    cfg: &ServeConfig,
    fingerprint: &str,
    path: &Path,
) -> Result<(Walk<'a>, BTreeMap<u64, u64>, u64), ServeError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let mut journal_gen = None;
    let mut lists: Vec<Vec<NodeId>> = vec![Vec::new(); cfg.peers];
    let mut live: Vec<usize> = Vec::new();
    let mut seqs = BTreeMap::new();
    let mut foot: Option<(u64, String)> = None;
    for (i, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if foot.is_some() {
            return Err(corrupt(
                path,
                format!("line {}: content after footer", i + 1),
            ));
        }
        let parsed: SnapLine = serde_json::from_str(line)
            .map_err(|e| corrupt(path, format!("line {}: {e}", i + 1)))?;
        match parsed {
            SnapLine::Head {
                fingerprint: found,
                journal_gen: gen,
            } => {
                if i != 0 {
                    return Err(corrupt(path, format!("line {}: misplaced header", i + 1)));
                }
                if found != fingerprint {
                    return Err(corrupt(
                        path,
                        format!("fingerprint mismatch: snapshot has `{found}`, service wants `{fingerprint}`"),
                    ));
                }
                journal_gen = Some(gen);
            }
            SnapLine::Node { node, strategy } => {
                if journal_gen.is_none() {
                    return Err(corrupt(path, "record before header"));
                }
                let idx = node as usize;
                if idx >= cfg.peers {
                    return Err(corrupt(path, format!("node {node} outside the game")));
                }
                live.push(idx);
                lists[idx] = strategy.iter().map(|t| NodeId::new(*t as usize)).collect();
            }
            SnapLine::Client { client, seq } => {
                seqs.insert(client, seq);
            }
            SnapLine::Foot { rows, digest } => foot = Some((rows, digest)),
        }
    }
    let Some(journal_gen) = journal_gen else {
        return Err(corrupt(path, "missing header"));
    };
    let Some((rows, digest)) = foot else {
        return Err(corrupt(path, "missing footer (incomplete snapshot)"));
    };
    if rows != live.len() as u64 {
        return Err(corrupt(
            path,
            format!("footer claims {rows} rows, found {}", live.len()),
        ));
    }
    let membership = BitSet::from_indices(cfg.peers, live.iter().copied());
    let config = Configuration::from_strategies(spec, lists)?;
    let walk =
        Walk::with_membership(spec, config, &membership)?.with_scheduler(cfg.scheduler.clone());
    let rebuilt = digest_hex(walk.state_digest());
    if rebuilt != digest {
        return Err(corrupt(
            path,
            format!("digest mismatch: footer certifies {digest}, rebuild produced {rebuilt}"),
        ));
    }
    Ok((walk, seqs, journal_gen))
}

/// Replays a journal on top of `walk`. Returns the records applied, the
/// byte length of the valid prefix, and whether a header line survived.
/// A non-newline-terminated trailing fragment is dropped (the op it
/// recorded was never acknowledged, so the client will resend it); garbage
/// anywhere else is corruption.
fn replay_journal(
    walk: &mut Walk<'_>,
    seqs: &mut BTreeMap<u64, u64>,
    fingerprint: &str,
    gen: u64,
    path: &Path,
) -> Result<(u64, u64, bool), ServeError> {
    let text = fs::read_to_string(path).map_err(|e| io_err(path, &e))?;
    let mut replayed = 0u64;
    let mut valid_len = 0u64;
    let mut has_header = false;
    let mut offset = 0usize;
    while offset < text.len() {
        let rest = &text[offset..];
        let (line, complete, advance) = match rest.find('\n') {
            Some(pos) => (&rest[..pos], true, pos + 1),
            None => (rest, false, rest.len()),
        };
        let line_no = text[..offset].matches('\n').count() + 1;
        if line.is_empty() {
            offset += advance;
            valid_len = offset as u64;
            continue;
        }
        let parsed = serde_json::from_str::<JournalLine>(line);
        match parsed {
            Err(e) => {
                if complete {
                    return Err(corrupt(path, format!("line {line_no}: {e}")));
                }
                // Dropped truncated trailing line (crash mid-write).
                break;
            }
            Ok(JournalLine::Head {
                fingerprint: found,
                gen: found_gen,
                base_digest,
            }) => {
                if has_header {
                    return Err(corrupt(path, format!("line {line_no}: duplicate header")));
                }
                if !complete {
                    break; // header itself was cut short
                }
                if found != fingerprint {
                    return Err(corrupt(
                        path,
                        format!("fingerprint mismatch: journal has `{found}`, service wants `{fingerprint}`"),
                    ));
                }
                if found_gen != gen {
                    return Err(corrupt(
                        path,
                        format!("generation mismatch: journal says {found_gen}, expected {gen}"),
                    ));
                }
                let base = digest_hex(walk.state_digest());
                if base_digest != base {
                    return Err(corrupt(
                        path,
                        format!(
                            "base digest mismatch: journal applies on {base_digest}, \
                             loaded state is {base}"
                        ),
                    ));
                }
                has_header = true;
            }
            Ok(JournalLine::Record { client, seq, op }) => {
                if !has_header {
                    return Err(corrupt(path, "record before header"));
                }
                if !complete {
                    break;
                }
                let duplicate = seqs.get(&client).is_some_and(|&last| seq <= last);
                if !duplicate {
                    seqs.insert(client, seq);
                    // Errors replay deterministically; ignore them exactly
                    // as the live path turned them into error replies.
                    let _ = apply_op(walk, &op);
                    replayed += 1;
                }
            }
        }
        offset += advance;
        valid_len = offset as u64;
    }
    Ok((replayed, valid_len, has_header))
}

// ---------------------------------------------------------------------------
// Single-threaded oracles
// ---------------------------------------------------------------------------

/// Replays an accepted request sequence single-threaded on a private
/// in-memory service and returns the final digest — the reference every
/// concurrent submission order is differenced against.
///
/// # Errors
///
/// [`ServeError::Config`] when `cfg` is invalid.
pub fn oracle_digest(cfg: &ServeConfig, frames: &[RequestFrame]) -> Result<String, ServeError> {
    let mut memory_cfg = cfg.clone();
    memory_cfg.state_dir = None;
    memory_cfg.restore = false;
    memory_cfg.validate()?;
    let spec = GameSpec::uniform(memory_cfg.peers, memory_cfg.budget);
    let mut state = OwnerState::boot(&spec, &memory_cfg, SharedCounters::default())?;
    for frame in frames {
        let _ = state.handle(frame.clone());
    }
    Ok(digest_hex(state.walk.state_digest()))
}

/// Rebuilds the persisted state of `dir` read-only (no truncation, no file
/// handles kept) and returns `(digest, replayed_records)` — how a restarted
/// daemon would come up. Safe to run against a live daemon's directory once
/// its clients are quiescent (records are flushed per accepted op).
///
/// # Errors
///
/// As [`Service::start`] with `restore`.
pub fn replay_digest(cfg: &ServeConfig, dir: &Path) -> Result<(String, u64), ServeError> {
    cfg.validate()?;
    let spec = GameSpec::uniform(cfg.peers, cfg.budget);
    let loaded = load_state(&spec, cfg, dir, true)?;
    Ok((digest_hex(loaded.walk.state_digest()), loaded.replayed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "bbc-serve-test-{}-{tag}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn frame(client: u64, seq: u64, op: Op) -> RequestFrame {
        RequestFrame { client, seq, op }
    }

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            peers: 8,
            budget: 1,
            ..ServeConfig::default()
        }
    }

    fn reply(handle: &Handle, f: RequestFrame) -> Reply {
        match handle.call(f) {
            Dispatch::Reply(r) => r.reply,
            other => panic!("expected a reply, got {other:?}"),
        }
    }

    #[test]
    fn service_round_trip_matches_oracle() {
        let cfg = small_cfg();
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        let frames = vec![
            frame(1, 1, Op::Settle { max_steps: 10_000 }),
            frame(1, 2, Op::Leave { node: 3 }),
            frame(2, 1, Op::Settle { max_steps: 10_000 }),
            frame(
                2,
                2,
                Op::Join {
                    node: 3,
                    strategy: vec![0],
                },
            ),
            frame(1, 3, Op::Step { steps: 64 }),
        ];
        for f in &frames {
            let r = reply(&handle, f.clone());
            assert!(!matches!(r, Reply::Error { .. }), "unexpected error: {r:?}");
        }
        let digest = match reply(&handle, frame(9, 1, Op::Query(Probe::Digest))) {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        };
        assert_eq!(digest, oracle_digest(&cfg, &frames).unwrap());
        assert!(matches!(
            reply(&handle, frame(9, 2, Op::Shutdown)),
            Reply::Bye
        ));
        service.join().unwrap();
    }

    #[test]
    fn duplicate_mutating_ops_are_skipped() {
        let service = Service::start(small_cfg()).unwrap();
        let handle = service.handle();
        assert!(matches!(
            reply(&handle, frame(7, 5, Op::Leave { node: 1 })),
            Reply::Ok { .. }
        ));
        let digest_before = match reply(&handle, frame(0, 1, Op::Query(Probe::Digest))) {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        };
        // Same seq again, and an older one: both suppressed.
        assert_eq!(
            reply(&handle, frame(7, 5, Op::Leave { node: 2 })),
            Reply::Skipped { last: 5 }
        );
        assert_eq!(
            reply(&handle, frame(7, 4, Op::Leave { node: 2 })),
            Reply::Skipped { last: 5 }
        );
        // Queries are not sequence-tracked.
        assert!(matches!(
            reply(&handle, frame(7, 1, Op::Query(Probe::SocialCost))),
            Reply::SocialCost { .. }
        ));
        let digest_after = match reply(&handle, frame(0, 2, Op::Query(Probe::Digest))) {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        };
        assert_eq!(digest_before, digest_after, "skipped ops change nothing");
        assert_eq!(
            reply(
                &handle,
                frame(0, 3, Op::Query(Probe::ClientSeq { client: 7 }))
            ),
            Reply::Seq { client: 7, seq: 5 }
        );
        drop(handle);
        service.join().unwrap();
    }

    #[test]
    fn game_errors_are_typed_replies_and_deterministic() {
        let cfg = small_cfg();
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        let frames = vec![
            frame(1, 1, Op::Leave { node: 2 }),
            frame(1, 2, Op::Leave { node: 2 }), // now dead → NotLive
            frame(
                1,
                3,
                Op::Join {
                    node: 2,
                    strategy: vec![2],
                },
            ), // self-link
            frame(
                1,
                4,
                Op::Join {
                    node: 0,
                    strategy: vec![],
                },
            ), // already live
            frame(1, 5, Op::Leave { node: 99 }), // out of bounds
        ];
        let mut codes = Vec::new();
        for f in &frames {
            if let Reply::Error { code, .. } = reply(&handle, f.clone()) {
                codes.push(code);
            }
        }
        assert_eq!(
            codes,
            vec![
                ErrorCode::NotLive,
                ErrorCode::Game,
                ErrorCode::NotLive,
                ErrorCode::Game
            ]
        );
        let digest = match reply(&handle, frame(0, 1, Op::Query(Probe::Digest))) {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        };
        // Errored ops are part of the accepted order; the oracle agrees.
        assert_eq!(digest, oracle_digest(&cfg, &frames).unwrap());
        drop(handle);
        service.join().unwrap();
    }

    #[test]
    fn snapshot_restore_round_trips_with_journal_suffix() {
        let dir = temp_dir("snap");
        let cfg = ServeConfig {
            state_dir: Some(dir.clone()),
            ..small_cfg()
        };
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        reply(&handle, frame(1, 1, Op::Settle { max_steps: 10_000 }));
        reply(&handle, frame(1, 2, Op::Leave { node: 5 }));
        let snap = reply(&handle, frame(1, 3, Op::Snapshot));
        let Reply::Snapshotted { journal_gen, .. } = snap else {
            panic!("{snap:?}");
        };
        assert_eq!(journal_gen, 2);
        // Mutations after the snapshot land in the new journal.
        reply(&handle, frame(1, 4, Op::Leave { node: 6 }));
        reply(&handle, frame(1, 5, Op::Step { steps: 200 }));
        let live_digest = match reply(&handle, frame(0, 1, Op::Query(Probe::Digest))) {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        };
        // In-service restore is an idempotent self-check…
        let restored = reply(&handle, frame(0, 2, Op::Restore));
        match restored {
            Reply::Restored { digest, replayed } => {
                assert_eq!(digest, live_digest);
                assert_eq!(replayed, 2, "journal gen-2 held the two post-snapshot ops");
            }
            other => panic!("{other:?}"),
        }
        // …and a seq probe survives the snapshot→restore cycle.
        assert_eq!(
            reply(
                &handle,
                frame(0, 3, Op::Query(Probe::ClientSeq { client: 1 }))
            ),
            Reply::Seq { client: 1, seq: 5 }
        );
        reply(&handle, frame(0, 4, Op::Shutdown));
        service.join().unwrap();
        // An offline replay (what a restarted daemon computes) agrees too.
        let (digest, replayed) = replay_digest(&cfg, &dir).unwrap();
        assert_eq!(digest, live_digest);
        assert_eq!(replayed, 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restore_refuses_foreign_fingerprints() {
        let dir = temp_dir("fp");
        let cfg = ServeConfig {
            state_dir: Some(dir.clone()),
            ..small_cfg()
        };
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        reply(&handle, frame(1, 1, Op::Leave { node: 0 }));
        reply(&handle, frame(1, 2, Op::Shutdown));
        service.join().unwrap();
        // Same dir, different game ⇒ fingerprint mismatch, typed error.
        let other = ServeConfig {
            peers: 9,
            state_dir: Some(dir.clone()),
            restore: true,
            ..small_cfg()
        };
        match Service::start(other) {
            Err(ServeError::Corrupt { message, .. }) => {
                assert!(message.contains("fingerprint mismatch"), "{message}");
            }
            other => panic!("expected corrupt-state error, got {other:?}"),
        }
        // And a fresh boot refuses to clobber existing state.
        match Service::start(cfg) {
            Err(ServeError::Config(message)) => {
                assert!(message.contains("already holds"), "{message}");
            }
            other => panic!("expected config error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_trailing_journal_line_is_dropped() {
        let dir = temp_dir("trunc");
        let cfg = ServeConfig {
            state_dir: Some(dir.clone()),
            ..small_cfg()
        };
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        reply(&handle, frame(1, 1, Op::Leave { node: 4 }));
        reply(&handle, frame(1, 2, Op::Leave { node: 5 }));
        reply(&handle, frame(1, 3, Op::Shutdown));
        service.join().unwrap();
        let (intact_digest, _) = replay_digest(&cfg, &dir).unwrap();

        // Simulate a crash mid-append: a partial record with no newline.
        let path = dir.join(journal_file(1));
        let mut text = fs::read_to_string(&path).unwrap();
        let full_len = text.len();
        text.push_str(r#"{"Record":{"client":1,"seq":3,"op":{"Lea"#);
        fs::write(&path, &text).unwrap();
        let (digest, replayed) = replay_digest(&cfg, &dir).unwrap();
        assert_eq!(digest, intact_digest, "partial trailing record dropped");
        assert_eq!(replayed, 2);

        // A restoring boot truncates the fragment and keeps serving.
        let restored = Service::start(ServeConfig {
            restore: true,
            ..cfg.clone()
        })
        .unwrap();
        let h = restored.handle();
        assert!(matches!(
            reply(&h, frame(1, 3, Op::Leave { node: 6 })),
            Reply::Ok { .. }
        ));
        reply(&h, frame(1, 4, Op::Shutdown));
        restored.join().unwrap();
        assert_eq!(
            fs::read_to_string(&path).unwrap().len(),
            full_len
                + encode_line(&JournalLine::Record {
                    client: 1,
                    seq: 3,
                    op: Op::Leave { node: 6 },
                })
                .unwrap()
                .len(),
            "the fragment was truncated before appending"
        );

        // Mid-file garbage, by contrast, is a hard corruption error.
        let mut lines: Vec<String> = fs::read_to_string(&path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        lines[1] = "{\"Record\": garbage".to_string();
        fs::write(&path, format!("{}\n", lines.join("\n"))).unwrap();
        match replay_digest(&cfg, &dir) {
            Err(ServeError::Corrupt { .. }) => {}
            other => panic!("expected corruption, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn auto_settle_is_journaled_and_replayable() {
        let dir = temp_dir("auto");
        let cfg = ServeConfig {
            state_dir: Some(dir.clone()),
            auto_settle_every: 2,
            auto_settle_budget: 5_000,
            ..small_cfg()
        };
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        reply(&handle, frame(1, 1, Op::Leave { node: 1 }));
        reply(&handle, frame(1, 2, Op::Leave { node: 2 })); // triggers settle
        reply(&handle, frame(1, 3, Op::Leave { node: 3 }));
        let digest = match reply(&handle, frame(0, 1, Op::Query(Probe::Digest))) {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        };
        // The service client's synthetic round is sequence-tracked.
        assert_eq!(
            reply(
                &handle,
                frame(
                    0,
                    2,
                    Op::Query(Probe::ClientSeq {
                        client: SERVICE_CLIENT
                    })
                )
            ),
            Reply::Seq {
                client: SERVICE_CLIENT,
                seq: 1
            }
        );
        reply(&handle, frame(0, 3, Op::Shutdown));
        service.join().unwrap();
        let (replayed_digest, replayed) = replay_digest(&cfg, &dir).unwrap();
        assert_eq!(replayed_digest, digest);
        assert_eq!(replayed, 4, "3 events + 1 synthetic settle");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_validation_rejects_undeterministic_setups() {
        let bad = ServeConfig {
            scheduler: Scheduler::Random { seed: 1 },
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        let bad = ServeConfig {
            peers: 1,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        let bad = ServeConfig {
            queue_depth: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        let bad = ServeConfig {
            scheduler: Scheduler::RoundRobinOrder(vec![NodeId::new(0)]),
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        let bad = ServeConfig {
            metrics_file: Some(PathBuf::from("/tmp/m.prom")),
            metrics_every: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn fingerprints_separate_games_and_schedulers() {
        let a = ServeConfig::default().fingerprint();
        let b = ServeConfig {
            peers: 33,
            ..ServeConfig::default()
        }
        .fingerprint();
        let c = ServeConfig {
            scheduler: Scheduler::MaxCostFirst,
            ..ServeConfig::default()
        }
        .fingerprint();
        assert_ne!(a, b);
        assert_ne!(a, c);
        // Runtime knobs are not part of the identity — metrics included:
        // turning observation on must not orphan persisted state.
        let d = ServeConfig {
            queue_depth: 1,
            auto_settle_every: 10,
            metrics_file: Some(PathBuf::from("/tmp/m.prom")),
            metrics_every: 7,
            ..ServeConfig::default()
        }
        .fingerprint();
        assert_eq!(a, d);
    }
}

//! Overlay-as-a-service: a long-lived BBC engine behind a line-delimited
//! JSON protocol over a Unix-domain socket.
//!
//! The repository's other crates treat a game as a batch artifact — build
//! an instance, walk it, write a stream. This crate keeps one
//! [`bbc_core::DistanceEngine`] (wrapped in a [`bbc_core::Walk`]) alive and
//! lets many concurrent clients churn and query it, while preserving the
//! engine's replayability contract: a **single owner thread** drains a
//! bounded FIFO queue, so however clients interleave at the sockets, the
//! engine observes one total order of accepted requests, and replaying that
//! order single-threaded ([`oracle_digest`]) reproduces the identical
//! [`bbc_core::DistanceEngine::state_digest`].
//!
//! Layer by layer:
//!
//! - [`protocol`] — the wire format: newline-delimited JSON frames
//!   ([`RequestFrame`] in, [`ReplyFrame`] out), a 64 KiB frame cap, and
//!   decoding that turns every malformed input into a typed
//!   [`Reply::Error`] instead of a panic or a wedged connection.
//! - [`service`] — the engine-owner loop: duplicate suppression via
//!   per-client sequence numbers, journaled-then-applied mutations,
//!   snapshot/restore in the fingerprinted stream format, auto-settle
//!   batching, and the single-threaded replay oracles.
//! - [`socket`] — thread-per-connection Unix-socket plumbing over a
//!   [`Handle`], plus the blocking [`socket::Client`] used by tests and the
//!   load generator.
//! - [`loadgen`] — a seeded multi-client load generator
//!   (`bbc-serve --loadgen N`) whose serial mode produces a CI-pinnable
//!   digest and whose report lands in `BENCH_results.json`.
//!
//! # Protocol in one example
//!
//! Requests are JSON objects `{"client", "seq", "op"}`; replies echo `seq`.
//! The full frame vocabulary is [`protocol::Op`] and [`protocol::Reply`].
//! In-process use needs no socket at all:
//!
//! ```
//! use bbc_serve::protocol::{decode_request, encode_line, Op, Probe, Reply};
//! use bbc_serve::{Dispatch, ServeConfig, Service};
//!
//! let service = Service::start(ServeConfig {
//!     peers: 8,
//!     budget: 1,
//!     ..ServeConfig::default()
//! })?;
//! let handle = service.handle();
//!
//! // What a client writes on the wire, one line per request:
//! let lines = [
//!     r#"{"client":1,"seq":1,"op":{"Settle":{"max_steps":10000}}}"#,
//!     r#"{"client":1,"seq":2,"op":{"Leave":{"node":3}}}"#,
//!     r#"{"client":1,"seq":2,"op":{"Leave":{"node":3}}}"#, // duplicate!
//!     r#"{"client":1,"seq":3,"op":{"Advise":{"node":0}}}"#,
//!     r#"{"client":1,"seq":0,"op":{"Query":"Metrics"}}"#,
//!     r#"{"client":1,"seq":4,"op":{"Query":"Digest"}}"#,
//! ];
//! let mut replies = Vec::new();
//! for line in lines {
//!     let frame = decode_request(line.as_bytes()).expect("well-formed");
//!     match handle.call(frame) {
//!         Dispatch::Reply(reply) => {
//!             // …and what it reads back (also one JSON line each):
//!             let _wire = encode_line(&reply).expect("encodable");
//!             replies.push(reply);
//!         }
//!         other => panic!("{other:?}"),
//!     }
//! }
//! assert!(matches!(replies[0].reply, Reply::Phase { .. }));
//! assert!(matches!(replies[1].reply, Reply::Ok { .. }));
//! assert!(matches!(replies[2].reply, Reply::Skipped { last: 2 }));
//! assert!(matches!(replies[3].reply, Reply::Advice { .. }));
//! // `Query(Metrics)` returns the owner thread's versioned metrics
//! // document (counters/gauges/histograms; see `bbc_obs`). Metrics are
//! // observational only — reading them never moves the digest, which the
//! // differential suite pins by wedging this probe after every frame:
//! let Reply::Metrics { ref metrics } = replies[4].reply else { panic!() };
//! let doc = metrics.as_map().expect("metrics document is an object");
//! assert!(matches!(
//!     serde::map_get(doc, "version"),
//!     Some(serde_json::Value::U64(bbc_obs::METRICS_SCHEMA_VERSION))
//! ));
//! // The digest every reply quotes is the engine's replayable state
//! // digest — the same value a single-threaded replay of the accepted
//! // order computes:
//! let Reply::Digest { ref digest } = replies[5].reply else { panic!() };
//! let accepted: Vec<_> = lines[..2]
//!     .iter()
//!     .map(|l| decode_request(l.as_bytes()).expect("well-formed"))
//!     .collect();
//! let cfg = ServeConfig { peers: 8, budget: 1, ..ServeConfig::default() };
//! assert_eq!(*digest, bbc_serve::oracle_digest(&cfg, &accepted)?);
//!
//! match handle.call(decode_request(
//!     br#"{"client":1,"seq":5,"op":"Shutdown"}"#,
//! ).expect("well-formed")) {
//!     Dispatch::Reply(r) => assert!(matches!(r.reply, Reply::Bye)),
//!     other => panic!("{other:?}"),
//! }
//! service.join()?;
//! # Ok::<(), bbc_serve::ServeError>(())
//! ```
//!
//! # Determinism boundary
//!
//! Everything that decides a trajectory lives in [`ServeConfig`] and the
//! accepted request order; both are captured on disk (fingerprint header +
//! journal). Wall-clock, thread scheduling, and connection interleavings
//! only decide *which* order gets accepted, never what a given order
//! produces. [`Scheduler::Random`](bbc_core::Scheduler::Random) is
//! rejected at validation because its RNG state is the one piece of
//! trajectory the snapshot format does not capture.

pub mod loadgen;
pub mod protocol;
pub mod service;
pub mod socket;

pub use protocol::{Op, Probe, Reply, ReplyFrame, RequestFrame};
pub use service::{
    oracle_digest, replay_digest, Dispatch, Handle, ServeConfig, ServeError, Service,
};

//! The wire protocol: line-delimited JSON frames over a byte stream.
//!
//! Every request is one line — a JSON [`RequestFrame`] envelope carrying a
//! logical client id, a client-chosen sequence number, and one [`Op`] — and
//! every reply is one line holding a [`ReplyFrame`] that echoes the request's
//! sequence number. Lines longer than [`MAX_FRAME`] bytes are rejected with a
//! typed [`ErrorCode::Frame`] reply (the rest of the oversized line is
//! drained so the connection stays usable), and *no* input — truncation, bad
//! UTF-8, malformed JSON, unknown ops — ever panics or wedges a connection:
//! the malformed-input corpus in `tests/protocol.rs` pins that contract.
//!
//! Enum encoding follows the workspace serde conventions: unit variants are
//! bare strings (`"Snapshot"`), data variants are externally tagged
//! single-key maps (`{"Leave":{"node":3}}`).

use std::io::{self, BufRead};

use serde::{Deserialize, Serialize};

/// Hard cap on one request/reply line, newline excluded. Generous for every
/// legitimate op (a full-strategy `Join` on a 10⁴-peer game fits with room
/// to spare) while bounding per-connection memory.
pub const MAX_FRAME: usize = 64 * 1024;

/// A read-only probe of the served game ([`Op::Query`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Probe {
    /// Cost of one live node under the current configuration.
    NodeCost {
        /// The probed node id.
        node: u32,
    },
    /// Sum of live node costs.
    SocialCost,
    /// Ordered live pairs with no path (disconnection-penalty exposure).
    DisconnectedPairs,
    /// The engine state digest (membership + strategies + CSR arenas).
    Digest,
    /// Live member ids in ascending order.
    Members,
    /// Highest journaled sequence number seen from a client (0 when none);
    /// reconnecting clients use this to resume exactly-once after a crash.
    ClientSeq {
        /// The logical client id to look up.
        client: u64,
    },
    /// The service metrics document (versioned JSON: counters, gauges,
    /// latency histograms). Observational only — querying it never changes
    /// engine state, and its contents never feed back into a trajectory.
    Metrics,
}

/// One request operation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// (Re)admit a departed node with an opening strategy.
    Join {
        /// The joining node id.
        node: u32,
        /// Its opening out-links (live targets only).
        strategy: Vec<u32>,
    },
    /// Depart a live node; its links and every in-link vanish.
    Leave {
        /// The departing node id.
        node: u32,
    },
    /// Forcibly rewire a live node (operator intervention, not a best
    /// response).
    Shock {
        /// The shocked node id.
        node: u32,
        /// The imposed strategy.
        strategy: Vec<u32>,
    },
    /// Read-only probe; never journaled.
    Query(Probe),
    /// Best-response advice for a node: reports the optimal deviation and
    /// the search-effort counters without applying anything.
    Advise {
        /// The advised node id.
        node: u32,
    },
    /// Run a bounded best-response round: up to `steps` further stability
    /// tests (stops early at equilibrium or a certified cycle).
    Step {
        /// The step budget for this round.
        steps: u64,
    },
    /// Run best response until equilibrium, a certified cycle, or the
    /// budget expires (an alias of [`Op::Step`] with a settling-scale
    /// budget; both reset the scheduler phase first, so the round is a pure
    /// function of the current state).
    Settle {
        /// The step budget for this settling phase.
        max_steps: u64,
    },
    /// Persist the current state atomically and rotate the journal.
    Snapshot,
    /// Rebuild the engine from the persisted snapshot + journal and report
    /// the restored digest (idempotent: on an intact state dir this is a
    /// self-check that replay reproduces the live state).
    Restore,
    /// Stop the service loop after replying.
    Shutdown,
}

impl Op {
    /// `true` for ops that (may) change engine state and are therefore
    /// journaled and covered by duplicate suppression.
    pub fn mutates(&self) -> bool {
        matches!(
            self,
            Op::Join { .. }
                | Op::Leave { .. }
                | Op::Shock { .. }
                | Op::Step { .. }
                | Op::Settle { .. }
        )
    }
}

/// Typed failure categories; every malformed or unserviceable input maps to
/// exactly one of these in an [`Reply::Error`] reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Framing violation: oversized or truncated line.
    Frame,
    /// The line is not valid UTF-8/JSON, or has no addressable envelope.
    Json,
    /// Valid JSON that is not a known request shape (unknown op, wrong
    /// field types).
    Request,
    /// The op addressed a node that is not a live member (or is already
    /// live, for joins).
    NotLive,
    /// The game model rejected the op (budget, self-link, bounds, …).
    Game,
    /// The op is valid but this service instance cannot perform it (e.g.
    /// no state directory configured).
    Unsupported,
    /// The service loop is gone or an internal invariant failed.
    Internal,
}

/// How a best-response round ended (mirrors `bbc_core::WalkOutcome`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseOutcome {
    /// A pure Nash equilibrium was certified.
    Equilibrium,
    /// An exact best-response loop was certified (§4.3: play need not
    /// settle).
    Cycle,
    /// The step budget expired first.
    StepLimit,
}

/// One reply. Every variant echoes enough context to be self-describing;
/// digests are rendered as 16-hex-digit strings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Reply {
    /// A mutating op was applied; carries the post-op state digest.
    Ok {
        /// Engine state digest after the op (and any auto-settle it
        /// triggered).
        digest: String,
    },
    /// A duplicate mutating op (seq ≤ the client's journaled high-water
    /// mark) was suppressed — the exactly-once half of crash recovery.
    Skipped {
        /// The client's highest journaled sequence number.
        last: u64,
    },
    /// [`Probe::NodeCost`] result.
    Cost {
        /// The probed node id.
        node: u32,
        /// Its preference-weighted distance cost.
        cost: u64,
    },
    /// [`Probe::SocialCost`] result.
    SocialCost {
        /// Sum of live node costs.
        cost: u64,
    },
    /// [`Probe::DisconnectedPairs`] result.
    DisconnectedPairs {
        /// Ordered live pairs with no path.
        pairs: u64,
    },
    /// [`Probe::Digest`] result.
    Digest {
        /// Engine state digest, 16 hex digits.
        digest: String,
    },
    /// [`Probe::Members`] result.
    Members {
        /// Live member ids, ascending.
        nodes: Vec<u32>,
    },
    /// [`Probe::Metrics`] result: the whole metrics document, inline.
    Metrics {
        /// A versioned JSON object (`bbc_obs::METRICS_SCHEMA_VERSION`) with
        /// `counters`, `gauges`, and `histograms` sections. Timings vary run
        /// to run; everything else is deterministic.
        metrics: serde_json::Value,
    },
    /// [`Probe::ClientSeq`] result.
    Seq {
        /// The queried client id.
        client: u64,
        /// Its highest journaled sequence number (0 when never seen).
        seq: u64,
    },
    /// [`Op::Advise`] result.
    Advice {
        /// The advised node.
        node: u32,
        /// Its cost under the current configuration.
        current_cost: u64,
        /// The best achievable cost over all affordable deviations.
        best_cost: u64,
        /// A cost-optimal strategy (the current one when already stable).
        best_strategy: Vec<u32>,
        /// `best_cost < current_cost`.
        improves: bool,
        /// Candidate strategies the search evaluated.
        evaluations: u64,
        /// Landmark-bound prunes during the search (effort counter).
        bounds_hit: u64,
        /// Exact deviation rows materialized during the search.
        rows_materialized: u64,
    },
    /// [`Op::Step`] / [`Op::Settle`] result.
    Phase {
        /// How the round ended.
        outcome: PhaseOutcome,
        /// Stability tests executed this round.
        steps: u64,
        /// Strategy changes among them.
        moves: u64,
        /// Social cost after the round.
        social_cost: u64,
        /// Engine state digest after the round.
        digest: String,
    },
    /// [`Op::Snapshot`] result.
    Snapshotted {
        /// Live-node strategy rows written.
        rows: u64,
        /// The journal generation now receiving new records.
        journal_gen: u64,
        /// Digest the snapshot certifies.
        digest: String,
    },
    /// [`Op::Restore`] result.
    Restored {
        /// Digest after rebuilding from snapshot + journal.
        digest: String,
        /// Journal records replayed on top of the snapshot.
        replayed: u64,
    },
    /// The bounded request queue was full; retry later. The explicit
    /// backpressure reply — the service never blocks a socket reader on a
    /// full queue.
    Busy {
        /// The queue capacity that was exhausted.
        depth: u64,
    },
    /// Acknowledges [`Op::Shutdown`]; the service loop exits after this.
    Bye,
    /// A typed failure; the connection stays usable.
    Error {
        /// The failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// A request envelope: one line on the wire.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RequestFrame {
    /// Logical client id (many logical clients may share one connection).
    pub client: u64,
    /// Client-chosen sequence number; must increase per client for
    /// mutating ops (the journal keys duplicate suppression on it).
    pub seq: u64,
    /// The operation.
    pub op: Op,
}

/// A reply envelope: one line on the wire, echoing the request's `seq`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReplyFrame {
    /// The request sequence number this answers (0 when the request had no
    /// decodable envelope).
    pub seq: u64,
    /// The reply payload.
    pub reply: Reply,
}

/// Renders a state digest the way every reply does: 16 lowercase hex
/// digits, zero-padded.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// One framing read: a complete line, or the typed violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// A complete line (newline stripped), at most [`MAX_FRAME`] bytes.
    Line(Vec<u8>),
    /// A line exceeded [`MAX_FRAME`]; its bytes were drained to the
    /// newline, so the next read starts on a fresh frame.
    Oversized,
    /// The stream ended mid-line (no trailing newline).
    Truncated,
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-delimited frame, enforcing [`MAX_FRAME`].
///
/// # Errors
///
/// Propagates transport-level I/O errors; framing violations are data
/// ([`Frame::Oversized`] / [`Frame::Truncated`]), not errors.
pub fn read_frame<R: BufRead>(reader: &mut R) -> io::Result<Frame> {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if oversized {
                Frame::Oversized
            } else if line.is_empty() {
                Frame::Eof
            } else {
                Frame::Truncated
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            if !oversized && line.len() + pos <= MAX_FRAME {
                line.extend_from_slice(&chunk[..pos]);
            } else {
                oversized = true;
            }
            reader.consume(pos + 1);
            return Ok(if oversized {
                Frame::Oversized
            } else {
                Frame::Line(line)
            });
        }
        if !oversized {
            if line.len() + chunk.len() > MAX_FRAME {
                oversized = true;
            } else {
                line.extend_from_slice(chunk);
            }
        }
        let used = chunk.len();
        reader.consume(used);
    }
}

/// Decodes one request line. On failure, returns the seq to address the
/// error reply to (0 when no envelope was decodable), the [`ErrorCode`],
/// and a message.
///
/// # Errors
///
/// [`ErrorCode::Json`] for UTF-8/JSON/envelope failures,
/// [`ErrorCode::Request`] for a well-formed envelope whose `op` matches no
/// known operation.
pub fn decode_request(bytes: &[u8]) -> Result<RequestFrame, (u64, ErrorCode, String)> {
    let text = std::str::from_utf8(bytes)
        .map_err(|e| (0, ErrorCode::Json, format!("invalid utf-8: {e}")))?;
    match serde_json::from_str::<RequestFrame>(text) {
        Ok(frame) => Ok(frame),
        Err(shape_err) => {
            // A second, envelope-only parse decides whether the line was
            // addressable at all: if `seq` decodes, the failure is an
            // unknown/misshapen op and the error reply can echo the seq.
            #[derive(Deserialize)]
            struct Envelope {
                seq: u64,
            }
            match serde_json::from_str::<Envelope>(text) {
                Ok(envelope) => Err((envelope.seq, ErrorCode::Request, shape_err.to_string())),
                Err(_) => Err((0, ErrorCode::Json, shape_err.to_string())),
            }
        }
    }
}

/// Encodes any serializable frame as one wire line (newline included).
///
/// # Errors
///
/// Propagates the encoder's error (unrepresentable floats are the only
/// case; protocol types contain none).
pub fn encode_line<T: Serialize>(frame: &T) -> Result<String, String> {
    serde_json::to_string(frame)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn request_frames_round_trip() {
        let frames = vec![
            RequestFrame {
                client: 1,
                seq: 1,
                op: Op::Join {
                    node: 3,
                    strategy: vec![0, 5],
                },
            },
            RequestFrame {
                client: 2,
                seq: 9,
                op: Op::Query(Probe::NodeCost { node: 7 }),
            },
            RequestFrame {
                client: 0,
                seq: 2,
                op: Op::Snapshot,
            },
            RequestFrame {
                client: 4,
                seq: 3,
                op: Op::Settle { max_steps: 500 },
            },
        ];
        for frame in frames {
            let line = encode_line(&frame).unwrap();
            assert!(line.ends_with('\n'));
            let back = decode_request(line.trim_end().as_bytes()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn reply_frames_round_trip() {
        let replies = vec![
            Reply::Ok {
                digest: digest_hex(0xdead_beef),
            },
            Reply::Busy { depth: 64 },
            Reply::Phase {
                outcome: PhaseOutcome::Cycle,
                steps: 12,
                moves: 3,
                social_cost: 99,
                digest: digest_hex(7),
            },
            Reply::Error {
                code: ErrorCode::NotLive,
                message: "node v3 is not a live member".to_string(),
            },
        ];
        for reply in replies {
            let frame = ReplyFrame { seq: 5, reply };
            let line = encode_line(&frame).unwrap();
            let back: ReplyFrame = serde_json::from_str(line.trim_end()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn unknown_op_keeps_the_envelope_seq() {
        let (seq, code, msg) =
            decode_request(br#"{"client":1,"seq":42,"op":{"Explode":{}}}"#).unwrap_err();
        assert_eq!(seq, 42, "error reply must be addressable");
        assert_eq!(code, ErrorCode::Request);
        assert!(!msg.is_empty());
    }

    #[test]
    fn garbage_lines_are_typed_json_errors() {
        for bad in [
            &b"not json at all"[..],
            br#"{"unterminated": "#,
            b"\xff\xfe\x00",
            br#"{"client":"one","seq":"two"}"#,
            br#"[1,2,3]"#,
        ] {
            let (seq, code, _) = decode_request(bad).unwrap_err();
            assert_eq!(seq, 0);
            assert_eq!(code, ErrorCode::Json, "{bad:?}");
        }
    }

    #[test]
    fn framing_enforces_the_cap_and_recovers() {
        let mut input = Vec::new();
        input.extend_from_slice(b"short line\n");
        input.extend_from_slice(&vec![b'x'; MAX_FRAME + 10]);
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        input.extend_from_slice(b"trailing");
        let mut reader = BufReader::with_capacity(64, &input[..]);
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Frame::Line(b"short line".to_vec())
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Oversized);
        assert_eq!(
            read_frame(&mut reader).unwrap(),
            Frame::Line(b"after".to_vec()),
            "the oversized line is drained, not wedged"
        );
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Truncated);
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Eof);
    }

    #[test]
    fn exact_cap_line_is_accepted() {
        let mut input = vec![b'y'; MAX_FRAME];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        match read_frame(&mut reader).unwrap() {
            Frame::Line(line) => assert_eq!(line.len(), MAX_FRAME),
            other => panic!("expected a line, got {other:?}"),
        }
        let mut input = vec![b'y'; MAX_FRAME + 1];
        input.push(b'\n');
        let mut reader = BufReader::new(&input[..]);
        assert_eq!(read_frame(&mut reader).unwrap(), Frame::Oversized);
    }

    #[test]
    fn mutates_covers_exactly_the_journaled_ops() {
        assert!(Op::Join {
            node: 0,
            strategy: vec![]
        }
        .mutates());
        assert!(Op::Leave { node: 0 }.mutates());
        assert!(Op::Shock {
            node: 0,
            strategy: vec![]
        }
        .mutates());
        assert!(Op::Step { steps: 1 }.mutates());
        assert!(Op::Settle { max_steps: 1 }.mutates());
        assert!(!Op::Query(Probe::Digest).mutates());
        assert!(!Op::Query(Probe::Metrics).mutates());
        assert!(!Op::Advise { node: 0 }.mutates());
        assert!(!Op::Snapshot.mutates());
        assert!(!Op::Restore.mutates());
        assert!(!Op::Shutdown.mutates());
    }
}

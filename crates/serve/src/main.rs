//! The `bbc-serve` binary: daemon mode and load-generator mode.
//!
//! ```text
//! bbc-serve --socket PATH [--peers N] [--budget K]
//!           [--scheduler round-robin|max-cost-first]
//!           [--state-dir DIR] [--restore]
//!           [--queue-depth D] [--auto-settle EVERY:BUDGET]
//!           [--metrics-file PATH] [--metrics-every N]
//!
//! bbc-serve --loadgen CLIENTS --socket PATH [--requests R] [--seed S]
//!           [--connections C] [--serial] [--state-dir DIR]
//!           [--expect-digest HEX] [--bench] [--peers N] [--budget K]
//! ```
//!
//! Daemon mode serves until a client sends `Shutdown` (or the process is
//! killed; with `--state-dir` the journal makes that recoverable via
//! `--restore`). Loadgen mode drives a running daemon and prints a JSON
//! [`bbc_serve::loadgen::LoadReport`]; `--expect-digest` turns a digest
//! mismatch into a nonzero exit, which is how CI pins the protocol.

use std::path::PathBuf;
use std::process::ExitCode;

use bbc_serve::loadgen::{self, LoadGen};
use bbc_serve::socket::run_listener;
use bbc_serve::{ServeConfig, Service};

struct Args {
    socket: Option<PathBuf>,
    loadgen: Option<u64>,
    requests: u64,
    seed: u64,
    connections: usize,
    serial: bool,
    expect_digest: Option<String>,
    bench: bool,
    cfg: ServeConfig,
}

fn usage() -> &'static str {
    "usage:\n  bbc-serve --socket PATH [--peers N] [--budget K] \
     [--scheduler round-robin|max-cost-first] [--state-dir DIR] [--restore] \
     [--queue-depth D] [--auto-settle EVERY:BUDGET] [--metrics-file PATH] \
     [--metrics-every N]\n  bbc-serve --loadgen CLIENTS \
     --socket PATH [--requests R] [--seed S] [--connections C] [--serial] \
     [--state-dir DIR] [--expect-digest HEX] [--bench] [--peers N] [--budget K]"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        loadgen: None,
        requests: 4000,
        seed: 0xBBC,
        connections: 4,
        serial: false,
        expect_digest: None,
        bench: false,
        cfg: ServeConfig::default(),
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--loadgen" => {
                args.loadgen = Some(parse_num(value("--loadgen")?, "--loadgen")?);
            }
            "--requests" => args.requests = parse_num(value("--requests")?, "--requests")?,
            "--seed" => args.seed = parse_num(value("--seed")?, "--seed")?,
            "--connections" => {
                args.connections = parse_num(value("--connections")?, "--connections")? as usize;
            }
            "--serial" => args.serial = true,
            "--expect-digest" => {
                args.expect_digest = Some(value("--expect-digest")?.clone());
            }
            "--bench" => args.bench = true,
            "--peers" => args.cfg.peers = parse_num(value("--peers")?, "--peers")? as usize,
            "--budget" => args.cfg.budget = parse_num(value("--budget")?, "--budget")?,
            "--scheduler" => {
                args.cfg.scheduler = match value("--scheduler")?.as_str() {
                    "round-robin" => bbc_core::Scheduler::RoundRobin,
                    "max-cost-first" => bbc_core::Scheduler::MaxCostFirst,
                    other => return Err(format!("unknown scheduler `{other}`")),
                };
            }
            "--state-dir" => args.cfg.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--restore" => args.cfg.restore = true,
            "--queue-depth" => {
                args.cfg.queue_depth =
                    parse_num(value("--queue-depth")?, "--queue-depth")? as usize;
            }
            "--metrics-file" => {
                args.cfg.metrics_file = Some(PathBuf::from(value("--metrics-file")?));
            }
            "--metrics-every" => {
                args.cfg.metrics_every = parse_num(value("--metrics-every")?, "--metrics-every")?;
            }
            "--auto-settle" => {
                let spec = value("--auto-settle")?;
                let (every, budget) = spec
                    .split_once(':')
                    .ok_or_else(|| format!("--auto-settle wants EVERY:BUDGET, got `{spec}`"))?;
                args.cfg.auto_settle_every = parse_num(every, "--auto-settle EVERY")?;
                args.cfg.auto_settle_budget = parse_num(budget, "--auto-settle BUDGET")?;
            }
            "--help" | "-h" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    Ok(args)
}

fn parse_num(text: &str, name: &str) -> Result<u64, String> {
    text.parse()
        .map_err(|_| format!("{name}: `{text}` is not a number"))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(socket) = args.socket.clone() else {
        eprintln!("--socket is required\n{}", usage());
        return ExitCode::from(2);
    };
    match args.loadgen {
        Some(clients) => run_loadgen(&args, clients, &socket),
        None => run_daemon(&args, &socket),
    }
}

fn run_daemon(args: &Args, socket: &std::path::Path) -> ExitCode {
    let service = match Service::start(args.cfg.clone()) {
        Ok(service) => service,
        Err(e) => {
            eprintln!("bbc-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = service.handle();
    let listen_path = socket.to_path_buf();
    let listener = std::thread::Builder::new()
        .name("bbc-serve-listener".to_string())
        .spawn(move || run_listener(&listen_path, &handle));
    match listener {
        Ok(_) => {}
        Err(e) => {
            eprintln!("bbc-serve: cannot spawn the listener: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("bbc-serve: listening on {}", socket.display());
    // The owner loop exits on Shutdown; the listener thread dies with the
    // process.
    let code = match service.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("bbc-serve: {e}");
            ExitCode::FAILURE
        }
    };
    let _ = std::fs::remove_file(socket);
    code
}

fn run_loadgen(args: &Args, clients: u64, socket: &std::path::Path) -> ExitCode {
    let load = LoadGen {
        clients,
        requests: args.requests,
        seed: args.seed,
        connections: args.connections,
        serial: args.serial,
        verify_state_dir: args.cfg.state_dir.clone(),
    };
    let report = match loadgen::run(&load, &args.cfg, socket) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("bbc-serve --loadgen: {e}");
            return ExitCode::FAILURE;
        }
    };
    match serde_json::to_string_pretty(&report) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("bbc-serve --loadgen: cannot encode the report: {e}");
            return ExitCode::FAILURE;
        }
    }
    if args.bench {
        report.record_bench();
        criterion::write_results();
    }
    if !report.reference_digest.is_empty() && !report.verified {
        eprintln!(
            "bbc-serve --loadgen: digest {} diverges from the reference replay {}",
            report.digest, report.reference_digest
        );
        return ExitCode::FAILURE;
    }
    if let Some(expected) = &args.expect_digest {
        if *expected != report.digest {
            eprintln!(
                "bbc-serve --loadgen: digest {} does not match the pinned {expected}",
                report.digest
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

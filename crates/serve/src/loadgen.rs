//! A seeded multi-client load generator for the daemon.
//!
//! Simulates `clients` logical clients, each drawing its op stream from its
//! own [`SmallRng`] (seeded from the run seed and the client id), so the
//! per-client request sequences are identical however the run is executed:
//!
//! - **serial mode** (`--serial`): one connection, clients interleaved
//!   round-robin. The accepted order equals the submitted order, so the
//!   final digest is a pure function of `(game config, seed, clients,
//!   requests)` — the CI leg pins it, and the run self-verifies against
//!   [`oracle_digest`].
//! - **concurrent mode**: `connections` threads, clients partitioned
//!   round-robin across them. The accepted order now depends on thread
//!   scheduling; what stays invariant is that the digest the daemon reports
//!   equals a single-threaded replay of whatever order it accepted — pass a
//!   state directory ([`LoadGen::verify_state_dir`]) to check that via
//!   [`replay_digest`].
//!
//! Latency quantiles (p50/p95/max) land in `BENCH_results.json` through
//! the bench shim's [`criterion::record`] registry when
//! [`LoadReport::record_bench`] is called, tagged with the host's
//! `available_parallelism` like every other baseline. All timing goes
//! through [`bbc_obs::WallClock`] — the workspace's one blessed wall-clock
//! boundary; it only ever feeds the latency report, never game state.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use bbc_obs::{Clock as _, WallClock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

use crate::protocol::{Op, Probe, Reply, RequestFrame};
use crate::service::{oracle_digest, replay_digest, ServeConfig, ServeError};
use crate::socket::Client;

/// Load-generator parameters.
#[derive(Clone, Debug)]
pub struct LoadGen {
    /// Simulated logical clients.
    pub clients: u64,
    /// Total requests across all clients.
    pub requests: u64,
    /// Run seed; fixes every client's op stream.
    pub seed: u64,
    /// Concurrent connections (ignored in serial mode).
    pub connections: usize,
    /// One connection, deterministic round-robin submission order.
    pub serial: bool,
    /// The daemon's state directory, if it has one: enables the
    /// journal-replay verification in concurrent mode.
    pub verify_state_dir: Option<PathBuf>,
}

impl Default for LoadGen {
    fn default() -> Self {
        Self {
            clients: 1000,
            requests: 4000,
            seed: 0xBBC,
            connections: 4,
            serial: false,
            verify_state_dir: None,
        }
    }
}

/// What a load run measured and verified.
#[derive(Clone, Debug, Serialize)]
pub struct LoadReport {
    /// Simulated logical clients.
    pub clients: u64,
    /// Requests actually sent.
    pub requests: u64,
    /// The run seed.
    pub seed: u64,
    /// Connections used.
    pub connections: u64,
    /// Whether the run was serial (digest-pinnable) or concurrent.
    pub serial: bool,
    /// Wall-clock nanoseconds for the whole run.
    pub elapsed_ns: u64,
    /// Requests per second (requests / elapsed).
    pub throughput_rps: u64,
    /// Median request round-trip, nanoseconds.
    pub latency_p50_ns: u64,
    /// 95th-percentile request round-trip, nanoseconds.
    pub latency_p95_ns: u64,
    /// Worst request round-trip, nanoseconds.
    pub latency_max_ns: u64,
    /// Typed error replies received (expected under random churn: ops on
    /// dead nodes, over-budget strategies, …).
    pub errors: u64,
    /// Backpressure ([`Reply::Busy`]) retries absorbed.
    pub busy_retries: u64,
    /// The daemon's final state digest.
    pub digest: String,
    /// The independently-computed reference digest (single-threaded oracle
    /// in serial mode, journal replay in concurrent mode; empty when no
    /// reference was available).
    pub reference_digest: String,
    /// `digest == reference_digest` (vacuously false when no reference).
    pub verified: bool,
}

impl LoadReport {
    /// Records the run's latency quantiles into the bench registry (flush
    /// with [`criterion::write_results`]): the median under the historical
    /// `serve/loadgen_latency` key, plus the p95 and worst-case tails.
    pub fn record_bench(&self) {
        criterion::record("serve/loadgen_latency", u128::from(self.latency_p50_ns));
        criterion::record("serve/loadgen_latency_p95", u128::from(self.latency_p95_ns));
        criterion::record("serve/loadgen_latency_max", u128::from(self.latency_max_ns));
    }
}

/// One client's `count`-op stream: a pure function of `(seed, client)`.
pub fn client_ops(seed: u64, client: u64, count: u64, cfg: &ServeConfig) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(
        seed ^ client
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(client),
    );
    (0..count).map(|_| gen_op(&mut rng, cfg)).collect()
}

fn gen_op(rng: &mut SmallRng, cfg: &ServeConfig) -> Op {
    let peers = cfg.peers as u32;
    let node = rng.gen_range(0u32..peers);
    let strategy = |rng: &mut SmallRng| -> Vec<u32> {
        let len = rng.gen_range(1u64..=cfg.budget.min(3)) as usize;
        (0..len).map(|_| rng.gen_range(0u32..peers)).collect()
    };
    match rng.gen_range(0u32..100) {
        // Read-heavy mix: half the traffic observes, half churns.
        0..=19 => Op::Query(match rng.gen_range(0u32..4) {
            0 => Probe::SocialCost,
            1 => Probe::DisconnectedPairs,
            2 => Probe::Members,
            _ => Probe::NodeCost { node },
        }),
        20..=34 => Op::Advise { node },
        35..=54 => Op::Leave { node },
        55..=74 => Op::Join {
            node,
            strategy: strategy(rng),
        },
        75..=84 => Op::Shock {
            node,
            strategy: strategy(rng),
        },
        _ => Op::Step {
            steps: rng.gen_range(1u64..=32),
        },
    }
}

/// Splits `requests` across `clients` (earlier clients get the remainder).
fn per_client_counts(clients: u64, requests: u64) -> Vec<u64> {
    let base = requests / clients.max(1);
    let extra = requests % clients.max(1);
    (0..clients).map(|c| base + u64::from(c < extra)).collect()
}

/// The serial submission order: clients round-robin, each playing its
/// stream in order, with mutating ops numbered 1.. per client (queries
/// carry seq 0; only mutating ops are sequence-tracked). This is both what
/// serial mode sends and what the oracle replays.
pub fn serial_frames(load: &LoadGen, cfg: &ServeConfig) -> Vec<RequestFrame> {
    let counts = per_client_counts(load.clients, load.requests);
    let mut streams: Vec<std::vec::IntoIter<Op>> = (0..load.clients)
        .map(|c| client_ops(load.seed, c + 1, counts[c as usize], cfg).into_iter())
        .collect();
    let mut seqs: BTreeMap<u64, u64> = BTreeMap::new();
    let mut frames = Vec::with_capacity(load.requests as usize);
    let mut drained = false;
    while !drained {
        drained = true;
        for (i, stream) in streams.iter_mut().enumerate() {
            let Some(op) = stream.next() else { continue };
            drained = false;
            let client = i as u64 + 1;
            let seq = if op.mutates() {
                let next = seqs.get(&client).copied().unwrap_or(0) + 1;
                seqs.insert(client, next);
                next
            } else {
                0
            };
            frames.push(RequestFrame { client, seq, op });
        }
    }
    frames
}

/// Runs the load against a daemon listening on `socket`. `cfg` must match
/// the daemon's game configuration (it parameterizes op generation and the
/// oracle).
///
/// # Errors
///
/// [`ServeError::Io`] on connection failures, [`ServeError::Config`] on an
/// invalid setup.
pub fn run(load: &LoadGen, cfg: &ServeConfig, socket: &Path) -> Result<LoadReport, ServeError> {
    cfg.validate()?;
    if load.clients == 0 {
        return Err(ServeError::Config(
            "the loadgen needs at least one client".to_string(),
        ));
    }
    if load.clients == crate::service::SERVICE_CLIENT {
        return Err(ServeError::Config(
            "client ids collide with the reserved service client".to_string(),
        ));
    }
    let clock = WallClock::new();
    let started = clock.now_ns();
    let (latencies, errors, busy_retries, sent) = if load.serial {
        run_serial(load, cfg, socket)?
    } else {
        run_concurrent(load, cfg, socket)?
    };
    let elapsed_ns = clock.now_ns().saturating_sub(started);

    // Final digest, read over a fresh connection.
    let mut probe = Client::connect(socket, 0)?;
    let digest = match probe.request(Op::Query(Probe::Digest))? {
        Reply::Digest { digest } => digest,
        other => {
            return Err(ServeError::Config(format!(
                "digest probe answered {other:?}"
            )))
        }
    };

    let reference_digest = if load.serial {
        oracle_digest(cfg, &serial_frames(load, cfg))?
    } else if let Some(dir) = &load.verify_state_dir {
        replay_digest(cfg, dir)?.0
    } else {
        String::new()
    };

    let (p50, p95, max) = percentiles(latencies);
    Ok(LoadReport {
        clients: load.clients,
        requests: sent,
        seed: load.seed,
        connections: if load.serial {
            1
        } else {
            load.connections as u64
        },
        serial: load.serial,
        elapsed_ns,
        throughput_rps: sent
            .saturating_mul(1_000_000_000)
            .checked_div(elapsed_ns)
            .unwrap_or(0),
        latency_p50_ns: p50,
        latency_p95_ns: p95,
        latency_max_ns: max,
        errors,
        busy_retries,
        verified: !reference_digest.is_empty() && digest == reference_digest,
        digest,
        reference_digest,
    })
}

type RunTallies = (Vec<u64>, u64, u64, u64);

fn run_serial(load: &LoadGen, cfg: &ServeConfig, socket: &Path) -> Result<RunTallies, ServeError> {
    let frames = serial_frames(load, cfg);
    let clock = WallClock::new();
    let mut conn = Client::connect(socket, 0)?;
    let mut latencies = Vec::with_capacity(frames.len());
    let mut errors = 0u64;
    let mut busy = 0u64;
    let sent = frames.len() as u64;
    for frame in frames {
        let t0 = clock.now_ns();
        let mut reply = send_frame(&mut conn, &frame)?;
        while let Reply::Busy { .. } = reply {
            busy += 1;
            std::thread::sleep(std::time::Duration::from_micros(100));
            reply = send_frame(&mut conn, &frame)?;
        }
        latencies.push(clock.now_ns().saturating_sub(t0));
        if matches!(reply, Reply::Error { .. }) {
            errors += 1;
        }
    }
    Ok((latencies, errors, busy, sent))
}

fn send_frame(conn: &mut Client, frame: &RequestFrame) -> Result<Reply, ServeError> {
    conn.client = frame.client;
    conn.request_seq(frame.seq, frame.op.clone())
}

fn run_concurrent(
    load: &LoadGen,
    cfg: &ServeConfig,
    socket: &Path,
) -> Result<RunTallies, ServeError> {
    let counts = per_client_counts(load.clients, load.requests);
    let connections = load.connections.max(1);
    let results = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for worker in 0..connections {
            let counts = &counts;
            handles.push(scope.spawn(move || -> Result<RunTallies, ServeError> {
                // Clients are partitioned round-robin across workers; each
                // worker interleaves its clients round-robin, exactly like
                // serial mode does globally.
                let mut streams: Vec<(u64, u64, std::vec::IntoIter<Op>)> = (0..load.clients)
                    .filter(|c| *c as usize % connections == worker)
                    .map(|c| {
                        let client = c + 1;
                        (
                            client,
                            0u64,
                            client_ops(load.seed, client, counts[c as usize], cfg).into_iter(),
                        )
                    })
                    .collect();
                let clock = WallClock::new();
                let mut conn = Client::connect(socket, 0)?;
                let mut latencies = Vec::new();
                let (mut errors, mut busy, mut sent) = (0u64, 0u64, 0u64);
                let mut drained = false;
                while !drained {
                    drained = true;
                    for (client, seq, stream) in &mut streams {
                        let Some(op) = stream.next() else { continue };
                        drained = false;
                        let frame_seq = if op.mutates() {
                            *seq += 1;
                            *seq
                        } else {
                            0
                        };
                        conn.client = *client;
                        let t0 = clock.now_ns();
                        let mut reply = conn.request_seq(frame_seq, op.clone())?;
                        while let Reply::Busy { .. } = reply {
                            busy += 1;
                            std::thread::sleep(std::time::Duration::from_micros(100));
                            reply = conn.request_seq(frame_seq, op.clone())?;
                        }
                        latencies.push(clock.now_ns().saturating_sub(t0));
                        sent += 1;
                        if matches!(reply, Reply::Error { .. }) {
                            errors += 1;
                        }
                    }
                }
                Ok((latencies, errors, busy, sent))
            }));
        }
        let mut merged: RunTallies = (Vec::new(), 0, 0, 0);
        for handle in handles {
            match handle.join() {
                Ok(Ok((lat, e, b, s))) => {
                    merged.0.extend(lat);
                    merged.1 += e;
                    merged.2 += b;
                    merged.3 += s;
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => return Err(ServeError::Stopped),
            }
        }
        Ok(merged)
    })?;
    Ok(results)
}

fn percentiles(mut latencies: Vec<u64>) -> (u64, u64, u64) {
    if latencies.is_empty() {
        return (0, 0, 0);
    }
    latencies.sort_unstable();
    let n = latencies.len();
    let p50 = latencies[n / 2];
    let p95 = latencies[(n * 95 / 100).min(n - 1)];
    (p50, p95, latencies[n - 1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::Service;
    use crate::socket::{run_listener, temp_socket_path};

    fn serve_cfg() -> ServeConfig {
        ServeConfig {
            peers: 12,
            budget: 2,
            ..ServeConfig::default()
        }
    }

    fn start_daemon(tag: &str, cfg: &ServeConfig) -> (std::path::PathBuf, Service) {
        let path = temp_socket_path(tag);
        let service = Service::start(cfg.clone()).unwrap();
        let handle = service.handle();
        let listen = path.clone();
        std::thread::spawn(move || {
            let _ = run_listener(&listen, &handle);
        });
        while !path.exists() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        (path, service)
    }

    #[test]
    fn client_streams_are_pure_in_seed_and_client() {
        let cfg = serve_cfg();
        assert_eq!(client_ops(7, 3, 16, &cfg), client_ops(7, 3, 16, &cfg));
        assert_ne!(client_ops(7, 3, 16, &cfg), client_ops(7, 4, 16, &cfg));
        assert_ne!(client_ops(7, 3, 16, &cfg), client_ops(8, 3, 16, &cfg));
    }

    #[test]
    fn serial_frames_number_mutating_ops_per_client() {
        let load = LoadGen {
            clients: 5,
            requests: 40,
            seed: 11,
            serial: true,
            ..LoadGen::default()
        };
        let cfg = serve_cfg();
        let frames = serial_frames(&load, &cfg);
        assert_eq!(frames.len(), 40);
        let mut last: BTreeMap<u64, u64> = BTreeMap::new();
        for f in &frames {
            if f.op.mutates() {
                let prev = last.insert(f.client, f.seq).unwrap_or(0);
                assert_eq!(f.seq, prev + 1, "client {} seq gap", f.client);
            } else {
                assert_eq!(f.seq, 0);
            }
        }
        // Deterministic: same load, same frames.
        assert_eq!(frames, serial_frames(&load, &cfg));
    }

    #[test]
    fn serial_run_verifies_against_the_oracle() {
        let cfg = serve_cfg();
        let (path, service) = start_daemon("loadgen-serial", &cfg);
        let load = LoadGen {
            clients: 20,
            requests: 120,
            seed: 99,
            serial: true,
            ..LoadGen::default()
        };
        let report = run(&load, &cfg, &path).unwrap();
        assert!(
            report.verified,
            "digest {} != oracle {}",
            report.digest, report.reference_digest
        );
        assert_eq!(report.requests, 120);
        // Shut the daemon down.
        let mut c = Client::connect(&path, 0).unwrap();
        let _ = c.request(Op::Shutdown);
        service.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_run_matches_journal_replay() {
        let dir =
            std::env::temp_dir().join(format!("bbc-serve-loadgen-state-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            state_dir: Some(dir.clone()),
            ..serve_cfg()
        };
        let (path, service) = start_daemon("loadgen-conc", &cfg);
        let load = LoadGen {
            clients: 16,
            requests: 96,
            seed: 5,
            connections: 3,
            serial: false,
            verify_state_dir: Some(dir.clone()),
        };
        let report = run(&load, &cfg, &path).unwrap();
        assert!(
            report.verified,
            "live digest {} != journal replay {}",
            report.digest, report.reference_digest
        );
        let mut c = Client::connect(&path, 0).unwrap();
        let _ = c.request(Op::Shutdown);
        service.join().unwrap();
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

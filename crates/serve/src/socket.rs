//! Unix-domain-socket plumbing: a thread-per-connection listener feeding a
//! [`Handle`], and the blocking [`Client`] the tests and load generator
//! speak through.
//!
//! The socket layer is deliberately dumb: it frames lines, decodes
//! requests, and relays replies. All semantics — ordering, duplicate
//! suppression, backpressure — live behind the [`Handle`], so nothing a
//! connection does (malformed frames, oversized lines, abrupt EOF, slow
//! reads) can corrupt or wedge the engine. Reader threads use
//! [`Handle::try_call`], turning a full owner queue into an explicit
//! [`Reply::Busy`] on the wire instead of blocking the connection.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};

use crate::protocol::{
    decode_request, encode_line, read_frame, ErrorCode, Frame, Op, Reply, ReplyFrame, RequestFrame,
    MAX_FRAME,
};
use crate::service::{Dispatch, Handle, ServeError};

/// Binds `path` (removing a stale socket file first) and serves
/// connections until the service shuts down, each on its own thread.
/// Returns when an accept fails after shutdown or on listener error.
///
/// # Errors
///
/// [`ServeError::Io`] when the socket cannot be bound.
pub fn run_listener(path: &Path, handle: &Handle) -> Result<(), ServeError> {
    if path.exists() {
        std::fs::remove_file(path).map_err(|e| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
    }
    let listener = UnixListener::bind(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let conn_handle = handle.clone();
        let spawned = std::thread::Builder::new()
            .name("bbc-serve-conn".to_string())
            .spawn(move || serve_connection(stream, &conn_handle));
        // Spawn failure (thread exhaustion) drops the connection; the
        // listener itself keeps accepting.
        drop(spawned);
    }
    Ok(())
}

/// Serves one connection: read a frame, dispatch, write the reply, repeat.
/// Every failure mode is either a typed error reply or a quiet close —
/// never a panic, never a wedged engine.
fn serve_connection(stream: UnixStream, handle: &Handle) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    loop {
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(_) => return, // connection-level read error
        };
        let reply = match frame {
            Frame::Eof => return,
            Frame::Truncated => {
                // A final line without its newline: answer, then close —
                // the peer is gone or the frame was cut mid-write.
                let _ = write_reply(
                    &mut writer,
                    &ReplyFrame {
                        seq: 0,
                        reply: Reply::Error {
                            code: ErrorCode::Frame,
                            message: "truncated frame (missing trailing newline)".to_string(),
                        },
                    },
                );
                return;
            }
            Frame::Oversized => ReplyFrame {
                seq: 0,
                reply: Reply::Error {
                    code: ErrorCode::Frame,
                    message: format!("frame exceeds {MAX_FRAME} bytes"),
                },
            },
            Frame::Line(bytes) => match decode_request(&bytes) {
                Err((seq, code, message)) => ReplyFrame {
                    seq,
                    reply: Reply::Error { code, message },
                },
                Ok(request) => match handle.try_call(request) {
                    Dispatch::Reply(reply) => reply,
                    Dispatch::Busy { depth } => ReplyFrame {
                        seq: 0,
                        reply: Reply::Busy { depth },
                    },
                    Dispatch::Gone => {
                        let _ = write_reply(
                            &mut writer,
                            &ReplyFrame {
                                seq: 0,
                                reply: Reply::Error {
                                    code: ErrorCode::Unsupported,
                                    message: "service stopped".to_string(),
                                },
                            },
                        );
                        return;
                    }
                },
            },
        };
        let done = matches!(reply.reply, Reply::Bye);
        if write_reply(&mut writer, &reply).is_err() || done {
            return;
        }
    }
}

fn write_reply(writer: &mut UnixStream, reply: &ReplyFrame) -> std::io::Result<()> {
    let line =
        encode_line(reply).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// A blocking protocol client over one connection. Owns a logical client
/// id and auto-increments its mutating-op sequence numbers; reconnecting
/// resumes from the journaled high-water mark via
/// [`Probe::ClientSeq`](crate::protocol::Probe::ClientSeq).
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
    /// The logical client id stamped on every request.
    pub client: u64,
    /// The next sequence number [`Client::request`] will use for a
    /// mutating op.
    pub next_seq: u64,
}

impl Client {
    /// Connects to the daemon's socket as logical client `client`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the socket is absent or refuses.
    pub fn connect(path: &Path, client: u64) -> Result<Self, ServeError> {
        let stream = UnixStream::connect(path).map_err(|e| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let writer = stream.try_clone().map_err(|e| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            client,
            next_seq: 1,
        })
    }

    /// Sends `op` under the next auto-assigned sequence number (consumed
    /// only by mutating ops) and reads one reply.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken connection.
    pub fn request(&mut self, op: Op) -> Result<Reply, ServeError> {
        let seq = self.next_seq;
        let reply = self.request_seq(seq, op.clone())?;
        if op.mutates() && !matches!(reply, Reply::Busy { .. }) {
            self.next_seq = seq + 1;
        }
        Ok(reply)
    }

    /// Sends `op` under an explicit sequence number — how a reconnecting
    /// client resends a possibly-already-journaled op.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken connection.
    pub fn request_seq(&mut self, seq: u64, op: Op) -> Result<Reply, ServeError> {
        let frame = RequestFrame {
            client: self.client,
            seq,
            op,
        };
        let line = encode_line(&frame).map_err(ServeError::Config)?;
        self.send_raw(line.as_bytes())?;
        let ReplyFrame { reply, .. } = self.read_reply()?;
        Ok(reply)
    }

    /// Sends `op`, retrying with exponential backoff while the service
    /// answers [`Reply::Busy`] — the polite reaction to backpressure.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken connection.
    pub fn request_retrying(&mut self, op: Op) -> Result<Reply, ServeError> {
        let mut pause = std::time::Duration::from_micros(50);
        loop {
            match self.request(op.clone())? {
                Reply::Busy { .. } => {
                    std::thread::sleep(pause);
                    pause = (pause * 2).min(std::time::Duration::from_millis(20));
                }
                reply => return Ok(reply),
            }
        }
    }

    /// Writes raw bytes as-is (tests use this to send malformed frames).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on a broken connection.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ServeError> {
        self.writer
            .write_all(bytes)
            .and_then(|()| self.writer.flush())
            .map_err(|e| ServeError::Io {
                path: "socket".to_string(),
                message: e.to_string(),
            })
    }

    /// Reads one reply frame.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on EOF or an undecodable reply.
    pub fn read_reply(&mut self) -> Result<ReplyFrame, ServeError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| ServeError::Io {
                path: "socket".to_string(),
                message: e.to_string(),
            })?;
        if n == 0 {
            return Err(ServeError::Io {
                path: "socket".to_string(),
                message: "connection closed".to_string(),
            });
        }
        serde_json::from_str(&line).map_err(|e| ServeError::Io {
            path: "socket".to_string(),
            message: format!("undecodable reply: {e}"),
        })
    }
}

/// A socket path in the system temp dir, unique per process + tag: what
/// the tests and the loadgen default to.
pub fn temp_socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("bbc-serve-{}-{tag}.sock", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Probe;
    use crate::service::{ServeConfig, Service};

    fn start_daemon(tag: &str) -> (PathBuf, Service, std::thread::JoinHandle<()>) {
        let path = temp_socket_path(tag);
        let service = Service::start(ServeConfig {
            peers: 8,
            budget: 1,
            ..ServeConfig::default()
        })
        .unwrap();
        let handle = service.handle();
        let listen_path = path.clone();
        let listener = std::thread::spawn(move || {
            let _ = run_listener(&listen_path, &handle);
        });
        // Wait for the socket to appear.
        while !path.exists() {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        (path, service, listener)
    }

    #[test]
    fn socket_round_trip_and_clean_shutdown() {
        let (path, service, _listener) = start_daemon("roundtrip");
        let mut client = Client::connect(&path, 1).unwrap();
        assert!(matches!(
            client.request(Op::Settle { max_steps: 10_000 }).unwrap(),
            Reply::Phase { .. }
        ));
        assert!(matches!(
            client.request(Op::Leave { node: 2 }).unwrap(),
            Reply::Ok { .. }
        ));
        // Auto-seq advanced: an explicit replay of seq 2 is suppressed.
        assert!(matches!(
            client.request_seq(2, Op::Leave { node: 3 }).unwrap(),
            Reply::Skipped { last: 2 }
        ));
        assert!(matches!(
            client.request(Op::Query(Probe::Members)).unwrap(),
            Reply::Members { .. }
        ));
        assert!(matches!(client.request(Op::Shutdown).unwrap(), Reply::Bye));
        service.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn two_connections_share_the_engine() {
        let (path, service, _listener) = start_daemon("shared");
        let mut a = Client::connect(&path, 1).unwrap();
        let mut b = Client::connect(&path, 2).unwrap();
        assert!(matches!(
            a.request(Op::Leave { node: 4 }).unwrap(),
            Reply::Ok { .. }
        ));
        // Client b observes a's mutation immediately.
        match b.request(Op::Query(Probe::Members)).unwrap() {
            Reply::Members { nodes } => assert!(!nodes.contains(&4)),
            other => panic!("{other:?}"),
        }
        assert!(matches!(b.request(Op::Shutdown).unwrap(), Reply::Bye));
        service.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }
}

//! Protocol differential suite: whatever interleaving of client request
//! streams the service accepts, the final `state_digest` equals the same
//! sequence replayed single-threaded ([`bbc_serve::oracle_digest`] /
//! journal replay). This is the machine-checked form of the daemon's core
//! claim — one owner thread makes concurrency a question of *order*, never
//! of *outcome*.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use bbc_serve::loadgen::client_ops;
use bbc_serve::protocol::{Op, Probe, Reply, RequestFrame};
use bbc_serve::{oracle_digest, replay_digest, Dispatch, ServeConfig, Service};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn cfg() -> ServeConfig {
    ServeConfig {
        peers: 10,
        budget: 2,
        ..ServeConfig::default()
    }
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bbc-serve-diff-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Merges `k` per-client op streams into one interleaved frame sequence,
/// choosing the next client with `merge_seed`'s rng. With `duplicates`,
/// occasionally resends a client's previous mutating frame verbatim (the
/// exactly-once path must make those no-ops).
fn interleave(
    seed: u64,
    k: u64,
    ops_per_client: u64,
    merge_seed: u64,
    duplicates: bool,
) -> Vec<RequestFrame> {
    let cfg = cfg();
    let mut streams: Vec<(u64, std::vec::IntoIter<Op>)> = (1..=k)
        .map(|c| (c, client_ops(seed, c, ops_per_client, &cfg).into_iter()))
        .collect();
    let mut rng = SmallRng::seed_from_u64(merge_seed);
    let mut seqs: BTreeMap<u64, u64> = BTreeMap::new();
    let mut last_mutating: BTreeMap<u64, RequestFrame> = BTreeMap::new();
    let mut frames = Vec::new();
    while !streams.is_empty() {
        let pick = rng.gen_range(0..streams.len() as u64) as usize;
        let (client, stream) = &mut streams[pick];
        let client = *client;
        match stream.next() {
            None => {
                streams.swap_remove(pick);
            }
            Some(op) => {
                if duplicates && rng.gen_range(0u32..8) == 0 {
                    if let Some(dup) = last_mutating.get(&client) {
                        frames.push(dup.clone());
                    }
                }
                let seq = if op.mutates() {
                    let next = seqs.get(&client).copied().unwrap_or(0) + 1;
                    seqs.insert(client, next);
                    next
                } else {
                    0
                };
                let frame = RequestFrame { client, seq, op };
                if frame.op.mutates() {
                    last_mutating.insert(client, frame.clone());
                }
                frames.push(frame);
            }
        }
    }
    frames
}

fn service_digest_of(frames: &[RequestFrame]) -> String {
    let service = Service::start(cfg()).expect("service boots");
    let handle = service.handle();
    let mut skipped = 0u64;
    for frame in frames {
        match handle.call(frame.clone()) {
            Dispatch::Reply(reply) => {
                if matches!(reply.reply, Reply::Skipped { .. }) {
                    skipped += 1;
                }
            }
            other => panic!("service dropped a request: {other:?}"),
        }
    }
    // Every duplicate the generator injected must have been suppressed.
    let mutating: Vec<(u64, u64)> = frames
        .iter()
        .filter(|f| f.op.mutates())
        .map(|f| (f.client, f.seq))
        .collect();
    let distinct = mutating
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
        .len() as u64;
    assert_eq!(
        skipped,
        mutating.len() as u64 - distinct,
        "duplicate frames answered Skipped"
    );
    let digest = match handle.call(RequestFrame {
        client: 0,
        seq: 0,
        op: Op::Query(Probe::Digest),
    }) {
        Dispatch::Reply(r) => match r.reply {
            Reply::Digest { digest } => digest,
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    };
    drop(handle);
    match handle_shutdown(&service) {
        Ok(()) => {}
        Err(e) => panic!("{e}"),
    }
    digest
}

fn handle_shutdown(service: &Service) -> Result<(), String> {
    match service.handle().call(RequestFrame {
        client: 0,
        seq: 0,
        op: Op::Shutdown,
    }) {
        Dispatch::Reply(_) => Ok(()),
        other => Err(format!("{other:?}")),
    }
}

proptest! {
    /// Any submitted interleaving, run through the real queue + owner
    /// thread, lands on the oracle's digest for that exact sequence.
    #[test]
    fn accepted_order_replays_to_the_same_digest(
        seed in any::<u64>(),
        k in 2u64..6,
        merge_seed in any::<u64>(),
    ) {
        let frames = interleave(seed, k, 8, merge_seed, false);
        prop_assert_eq!(service_digest_of(&frames), oracle_digest(&cfg(), &frames).expect("valid cfg"));
    }

    /// Same property with duplicate mutating frames injected: the
    /// sequence-number suppression keeps the service and the oracle in
    /// byte-for-byte agreement.
    #[test]
    fn duplicates_never_diverge_from_the_oracle(
        seed in any::<u64>(),
        k in 2u64..5,
        merge_seed in any::<u64>(),
    ) {
        let frames = interleave(seed, k, 6, merge_seed, true);
        prop_assert_eq!(service_digest_of(&frames), oracle_digest(&cfg(), &frames).expect("valid cfg"));
    }

    /// Metrics are observational only: a [`Probe::Metrics`] wedged after
    /// EVERY frame of a k-client interleaving leaves the digest exactly
    /// where the metrics-free oracle replay of the same mutating sequence
    /// lands. A metrics read that leaked into engine state, the journal,
    /// or the scheduler phase would diverge here.
    #[test]
    fn metrics_probes_never_perturb_the_digest(
        seed in any::<u64>(),
        k in 2u64..5,
        merge_seed in any::<u64>(),
    ) {
        let frames = interleave(seed, k, 6, merge_seed, false);
        let mut with_metrics = Vec::with_capacity(frames.len() * 2);
        for frame in &frames {
            with_metrics.push(frame.clone());
            with_metrics.push(RequestFrame {
                client: 0,
                seq: 0,
                op: Op::Query(Probe::Metrics),
            });
        }
        prop_assert_eq!(
            service_digest_of(&with_metrics),
            oracle_digest(&cfg(), &frames).expect("valid cfg")
        );
    }

    /// Two different interleavings of the same client streams generally
    /// reach different states (churn ops do not commute) — but each one
    /// matches ITS OWN single-threaded replay. Checking both halves guards
    /// against a digest that ignores order entirely.
    #[test]
    fn each_interleaving_matches_its_own_replay(
        seed in any::<u64>(),
        merge_a in any::<u64>(),
        merge_b in any::<u64>(),
    ) {
        let a = interleave(seed, 4, 8, merge_a, false);
        let b = interleave(seed, 4, 8, merge_b, false);
        prop_assert_eq!(service_digest_of(&a), oracle_digest(&cfg(), &a).expect("valid cfg"));
        prop_assert_eq!(service_digest_of(&b), oracle_digest(&cfg(), &b).expect("valid cfg"));
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(8))]

    /// True concurrency: k threads blast their streams through cloned
    /// handles with no coordination, so the accepted order is whatever the
    /// queue serialized. The journal captures that order; replaying it
    /// single-threaded reproduces the live digest exactly.
    #[test]
    fn concurrent_submission_matches_journal_replay(
        seed in any::<u64>(),
        k in 2u64..6,
    ) {
        let dir = fresh_dir("conc");
        let cfg = ServeConfig { state_dir: Some(dir.clone()), ..cfg() };
        let service = Service::start(cfg.clone()).expect("service boots");
        std::thread::scope(|scope| {
            for client in 1..=k {
                let handle = service.handle();
                let stream_cfg = cfg.clone();
                scope.spawn(move || {
                    let mut seq = 0u64;
                    for op in client_ops(seed, client, 10, &stream_cfg) {
                        let s = if op.mutates() { seq += 1; seq } else { 0 };
                        let frame = RequestFrame { client, seq: s, op };
                        assert!(
                            matches!(handle.call(frame), Dispatch::Reply(_)),
                            "request dropped"
                        );
                    }
                });
            }
        });
        let live = match service.handle().call(RequestFrame {
            client: 0,
            seq: 0,
            op: Op::Query(Probe::Digest),
        }) {
            Dispatch::Reply(r) => match r.reply {
                Reply::Digest { digest } => digest,
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        };
        handle_shutdown(&service).expect("shutdown");
        let (replayed, _) = replay_digest(&cfg, &dir).expect("replay");
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(live, replayed);
    }
}

//! Crash-recovery suite: SIGKILL the daemon mid-load, restart it with
//! `--restore`, resume the client streams from the journaled sequence
//! high-water marks, and require the final `state_digest` to match an
//! uninterrupted daemon that processed the identical request sequence —
//! byte for byte.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

use bbc_serve::protocol::{Op, Probe, Reply};
use bbc_serve::socket::Client;
use bbc_serve::RequestFrame;

const PEERS: usize = 16;
const BUDGET: u64 = 2;

fn unique_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "bbc-serve-kill-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ))
}

fn spawn_daemon(socket: &Path, state_dir: Option<&Path>, restore: bool) -> Child {
    spawn_daemon_metrics(socket, state_dir, restore, None)
}

fn spawn_daemon_metrics(
    socket: &Path,
    state_dir: Option<&Path>,
    restore: bool,
    metrics: Option<(&Path, u64)>,
) -> Child {
    // A SIGKILLed daemon leaves its socket file behind; unlink it so the
    // existence poll below sees the NEW daemon's bind, not the corpse.
    let _ = std::fs::remove_file(socket);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_bbc-serve"));
    cmd.arg("--socket")
        .arg(socket)
        .arg("--peers")
        .arg(PEERS.to_string())
        .arg("--budget")
        .arg(BUDGET.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    if let Some(dir) = state_dir {
        cmd.arg("--state-dir").arg(dir);
    }
    if restore {
        cmd.arg("--restore");
    }
    if let Some((file, every)) = metrics {
        cmd.arg("--metrics-file")
            .arg(file)
            .arg("--metrics-every")
            .arg(every.to_string());
    }
    let mut child = cmd.spawn().expect("daemon spawns");
    // Wait for the socket (the daemon unlinks any stale file first, so
    // existence means the fresh listener is up).
    for _ in 0..5000 {
        if socket.exists() {
            return child;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let _ = child.kill();
    let _ = child.wait();
    panic!("daemon never bound {}", socket.display());
}

/// The deterministic workload: a mix of churn, settling, and a mid-run
/// snapshot, as (client, op) pairs. Sequence numbers are assigned per
/// client at send time (mutating ops only), so the same list drives both
/// the interrupted and the uninterrupted runs.
fn workload() -> Vec<(u64, Op)> {
    let mut ops = vec![
        (1, Op::Settle { max_steps: 50_000 }),
        (1, Op::Leave { node: 3 }),
        (2, Op::Leave { node: 7 }),
        (1, Op::Step { steps: 200 }),
        (
            2,
            Op::Join {
                node: 3,
                strategy: vec![0, 5],
            },
        ),
        (
            1,
            Op::Shock {
                node: 0,
                strategy: vec![1],
            },
        ),
        (2, Op::Snapshot),
        (1, Op::Leave { node: 11 }),
        (2, Op::Step { steps: 150 }),
    ];
    // A churny tail so the post-kill suffix is non-trivial.
    for i in 0..12u32 {
        let node = (i * 5 + 2) % PEERS as u32;
        ops.push((
            u64::from(i % 3) + 1,
            if i % 2 == 0 {
                Op::Leave { node }
            } else {
                Op::Join {
                    node,
                    strategy: vec![(node + 1) % PEERS as u32],
                }
            },
        ));
        if i % 4 == 3 {
            ops.push((1, Op::Settle { max_steps: 20_000 }));
        }
    }
    ops
}

/// Per-client sequence assignment, mirroring the service's bookkeeping.
struct SeqTracker(std::collections::BTreeMap<u64, u64>);

impl SeqTracker {
    fn new() -> Self {
        Self(std::collections::BTreeMap::new())
    }

    fn assign(&mut self, client: u64, op: &Op) -> u64 {
        if op.mutates() {
            let next = self.0.get(&client).copied().unwrap_or(0) + 1;
            self.0.insert(client, next);
            next
        } else {
            0
        }
    }
}

/// Connects with a short retry loop: the socket file appears at `bind()`,
/// a moment before `listen()`, so a fast client under load can catch
/// ECONNREFUSED on a daemon that is in fact coming up.
fn connect(socket: &Path) -> Client {
    for _ in 0..5000 {
        match Client::connect(socket, 0) {
            Ok(conn) => return conn,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(2)),
        }
    }
    panic!("could not connect to {}", socket.display());
}

fn send(conn: &mut Client, client: u64, seq: u64, op: Op) -> Reply {
    conn.client = client;
    conn.request_seq(seq, op).expect("request round-trips")
}

/// Shutdown acks race the process exit, so they are best-effort.
fn send_shutdown(conn: &mut Client) {
    conn.client = 0;
    let _ = conn.request_seq(0, Op::Shutdown);
}

fn final_digest(conn: &mut Client) -> String {
    match send(conn, 0, 0, Op::Query(Probe::Digest)) {
        Reply::Digest { digest } => digest,
        other => panic!("{other:?}"),
    }
}

#[test]
fn sigkill_restore_resumes_to_the_uninterrupted_digest() {
    let ops = workload();
    let kill_at = ops.len() / 2;

    // --- Reference run: one daemon, never interrupted. ---
    let ref_socket = unique_path("ref.sock");
    let ref_dir = unique_path("ref-state");
    let mut ref_daemon = spawn_daemon(&ref_socket, Some(&ref_dir), false);
    let mut conn = connect(&ref_socket);
    let mut seqs = SeqTracker::new();
    for (client, op) in &ops {
        let seq = seqs.assign(*client, op);
        let reply = send(&mut conn, *client, seq, op.clone());
        assert!(
            !matches!(reply, Reply::Busy { .. }),
            "serial run never sees backpressure"
        );
    }
    let want = final_digest(&mut conn);
    send_shutdown(&mut conn);
    let _ = ref_daemon.wait();

    // --- Interrupted run: SIGKILL halfway, restart, resume. ---
    let socket = unique_path("kill.sock");
    let dir = unique_path("kill-state");
    let mut daemon = spawn_daemon(&socket, Some(&dir), false);
    let mut conn = connect(&socket);
    let mut seqs = SeqTracker::new();
    for (client, op) in &ops[..kill_at] {
        let seq = seqs.assign(*client, op);
        send(&mut conn, *client, seq, op.clone());
    }
    // Fire one more mutating request WITHOUT reading the reply, then
    // SIGKILL: whether that op was journaled is genuinely uncertain, which
    // is exactly the case the resume protocol must absorb.
    let (inflight_client, inflight_op) = &ops[kill_at];
    let inflight_seq = seqs.assign(*inflight_client, inflight_op);
    let frame = RequestFrame {
        client: *inflight_client,
        seq: inflight_seq,
        op: inflight_op.clone(),
    };
    let line = bbc_serve::protocol::encode_line(&frame).expect("encodes");
    conn.send_raw(line.as_bytes()).expect("raw send");
    daemon.kill().expect("SIGKILL delivered"); // Child::kill is SIGKILL on unix
    let _ = daemon.wait();

    // Restart from the journal.
    let mut daemon = spawn_daemon(&socket, Some(&dir), true);
    let mut conn = connect(&socket);

    // ClientSeq resume: the journaled high-water mark for the in-flight
    // client is either just-before or just-including the in-flight op.
    let journaled = match send(
        &mut conn,
        0,
        0,
        Op::Query(Probe::ClientSeq {
            client: *inflight_client,
        }),
    ) {
        Reply::Seq { seq, .. } => seq,
        other => panic!("{other:?}"),
    };
    assert!(
        journaled == inflight_seq || journaled + 1 == inflight_seq,
        "journaled {journaled}, in-flight {inflight_seq}"
    );

    // Resend the in-flight op (duplicate-suppressed if it made the
    // journal), then play the untouched suffix.
    let reply = send(
        &mut conn,
        *inflight_client,
        inflight_seq,
        inflight_op.clone(),
    );
    if journaled == inflight_seq {
        assert!(
            matches!(reply, Reply::Skipped { last } if last == inflight_seq),
            "already-journaled resend must be suppressed, got {reply:?}"
        );
    }
    for (client, op) in &ops[kill_at + 1..] {
        let seq = seqs.assign(*client, op);
        send(&mut conn, *client, seq, op.clone());
    }

    let got = final_digest(&mut conn);
    assert_eq!(
        got, want,
        "restored run diverged from the uninterrupted reference"
    );

    send_shutdown(&mut conn);
    let _ = daemon.wait();
    for p in [&ref_socket, &socket] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&ref_dir, &dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn metrics_on_off_and_sampled_runs_share_one_digest_across_sigkill() {
    // The observational-only invariant under crash recovery: the same
    // workload through (a) a bare daemon, (b) a daemon dumping Prometheus
    // text every 3 requests with metrics probes interleaved, both SIGKILLed
    // and restored mid-run, must land on identical digests.
    let ops = workload();
    let kill_at = ops.len() / 2;

    // --- Reference: metrics off, uninterrupted. ---
    let ref_socket = unique_path("mref.sock");
    let ref_dir = unique_path("mref-state");
    let mut ref_daemon = spawn_daemon(&ref_socket, Some(&ref_dir), false);
    let mut conn = connect(&ref_socket);
    let mut seqs = SeqTracker::new();
    for (client, op) in &ops {
        let seq = seqs.assign(*client, op);
        send(&mut conn, *client, seq, op.clone());
    }
    let want = final_digest(&mut conn);
    send_shutdown(&mut conn);
    let _ = ref_daemon.wait();

    // --- Metrics on (sampled dump), metrics probes interleaved, SIGKILL
    // halfway, restore with metrics still on. ---
    let socket = unique_path("mkill.sock");
    let dir = unique_path("mkill-state");
    let prom = unique_path("mkill.prom");
    let mut daemon = spawn_daemon_metrics(&socket, Some(&dir), false, Some((&prom, 3)));
    let mut conn = connect(&socket);
    let mut seqs = SeqTracker::new();
    for (client, op) in &ops[..kill_at] {
        let seq = seqs.assign(*client, op);
        send(&mut conn, *client, seq, op.clone());
        // A metrics read between every op: must be pure.
        assert!(matches!(
            send(&mut conn, 0, 0, Op::Query(Probe::Metrics)),
            Reply::Metrics { .. }
        ));
    }
    daemon.kill().expect("SIGKILL delivered");
    let _ = daemon.wait();

    let mut daemon = spawn_daemon_metrics(&socket, Some(&dir), true, Some((&prom, 3)));
    let mut conn = connect(&socket);
    for (client, op) in &ops[kill_at..] {
        let seq = seqs.assign(*client, op);
        send(&mut conn, *client, seq, op.clone());
    }
    let got = final_digest(&mut conn);
    assert_eq!(got, want, "metrics-on run diverged from the bare reference");

    // The sampled dump fired and rendered Prometheus text.
    let text = std::fs::read_to_string(&prom).expect("metrics file written");
    assert!(text.contains("# TYPE"), "not Prometheus text: {text:?}");
    assert!(text.contains("serve_requests"), "missing counter: {text:?}");

    send_shutdown(&mut conn);
    let _ = daemon.wait();
    for p in [&ref_socket, &socket, &prom] {
        let _ = std::fs::remove_file(p);
    }
    for d in [&ref_dir, &dir] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn second_restore_after_clean_shutdown_is_stable() {
    // Restore is not a one-shot: kill → restore → shutdown → restore again
    // must keep producing the same digest (journal generations chain).
    let socket = unique_path("stable.sock");
    let dir = unique_path("stable-state");
    let mut daemon = spawn_daemon(&socket, Some(&dir), false);
    let mut conn = connect(&socket);
    let mut seqs = SeqTracker::new();
    for (client, op) in workload() {
        let seq = seqs.assign(client, &op);
        send(&mut conn, client, seq, op);
    }
    let want = final_digest(&mut conn);
    // Hard-kill even though all requests are acked: the journal is flushed
    // per record, so nothing is lost.
    daemon.kill().expect("SIGKILL delivered");
    let _ = daemon.wait();

    for round in 0..2 {
        let mut daemon = spawn_daemon(&socket, Some(&dir), true);
        let mut conn = connect(&socket);
        let got = final_digest(&mut conn);
        assert_eq!(got, want, "restore round {round} diverged");
        if round == 0 {
            daemon.kill().expect("SIGKILL delivered");
            let _ = daemon.wait();
        } else {
            send_shutdown(&mut conn);
            let _ = daemon.wait();
        }
    }
    let _ = std::fs::remove_file(&socket);
    let _ = std::fs::remove_dir_all(&dir);
}

//! Malformed-input corpus, driven over a real Unix socket: truncated
//! lines, invalid JSON, unknown ops, dead/out-of-range node ids, empty
//! lines, binary garbage, and oversized frames. The contract under test:
//! **every** malformed input produces a typed [`Reply::Error`] — the daemon
//! never panics, never wedges, and keeps serving valid traffic on the same
//! connection afterwards.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

use bbc_serve::protocol::{ErrorCode, Op, Probe, Reply, ReplyFrame, MAX_FRAME};
use bbc_serve::socket::{run_listener, temp_socket_path, Client};
use bbc_serve::{oracle_digest, RequestFrame, ServeConfig, Service};

fn cfg() -> ServeConfig {
    ServeConfig {
        peers: 8,
        budget: 1,
        ..ServeConfig::default()
    }
}

fn start_daemon(tag: &str) -> (PathBuf, Service) {
    let path = temp_socket_path(tag);
    let service = Service::start(cfg()).expect("service boots");
    let handle = service.handle();
    let listen = path.clone();
    std::thread::spawn(move || {
        let _ = run_listener(&listen, &handle);
    });
    while !path.exists() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    (path, service)
}

fn shutdown(path: &PathBuf, service: Service) {
    let mut c = Client::connect(path, 0).expect("connect for shutdown");
    let _ = c.request(Op::Shutdown);
    service.join().expect("clean join");
    let _ = std::fs::remove_file(path);
}

#[test]
fn malformed_corpus_yields_typed_errors_and_keeps_the_connection() {
    let (path, service) = start_daemon("malformed");

    // Each corpus entry: (payload, expected error code, must echo seq).
    let corpus: Vec<(Vec<u8>, ErrorCode, u64)> = vec![
        // Invalid JSON.
        (
            b"{\"client\":1,\"seq\":1,\"op\":".to_vec(),
            ErrorCode::Json,
            0,
        ),
        // Binary garbage (invalid UTF-8).
        (vec![0xFF, 0xFE, 0x00, 0x9B], ErrorCode::Json, 0),
        // Valid JSON, wrong shape.
        (b"[1,2,3]".to_vec(), ErrorCode::Json, 0),
        // Unknown op: envelope decodes, so the reply echoes seq 9.
        (
            br#"{"client":1,"seq":9,"op":{"Frobnicate":{"x":1}}}"#.to_vec(),
            ErrorCode::Request,
            9,
        ),
        // Unknown probe string.
        (
            br#"{"client":1,"seq":4,"op":{"Query":"Nonsense"}}"#.to_vec(),
            ErrorCode::Request,
            4,
        ),
        // Metrics is a unit probe: payload-bearing shapes are misshapen
        // requests, never panics.
        (
            br#"{"client":1,"seq":6,"op":{"Query":{"Metrics":{}}}}"#.to_vec(),
            ErrorCode::Request,
            6,
        ),
        (
            br#"{"client":1,"seq":8,"op":{"Query":{"Metrics":[1,2]}}}"#.to_vec(),
            ErrorCode::Request,
            8,
        ),
        // Empty line.
        (Vec::new(), ErrorCode::Json, 0),
    ];

    let mut stream = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for (payload, want_code, want_seq) in corpus {
        let mut framed = payload.clone();
        framed.push(b'\n');
        stream.write_all(&framed).expect("write");
        stream.flush().expect("flush");
        let mut line = String::new();
        reader.read_line(&mut line).expect("read reply");
        let reply: ReplyFrame = serde_json::from_str(&line).expect("reply decodes");
        assert_eq!(reply.seq, want_seq, "for payload {payload:?}");
        match reply.reply {
            Reply::Error { code, .. } => {
                assert_eq!(code, want_code, "for payload {payload:?}")
            }
            other => panic!("payload {payload:?} got non-error reply {other:?}"),
        }
        // The connection survives every malformed frame: a valid request
        // still round-trips.
        let probe = br#"{"client":7,"seq":0,"op":{"Query":"SocialCost"}}"#;
        stream.write_all(probe).expect("write probe");
        stream.write_all(b"\n").expect("newline");
        stream.flush().expect("flush");
        let mut ok_line = String::new();
        reader.read_line(&mut ok_line).expect("read probe reply");
        let ok: ReplyFrame = serde_json::from_str(&ok_line).expect("probe reply decodes");
        assert!(
            matches!(ok.reply, Reply::SocialCost { .. }),
            "connection wedged after {payload:?}: {ok:?}"
        );
    }

    shutdown(&path, service);
}

#[test]
fn metrics_probe_returns_a_versioned_document_without_touching_state() {
    let (path, service) = start_daemon("metrics");
    let mut client = Client::connect(&path, 1).expect("connect");

    // Generate some traffic so the histograms have samples.
    for op in [
        Op::Leave { node: 2 },
        Op::Settle { max_steps: 10_000 },
        Op::Advise { node: 0 },
    ] {
        let _ = client.request(op).expect("request");
    }
    let digest_before = match client.request(Op::Query(Probe::Digest)).expect("digest") {
        Reply::Digest { digest } => digest,
        other => panic!("{other:?}"),
    };

    let metrics = match client.request(Op::Query(Probe::Metrics)).expect("metrics") {
        Reply::Metrics { metrics } => metrics,
        other => panic!("metrics probe got {other:?}"),
    };
    let doc = metrics.as_map().expect("metrics document is an object");
    match serde::map_get(doc, "version") {
        Some(serde_json::Value::U64(v)) => assert_eq!(*v, bbc_obs::METRICS_SCHEMA_VERSION),
        other => panic!("missing/mis-typed version field: {other:?}"),
    }
    let counters = serde::map_get(doc, "counters")
        .and_then(|v| v.as_map())
        .expect("counters section");
    match serde::map_get(counters, "serve/requests") {
        Some(serde_json::Value::U64(n)) => assert!(*n >= 4, "saw {n} requests"),
        other => panic!("serve/requests counter missing: {other:?}"),
    }
    assert!(
        serde::map_get(counters, "engine/searches_run").is_some(),
        "engine counters folded in"
    );
    let histograms = serde::map_get(doc, "histograms")
        .and_then(|v| v.as_map())
        .expect("histograms section");
    assert!(
        histograms
            .iter()
            .any(|(k, _)| k == "serve/op_latency/settle"),
        "settle latency histogram present, got {:?}",
        histograms.iter().map(|(k, _)| k).collect::<Vec<_>>()
    );

    // Observational only: reading metrics (twice) moves no state.
    let _ = client.request(Op::Query(Probe::Metrics)).expect("again");
    let digest_after = match client.request(Op::Query(Probe::Digest)).expect("digest") {
        Reply::Digest { digest } => digest,
        other => panic!("{other:?}"),
    };
    assert_eq!(digest_before, digest_after, "metrics probes must be pure");
    shutdown(&path, service);
}

#[test]
fn dead_and_out_of_range_nodes_are_typed_game_errors() {
    let (path, service) = start_daemon("deadnode");
    let mut client = Client::connect(&path, 1).expect("connect");

    // Kill node 3, then poke the corpse from every angle.
    assert!(matches!(
        client.request(Op::Leave { node: 3 }).expect("leave"),
        Reply::Ok { .. }
    ));
    for (op, want) in [
        (Op::Leave { node: 3 }, ErrorCode::NotLive),
        (Op::Advise { node: 3 }, ErrorCode::NotLive),
        (Op::Query(Probe::NodeCost { node: 3 }), ErrorCode::NotLive),
        (
            Op::Shock {
                node: 3,
                strategy: vec![0],
            },
            ErrorCode::NotLive,
        ),
        // Joining an already-live node is the mirror error.
        (
            Op::Join {
                node: 0,
                strategy: vec![1],
            },
            ErrorCode::NotLive,
        ),
        // Out-of-range ids never index anything.
        (Op::Leave { node: 1_000_000 }, ErrorCode::Game),
        (Op::Advise { node: 1_000_000 }, ErrorCode::Game),
        (
            Op::Query(Probe::NodeCost { node: 1_000_000 }),
            ErrorCode::Game,
        ),
        // Joining a dead node pointing at a dead target.
        (
            Op::Join {
                node: 3,
                strategy: vec![3],
            },
            ErrorCode::Game,
        ),
    ] {
        match client.request(op.clone()).expect("request") {
            Reply::Error { code, .. } => assert_eq!(code, want, "for {op:?}"),
            other => panic!("{op:?} got {other:?}"),
        }
    }

    // The errored ops were all accepted (journaled order); the digest still
    // matches a single-threaded replay including them.
    let sent: Vec<RequestFrame> = vec![
        RequestFrame {
            client: 1,
            seq: 1,
            op: Op::Leave { node: 3 },
        },
        RequestFrame {
            client: 1,
            seq: 2,
            op: Op::Leave { node: 3 },
        },
        RequestFrame {
            client: 1,
            seq: 3,
            op: Op::Shock {
                node: 3,
                strategy: vec![0],
            },
        },
        RequestFrame {
            client: 1,
            seq: 4,
            op: Op::Join {
                node: 0,
                strategy: vec![1],
            },
        },
        RequestFrame {
            client: 1,
            seq: 5,
            op: Op::Leave { node: 1_000_000 },
        },
        RequestFrame {
            client: 1,
            seq: 6,
            op: Op::Join {
                node: 3,
                strategy: vec![3],
            },
        },
    ];
    match client.request(Op::Query(Probe::Digest)).expect("digest") {
        Reply::Digest { digest } => {
            assert_eq!(digest, oracle_digest(&cfg(), &sent).expect("oracle"));
        }
        other => panic!("{other:?}"),
    }
    shutdown(&path, service);
}

#[test]
fn oversized_frames_are_rejected_and_drained() {
    let (path, service) = start_daemon("oversized");
    let mut stream = UnixStream::connect(&path).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));

    // A line past the frame cap: typed Frame error, and the rest of the
    // oversized line is drained so the connection stays aligned.
    let huge = vec![b'x'; MAX_FRAME + 512];
    stream.write_all(&huge).expect("write huge");
    stream.write_all(b"\n").expect("newline");
    stream.flush().expect("flush");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    let reply: ReplyFrame = serde_json::from_str(&line).expect("reply decodes");
    match reply.reply {
        Reply::Error { code, .. } => assert_eq!(code, ErrorCode::Frame),
        other => panic!("oversized frame got {other:?}"),
    }

    // Alignment check: the next (valid) request is parsed from a clean
    // line boundary, not from the middle of the drained line.
    stream
        .write_all(br#"{"client":1,"seq":1,"op":{"Query":"Members"}}"#)
        .expect("write");
    stream.write_all(b"\n").expect("newline");
    stream.flush().expect("flush");
    let mut ok_line = String::new();
    reader.read_line(&mut ok_line).expect("read reply");
    let ok: ReplyFrame = serde_json::from_str(&ok_line).expect("reply decodes");
    assert!(matches!(ok.reply, Reply::Members { .. }), "{ok:?}");

    shutdown(&path, service);
}

#[test]
fn truncated_final_line_gets_an_error_reply_then_close() {
    let (path, service) = start_daemon("truncated");
    let mut stream = UnixStream::connect(&path).expect("connect");
    // A frame cut off mid-JSON with no trailing newline, then half-close:
    // the daemon answers a typed Frame error and closes its side.
    stream
        .write_all(br#"{"client":1,"seq":1,"op":{"Lea"#)
        .expect("write");
    stream.flush().expect("flush");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    let reply: ReplyFrame = serde_json::from_str(&line).expect("reply decodes");
    match reply.reply {
        Reply::Error { code, message } => {
            assert_eq!(code, ErrorCode::Frame);
            assert!(message.contains("truncated"), "{message}");
        }
        other => panic!("truncated frame got {other:?}"),
    }
    // EOF follows — the connection is closed, not wedged.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).expect("eof"), 0);

    // And the daemon itself is still alive for new connections.
    let mut c = Client::connect(&path, 2).expect("reconnect");
    assert!(matches!(
        c.request(Op::Query(Probe::SocialCost)).expect("probe"),
        Reply::SocialCost { .. }
    ));
    shutdown(&path, service);
}

#[test]
fn abrupt_disconnects_leave_the_daemon_serving() {
    let (path, service) = start_daemon("abrupt");
    // Connect-and-slam repeatedly, including mid-request.
    for i in 0..10 {
        let mut stream = UnixStream::connect(&path).expect("connect");
        if i % 2 == 0 {
            let _ = stream.write_all(br#"{"client":1,"#);
        }
        drop(stream); // no shutdown handshake at all
    }
    let mut c = Client::connect(&path, 1).expect("connect");
    assert!(matches!(
        c.request(Op::Query(Probe::Members)).expect("probe"),
        Reply::Members { .. }
    ));
    shutdown(&path, service);
}

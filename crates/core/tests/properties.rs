//! Property-based tests for the BBC core: the deviation oracle, best
//! response, stability, and dynamics invariants.

use bbc_core::{
    best_response, BestResponseOptions, Configuration, CostModel, Evaluator, GameSpec, NodeId,
    StabilityChecker, Walk, WalkOutcome,
};
use proptest::prelude::*;

/// Arbitrary uniform game plus a seeded random configuration.
fn arb_uniform_instance() -> impl Strategy<Value = (GameSpec, Configuration)> {
    (2usize..=9, 1u64..=3, any::<u64>()).prop_map(|(n, k, seed)| {
        let spec = GameSpec::uniform(n, k);
        let cfg = Configuration::random(&spec, seed);
        (spec, cfg)
    })
}

/// Arbitrary non-uniform game (weights/lengths/costs in small ranges) plus a
/// random configuration.
fn arb_nonuniform_instance() -> impl Strategy<Value = (GameSpec, Configuration)> {
    (2usize..=7, any::<u64>()).prop_flat_map(|(n, seed)| {
        (
            proptest::collection::vec(0u64..=3, n * n),
            proptest::collection::vec(1u64..=5, n * n),
            proptest::collection::vec(1u64..=3, n * n),
            proptest::collection::vec(0u64..=4, n),
            proptest::bool::ANY,
        )
            .prop_map(move |(ws, ls, cs, bs, use_max)| {
                let mut b = GameSpec::builder(n);
                for u in 0..n {
                    for v in 0..n {
                        b = b
                            .weight(u, v, ws[u * n + v])
                            .link_length(u, v, ls[u * n + v])
                            .link_cost(u, v, cs[u * n + v]);
                    }
                    b = b.budget(u, bs[u]);
                }
                if use_max {
                    b = b.cost_model(CostModel::MaxDistance);
                }
                let spec = b.build().expect("valid spec");
                let cfg = Configuration::random(&spec, seed);
                (spec, cfg)
            })
    })
}

/// Brute-force best-response cost via full re-evaluation of every feasible
/// subset.
fn brute_force_best(spec: &GameSpec, config: &Configuration, u: NodeId) -> u64 {
    let mut eval = Evaluator::new(spec);
    let pool = spec.affordable_targets(u);
    assert!(pool.len() <= 16, "brute force capped at 16 candidates");
    let mut best = u64::MAX;
    for mask in 0u32..(1 << pool.len()) {
        let targets: Vec<NodeId> = pool
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &t)| t)
            .collect();
        if spec.validate_strategy(u, &targets).is_err() {
            continue;
        }
        let mut trial = config.clone();
        trial.set_strategy(spec, u, targets).unwrap();
        best = best.min(eval.node_cost(&trial, u));
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn oracle_prices_match_full_evaluation((spec, cfg) in arb_nonuniform_instance()) {
        let mut eval = Evaluator::new(&spec);
        for u in NodeId::all(spec.node_count()) {
            let oracle = best_response::DeviationOracle::build(&spec, &cfg, u);
            prop_assert_eq!(oracle.strategy_cost(cfg.strategy(u)), eval.node_cost(&cfg, u));
        }
    }

    #[test]
    fn exact_best_response_matches_brute_force((spec, cfg) in arb_nonuniform_instance()) {
        let opts = BestResponseOptions::default();
        for u in NodeId::all(spec.node_count()) {
            let out = best_response::exact(&spec, &cfg, u, &opts).unwrap();
            prop_assert!(out.optimal);
            prop_assert_eq!(out.best_cost, brute_force_best(&spec, &cfg, u));
            prop_assert!(out.best_cost <= out.current_cost,
                "best response can always keep the current strategy");
        }
    }

    #[test]
    fn best_response_is_idempotent((spec, cfg) in arb_uniform_instance()) {
        let opts = BestResponseOptions::default();
        for u in NodeId::all(spec.node_count()) {
            let out = best_response::exact(&spec, &cfg, u, &opts).unwrap();
            let mut moved = cfg.clone();
            moved.set_strategy(&spec, u, out.best_strategy.clone()).unwrap();
            let again = best_response::exact(&spec, &moved, u, &opts).unwrap();
            prop_assert_eq!(again.best_cost, out.best_cost);
            prop_assert!(!again.improves());
        }
    }

    #[test]
    fn greedy_is_sound((spec, cfg) in arb_nonuniform_instance()) {
        for u in NodeId::all(spec.node_count()) {
            let out = best_response::greedy(&spec, &cfg, u);
            prop_assert!(out.best_cost <= out.current_cost);
            prop_assert!(spec.validate_strategy(u, &out.best_strategy).is_ok());
            // Reported cost is real: applying the strategy reproduces it.
            let mut moved = cfg.clone();
            moved.set_strategy(&spec, u, out.best_strategy.clone()).unwrap();
            let mut eval = Evaluator::new(&spec);
            prop_assert_eq!(eval.node_cost(&moved, u), out.best_cost);
        }
    }

    #[test]
    fn stability_agrees_with_per_node_brute_force((spec, cfg) in arb_nonuniform_instance()) {
        let stable = StabilityChecker::new(&spec).is_stable(&cfg).unwrap();
        let mut eval = Evaluator::new(&spec);
        let brute_stable = NodeId::all(spec.node_count()).all(|u| {
            brute_force_best(&spec, &cfg, u) >= eval.node_cost(&cfg, u)
        });
        prop_assert_eq!(stable, brute_stable);
    }

    #[test]
    fn walk_fixpoints_are_equilibria((spec, cfg) in arb_uniform_instance()) {
        let mut walk = Walk::new(&spec, cfg);
        match walk.run(50_000).unwrap() {
            WalkOutcome::Equilibrium { .. } => {
                prop_assert!(StabilityChecker::new(&spec).is_stable(walk.config()).unwrap());
            }
            WalkOutcome::Cycle { period, .. } => {
                prop_assert!(period > 0);
            }
            WalkOutcome::StepLimit { .. } => prop_assert!(false, "50k steps should suffice"),
        }
    }

    #[test]
    fn reach_is_monotone_under_best_response((spec, cfg) in arb_uniform_instance()) {
        // Lemma 9: with M above the reach-monotonicity threshold, a best
        // response never decreases the mover's reach.
        let opts = BestResponseOptions::default();
        for u in NodeId::all(spec.node_count()) {
            let before = bbc_graph::reach::reach_of(&cfg.to_graph(&spec), u.index());
            let out = best_response::exact(&spec, &cfg, u, &opts).unwrap();
            let mut moved = cfg.clone();
            moved.set_strategy(&spec, u, out.best_strategy.clone()).unwrap();
            let after = bbc_graph::reach::reach_of(&moved.to_graph(&spec), u.index());
            prop_assert!(after >= before, "node {} reach {} -> {}", u, before, after);
        }
    }

    #[test]
    fn social_cost_is_sum_of_node_costs((spec, cfg) in arb_nonuniform_instance()) {
        let mut eval = Evaluator::new(&spec);
        let total: u64 = eval.node_costs(&cfg).iter().sum();
        prop_assert_eq!(eval.social_cost(&cfg), total);
    }

    #[test]
    fn adding_a_link_never_increases_cost((spec, cfg) in arb_uniform_instance()) {
        // Monotonicity that the subset search relies on: supersets of a
        // strategy are at least as good (budget permitting).
        let mut eval = Evaluator::new(&spec);
        for u in NodeId::all(spec.node_count()) {
            let current = cfg.strategy(u).to_vec();
            if spec.strategy_cost(u, &current) >= spec.budget(u) {
                continue;
            }
            let base = eval.node_cost(&cfg, u);
            for v in spec.affordable_targets(u) {
                if current.contains(&v) {
                    continue;
                }
                let mut bigger = current.clone();
                bigger.push(v);
                if spec.validate_strategy(u, &bigger).is_err() {
                    continue;
                }
                let mut trial = cfg.clone();
                trial.set_strategy(&spec, u, bigger).unwrap();
                prop_assert!(eval.node_cost(&trial, u) <= base);
            }
        }
    }
}
